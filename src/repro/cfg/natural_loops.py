"""Natural-loop detection.

Mirrors the MachineSUIF loop analysis the paper uses (section 4.1): natural
loops are found from back edges, and where a loop contains an inner loop the
inner loop's blocks are analysed once, as their own loop, while the blocks
that belong only to the outer loop form a second, separate loop region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ControlFlowGraph


@dataclass
class NaturalLoop:
    """A natural loop discovered in a procedure's CFG.

    Attributes:
        header: label of the loop header block.
        body: labels of every block in the loop (header included).
        back_edges: the (tail, header) edges that define the loop.
        depth: nesting depth (1 = outermost).
        exclusive_body: labels belonging to this loop but to no inner loop;
            this is the set the compiler pass analyses for this loop, so
            inner-loop blocks are not analysed twice (section 4.1).
    """

    header: str
    body: set[str] = field(default_factory=set)
    back_edges: list[tuple[str, str]] = field(default_factory=list)
    depth: int = 1
    exclusive_body: set[str] = field(default_factory=set)

    def contains(self, label: str) -> bool:
        """True when ``label`` is part of this loop."""
        return label in self.body

    def __len__(self) -> int:
        return len(self.body)


def _loop_body_for_back_edge(cfg: ControlFlowGraph, tail: str, header: str) -> set[str]:
    """Blocks in the natural loop of back edge ``tail -> header``.

    The reverse walk from the tail stops at the header (the header's own
    predecessors are outside the loop); in particular a self-loop back edge
    (``tail == header``) yields just the header block.
    """
    body = {header}
    stack: list[str] = []
    if tail not in body:
        body.add(tail)
        stack.append(tail)
    while stack:
        label = stack.pop()
        for pred in cfg.pred(label):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def find_natural_loops(cfg: ControlFlowGraph) -> list[NaturalLoop]:
    """Find every natural loop in ``cfg``.

    Loops sharing a header are merged (standard practice).  The returned
    loops carry nesting depth and the exclusive body described in
    :class:`NaturalLoop`.  Loops are returned innermost-first so that a
    caller analysing them in order sees inner loops before their parents.
    """
    dominators = compute_dominators(cfg)
    reachable = set(dominators)

    loops_by_header: dict[str, NaturalLoop] = {}
    for label in reachable:
        for succ in cfg.succ(label):
            if succ in dominators.get(label, set()):
                # label -> succ is a back edge; succ is the header.
                loop = loops_by_header.setdefault(succ, NaturalLoop(header=succ))
                loop.back_edges.append((label, succ))
                loop.body |= _loop_body_for_back_edge(cfg, label, succ)

    loops = list(loops_by_header.values())

    # Nesting depth: a loop is nested in another when its body is a strict
    # subset of the other's body (or equal with a different header dominated
    # by the other's header, which merged-header loops avoid).
    for loop in loops:
        loop.depth = 1 + sum(
            1
            for other in loops
            if other is not loop and loop.body < other.body
        )

    # Exclusive body: remove blocks claimed by any strictly deeper loop.
    for loop in loops:
        inner_blocks: set[str] = set()
        for other in loops:
            if other is not loop and other.body < loop.body:
                inner_blocks |= other.body
        loop.exclusive_body = loop.body - inner_blocks
        # The header always belongs to its own loop's analysis region.
        loop.exclusive_body.add(loop.header)

    loops.sort(key=lambda loop: -loop.depth)
    return loops


def blocks_in_any_loop(loops: list[NaturalLoop]) -> set[str]:
    """Union of all loop bodies; the complement is the DAG-region space."""
    result: set[str] = set()
    for loop in loops:
        result |= loop.body
    return result
