"""Wattch-style power model.

The timing simulator (:mod:`repro.uarch`) records architectural events; the
classes here turn them into issue-queue and register-file energy/power
figures and into the *savings* percentages the paper's figures report.

The model is event-based and relative, like Wattch at the abstraction level
the paper uses it: absolute Joules are not meaningful, but the ratio between
a technique run and the baseline run -- which is all the paper plots -- is
determined by the event counts and a small set of energy coefficients
(:class:`~repro.power.params.EnergyParams`).
"""

from repro.power.params import EnergyParams
from repro.power.model import (
    IssueQueuePowerBreakdown,
    PowerReport,
    RegisterFilePowerBreakdown,
    build_power_report,
    power_savings,
)

__all__ = [
    "EnergyParams",
    "IssueQueuePowerBreakdown",
    "RegisterFilePowerBreakdown",
    "PowerReport",
    "build_power_report",
    "power_savings",
]
