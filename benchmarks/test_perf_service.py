"""Micro-benchmark: service-mediated wall-clock on a small figure grid.

Measures the full daemon path end to end — a client connects over a
socket, submits the 6-cell grid, the daemon validates/dedupes/enqueues,
two worker subprocesses lease and execute, and the daemon's event loop
streams progress and the result back — against the same grid run
directly on the in-process local backend.  The service adds a socket
hop and a JSON envelope per event on top of the queue protocol, so its
overhead should be indistinguishable from ``backend="queue"``'s.

Each run appends a ``"kind": "service_grid"`` entry to
``BENCH_trace.json``.  Besides the usual small-multiple-of-local floor,
the run is compared against the recorded ``queue_grid`` history: the
sleep-poll driver loop those entries were measured under is gone
(``QueueEventCore`` waits on an adaptive selector now), and the
event-driven path must not be slower than the polling one it replaced.
"""

from __future__ import annotations

import json
import statistics
import threading
import time

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.faults import active_injector
from repro.harness.queue import spawn_local_workers
from repro.service.client import ServiceClient
from repro.service.daemon import ExperimentService

from repro.telemetry import trend

from test_perf_simulator import TRAJECTORY_FILE, _record_trajectory

GRID_CONFIG = RunConfig(
    benchmarks=("gzip", "mcf"),
    max_instructions=4_000,
    warmup_instructions=1_000,
)
TECHNIQUES = ("baseline", "abella", "noop")
CONFIG_OVERRIDES = {
    "max_instructions": GRID_CONFIG.max_instructions,
    "warmup_instructions": GRID_CONFIG.warmup_instructions,
}
QUEUE_WORKERS = 2


def _queue_grid_baseline() -> float | None:
    """Median queue_seconds of the recorded sleep-poll-era history."""
    try:
        history = json.loads(TRAJECTORY_FILE.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None
    samples = [
        entry["queue_seconds"]
        for entry in history
        if entry.get("kind") == "queue_grid"
        and isinstance(entry.get("queue_seconds"), (int, float))
    ]
    return statistics.median(samples) if samples else None


def test_service_grid_wall_clock(benchmark, tmp_path):
    assert active_injector() is None, "fault injector active in a perf run"

    def _service_run() -> float:
        cache_dir = tmp_path / f"run-{time.monotonic_ns()}"
        service = ExperimentService(
            cache_dir,
            config=GRID_CONFIG,
            queue_ttl=30,
            assist=False,  # measure the workers, not the daemon loop
        )
        host, port = service.open()
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        workers = spawn_local_workers(
            cache_dir, QUEUE_WORKERS, ttl=30, poll_interval=0.05
        )
        try:
            start = time.perf_counter()
            with ServiceClient(host, port, timeout=600) as client:
                cells = client.grid(
                    GRID_CONFIG.benchmarks, TECHNIQUES, config=CONFIG_OVERRIDES
                )
            elapsed = time.perf_counter() - start
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                proc.wait(timeout=10)
            service.stop()
            thread.join(timeout=30)
        assert len(cells) == len(GRID_CONFIG.benchmarks) * len(TECHNIQUES)
        assert service.cells_enqueued == len(cells)
        return elapsed

    service_elapsed = benchmark.pedantic(_service_run, rounds=1, iterations=1)

    local = ParallelSuiteRunner(GRID_CONFIG, workers=1)
    start = time.perf_counter()
    local.run_suite(techniques=TECHNIQUES)
    local_elapsed = time.perf_counter() - start

    cells = len(GRID_CONFIG.benchmarks) * len(TECHNIQUES)
    poll_baseline = _queue_grid_baseline()
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["queue_workers"] = QUEUE_WORKERS
    benchmark.extra_info["service_seconds"] = round(service_elapsed, 2)
    benchmark.extra_info["local_seconds"] = round(local_elapsed, 2)
    _record_trajectory(
        {
            "timestamp": time.time(),
            "kind": "service_grid",
            "cells": cells,
            "max_instructions": GRID_CONFIG.max_instructions,
            "queue_workers": QUEUE_WORKERS,
            "service_seconds": round(service_elapsed, 2),
            "local_seconds": round(local_elapsed, 2),
            "queue_grid_baseline_seconds": (
                round(poll_baseline, 2) if poll_baseline is not None else None
            ),
        }
    )
    print(
        f"\n  {cells}-cell grid: {service_elapsed:.1f}s through the service "
        f"with {QUEUE_WORKERS} workers vs {local_elapsed:.1f}s locally "
        f"(sleep-poll queue-grid median {poll_baseline})"
    )
    # Same generous protocol-regression floor as the queue-grid bench.
    assert service_elapsed < max(30.0, 10.0 * local_elapsed)
    # The event-driven wait must not lose to the sleep-poll loop it
    # replaced: allow 2x the recorded polling-era median for noise on a
    # shared container, which still catches a reintroduced fixed-interval
    # wait (the old loop's worst case added a full poll per completion).
    if poll_baseline is not None:
        assert service_elapsed < max(10.0, 2.0 * poll_baseline), (
            f"service path ({service_elapsed:.2f}s) slower than the "
            f"sleep-poll era baseline ({poll_baseline:.2f}s median)"
        )

    # Perf-trajectory gate (PR 9): the wall clock just recorded must sit
    # inside the MAD noise band of the service grid's own history.
    evaluation = trend.gate_series("service_grid/seconds", TRAJECTORY_FILE)
    assert evaluation is None or evaluation["regressed"] is not True, (
        f"perf trajectory regression on service_grid/seconds: "
        f"latest {evaluation['latest']:,.2f}s vs median "
        f"{evaluation['median']:,.2f}s "
        f"(tolerance {evaluation['tolerance']:,.2f}); see "
        f"python -m repro.telemetry.trend"
    )
