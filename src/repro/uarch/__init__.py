"""Cycle-level out-of-order superscalar simulator.

This package is the reproduction's stand-in for SimpleScalar/Wattch: a
trace-driven, event-accurate timing model of the processor in table 1 of
the paper, extended with the small issue-queue changes of section 3
(``new_head`` pointer, ``max_new_range`` register, hint-NOOP stripping and
instruction tags).

Main entry points:

* :class:`~repro.uarch.config.ProcessorConfig` -- the machine description
  (``ProcessorConfig.hpca2005()`` is table 1).
* :class:`~repro.uarch.emulator.FunctionalEmulator` -- architectural
  execution of an IR program, producing the committed instruction stream.
* :class:`~repro.uarch.core.OutOfOrderCore` -- the timing model; pair it
  with a resizing policy from :mod:`repro.techniques` and run.
* :func:`~repro.uarch.core.simulate` -- convenience wrapper that wires the
  emulator, the core, a policy and the statistics together.
"""

from repro.uarch.config import ProcessorConfig
from repro.uarch.emulator import DynamicInstruction, EmulationLimitExceeded, FunctionalEmulator
from repro.uarch.stats import SimulationStats
from repro.uarch.core import OutOfOrderCore, simulate

__all__ = [
    "ProcessorConfig",
    "DynamicInstruction",
    "EmulationLimitExceeded",
    "FunctionalEmulator",
    "SimulationStats",
    "OutOfOrderCore",
    "simulate",
]
