#!/usr/bin/env python3
"""Parallel, cached evaluation of the (benchmark × technique) grid.

Runs a scaled-down version of the paper's full evaluation — every
benchmark under every technique — through the parallel experiment engine,
then prints the figure-6 IPC-loss table.  A second invocation finds every
cell in the on-disk cache and skips simulation entirely.

Run with::

    PYTHONPATH=src python examples/parallel_suite.py
    PYTHONPATH=src python examples/parallel_suite.py --workers 8

The cache lives in ``examples/.suite-cache``; delete the directory (or
change any configuration value) to force re-simulation.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.harness import ParallelSuiteRunner, RunConfig, figures
from repro.workloads import EXTENDED_BENCHMARKS, SPECINT_BENCHMARKS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--extended",
        action="store_true",
        help="also run the extended families (fpstream, branchstorm, ptrthrash)",
    )
    args = parser.parse_args()

    benchmarks = SPECINT_BENCHMARKS + (EXTENDED_BENCHMARKS if args.extended else ())
    runner = ParallelSuiteRunner(
        RunConfig(
            benchmarks=benchmarks,
            max_instructions=6_000,
            warmup_instructions=1_500,
        ),
        workers=args.workers,
        cache_dir=str(Path(__file__).parent / ".suite-cache"),
    )

    start = time.perf_counter()
    runner.run_suite()
    elapsed = time.perf_counter() - start
    print(
        f"grid of {len(benchmarks)} benchmarks x 6 techniques in {elapsed:.1f}s "
        f"with {runner.workers} worker(s): {runner.simulations_run} simulated, "
        f"{runner.cache.hits} from cache"
    )

    print(figures.figure6(runner).to_text())


if __name__ == "__main__":
    main()
