"""Command-line entry point for reprolint.

::

    PYTHONPATH=src python -m repro.analysis [paths ...] \\
        [--advisory PATH ...] [--select RULE[,RULE]] [--list-rules]

Positional paths are linted **strictly**: any finding fails the run
(exit 1) — this is the mode the tier-1 gate (``tests/test_analysis.py``)
runs over ``src/``.  ``--advisory`` paths are linted in **advisory**
mode: findings are printed and summarised per rule but never affect the
exit code, so drift in scratch trees is visible without blocking.

With no positional paths the CLI lints ``src/`` strictly and, when they
exist, ``benchmarks/`` and ``examples/`` in advisory mode — the
one-command repo health check.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional

from repro.analysis.core import LintResult, all_rules, get_rules, lint_paths

#: Trees swept in advisory mode by a bare ``python -m repro.analysis``.
DEFAULT_ADVISORY_TREES = ("benchmarks", "examples")


def _print_result(result: LintResult, label: str, advisory: bool) -> None:
    prefix = "advisory: " if advisory else ""
    for finding in result.findings:
        print(f"{prefix}{finding}")
    summary = (
        f"{label}: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, {result.files} file(s)"
    )
    if advisory and result.findings:
        per_rule = ", ".join(
            f"{rule_id}={count}" for rule_id, count in sorted(result.by_rule().items())
        )
        summary += f" [{per_rule}] (advisory — not failing the run)"
    print(summary)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repo's determinism, "
        "atomic-IO and fingerprint-purity contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/trees linted strictly (default: src/, plus "
        "benchmarks/ and examples/ in advisory mode when present)",
    )
    parser.add_argument(
        "--advisory",
        action="append",
        default=None,
        metavar="PATH",
        help="additionally lint PATH in advisory (non-failing, summarised) "
        "mode; repeatable",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (id and the contract it encodes) "
        "and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.contract}")
        return 0

    try:
        rules = get_rules(args.select.split(",")) if args.select else None
    except ValueError as error:
        parser.error(str(error))

    strict_paths = list(args.paths)
    advisory_paths = list(args.advisory or ())
    if not strict_paths:
        if Path("src").is_dir():
            strict_paths = ["src"]
        else:
            strict_paths = ["."]
        if args.advisory is None:
            advisory_paths = [
                tree for tree in DEFAULT_ADVISORY_TREES if Path(tree).is_dir()
            ]

    missing = [p for p in strict_paths + advisory_paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    strict_result = lint_paths(strict_paths, rules)
    _print_result(strict_result, "strict", advisory=False)
    for tree in advisory_paths:
        _print_result(lint_paths([tree], rules), f"advisory {tree}", advisory=True)
    return 1 if strict_result.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
