"""The paper's contribution: compiler-directed issue-queue sizing.

This package implements section 4 of the paper (the compiler analysis) and
the instrumentation that communicates its results to the processor
(section 3): per-basic-block pseudo-issue-queue scheduling for DAG regions,
cyclic-dependence-set equation analysis for loops, procedure-call handling,
the optional inter-procedural functional-unit-contention refinement of the
*Improved* scheme, and hint emission as special NOOPs or instruction tags.

Typical use::

    from repro.core import CompilerConfig, compile_program

    result = compile_program(program, CompilerConfig(), mode="noop")
    result.instrumented_program   # program with hint NOOPs inserted
    result.block_requirements     # per-block IQ-entry requirements
"""

from repro.core.config import CompilerConfig
from repro.core.pseudo_queue import PseudoIssueQueue, ScheduleResult
from repro.core.dag_analysis import BlockRequirement, analyse_block, analyse_dag_region
from repro.core.loop_analysis import LoopRequirement, analyse_loop
from repro.core.interprocedural import apply_interprocedural_refinement
from repro.core.instrument import instrument_program
from repro.core.pipeline import CompilationResult, compile_program
from repro.core.report import CompilationReport, compare_compile_times

__all__ = [
    "CompilerConfig",
    "PseudoIssueQueue",
    "ScheduleResult",
    "BlockRequirement",
    "analyse_block",
    "analyse_dag_region",
    "LoopRequirement",
    "analyse_loop",
    "apply_interprocedural_refinement",
    "instrument_program",
    "CompilationResult",
    "compile_program",
    "CompilationReport",
    "compare_compile_times",
]
