"""Running benchmarks under techniques and computing relative metrics.

Every number the paper reports is relative to the conventional baseline
machine running the uninstrumented program, so the harness always pairs a
technique run with the baseline run of the same benchmark and derives:

* IPC loss (figures 6 and 10),
* issue-queue occupancy reduction (figure 7) and bank-off fractions,
* issue-queue dynamic/static power savings (figures 8 and 11),
* integer register-file dynamic/static power savings (figures 9 and 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core import CompilerConfig, CompilationResult, compile_program
from repro.power import EnergyParams, PowerReport, build_power_report, power_savings
from repro.techniques import (
    AbellaPolicy,
    BaselinePolicy,
    NonEmptyPolicy,
    SoftwareDirectedPolicy,
)
from repro.uarch import ProcessorConfig, SimulationStats, simulate
from repro.workloads import SPECINT_BENCHMARKS, build_benchmark


#: Techniques in the order reports present them.  ``noop``, ``extension``
#: and ``improved`` are the paper's three software-directed variants.
TECHNIQUES: tuple[str, ...] = (
    "baseline",
    "nonempty",
    "abella",
    "noop",
    "extension",
    "improved",
)

#: Techniques that require the program to be compiled with hints.
SOFTWARE_TECHNIQUES: tuple[str, ...] = ("noop", "extension", "improved")


@dataclass
class RunConfig:
    """Parameters of one evaluation campaign.

    Attributes:
        benchmarks: benchmark names to evaluate.
        max_instructions: dynamic instructions to simulate per run (the
            paper's 100M-instruction samples scaled down for a Python
            simulator; see DESIGN.md).
        warmup_instructions: committed instructions before measurement
            starts (cache/branch-predictor warm-up).
        compiler_config: compiler analysis parameters.
        processor_config: machine description (table 1 by default).
        energy_params: power-model coefficients.
        abella_interval: evaluation interval of the abella heuristic.
    """

    benchmarks: tuple[str, ...] = SPECINT_BENCHMARKS
    max_instructions: int = 20_000
    warmup_instructions: int = 6_000
    compiler_config: CompilerConfig = field(default_factory=CompilerConfig)
    processor_config: ProcessorConfig = field(default_factory=ProcessorConfig.hpca2005)
    energy_params: EnergyParams = field(default_factory=EnergyParams)
    abella_interval: int = 768


@dataclass
class BenchmarkResult:
    """One (benchmark, technique) simulation plus its power costing."""

    benchmark: str
    technique: str
    stats: SimulationStats
    power: PowerReport
    policy_name: str
    compilation: Optional[CompilationResult] = None


@dataclass
class TechniqueMetrics:
    """Relative metrics of one technique on one benchmark."""

    benchmark: str
    technique: str
    ipc: float
    baseline_ipc: float
    ipc_loss_pct: float
    occupancy: float
    baseline_occupancy: float
    occupancy_reduction_pct: float
    iq_banks_off_pct: float
    rf_banks_off_pct: float
    iq_dynamic_saving_pct: float
    iq_static_saving_pct: float
    rf_dynamic_saving_pct: float
    rf_static_saving_pct: float
    inflight_reduction_pct: float


def make_policy(technique: str, config: RunConfig):
    """Instantiate the resizing policy for ``technique``."""
    if technique == "baseline":
        return BaselinePolicy()
    if technique == "nonempty":
        return NonEmptyPolicy()
    if technique == "abella":
        return AbellaPolicy(interval_cycles=config.abella_interval)
    if technique in SOFTWARE_TECHNIQUES:
        return SoftwareDirectedPolicy(variant=technique)
    raise ValueError(f"unknown technique {technique!r}")


class SuiteRunner:
    """Lazily runs and caches (benchmark, technique) simulations."""

    def __init__(self, config: Optional[RunConfig] = None):
        self.config = config or RunConfig()
        self._results: dict[tuple[str, str], BenchmarkResult] = {}
        self._compilations: dict[tuple[str, str], CompilationResult] = {}

    # ------------------------------------------------------------------
    def grid(
        self,
        techniques: Iterable[str] = TECHNIQUES,
        benchmarks: Optional[Iterable[str]] = None,
    ) -> list[tuple[str, str]]:
        """The (benchmark, technique) cells of one campaign, in report order.

        Benchmarks iterate outermost, techniques innermost — the order
        every figure presents and every execution backend preserves.
        Defaults come from the campaign configuration.
        """
        techniques = tuple(techniques)  # survive one-shot iterators
        if benchmarks is None:
            benchmarks = self.config.benchmarks
        return [
            (benchmark, technique)
            for benchmark in benchmarks
            for technique in techniques
        ]

    def compilation(self, benchmark: str, mode: str) -> CompilationResult:
        """Compile ``benchmark`` with hint encoding ``mode`` (cached)."""
        key = (benchmark, mode)
        if key not in self._compilations:
            program = build_benchmark(benchmark)
            self._compilations[key] = compile_program(
                program, self.config.compiler_config, mode=mode
            )
        return self._compilations[key]

    def result(self, benchmark: str, technique: str) -> BenchmarkResult:
        """Simulate ``benchmark`` under ``technique`` (cached)."""
        key = (benchmark, technique)
        if key in self._results:
            return self._results[key]

        config = self.config
        policy = make_policy(technique, config)
        compilation: Optional[CompilationResult] = None
        if technique in SOFTWARE_TECHNIQUES:
            compilation = self.compilation(benchmark, technique)
            program = compilation.instrumented_program
        else:
            program = build_benchmark(benchmark)

        stats = simulate(
            program,
            policy,
            config=config.processor_config,
            max_instructions=config.max_instructions,
            warmup_instructions=config.warmup_instructions,
        )
        power = build_power_report(stats, policy, config.energy_params)
        result = BenchmarkResult(
            benchmark=benchmark,
            technique=technique,
            stats=stats,
            power=power,
            policy_name=policy.name,
            compilation=compilation,
        )
        self._results[key] = result
        return result

    # ------------------------------------------------------------------
    def metrics(self, benchmark: str, technique: str) -> TechniqueMetrics:
        """Relative metrics of ``technique`` on ``benchmark`` versus baseline."""
        baseline = self.result(benchmark, "baseline")
        run = self.result(benchmark, technique)
        savings = power_savings(baseline.power, run.power)

        baseline_ipc = baseline.stats.ipc
        ipc = run.stats.ipc
        ipc_loss = 100.0 * (1.0 - ipc / baseline_ipc) if baseline_ipc > 0 else 0.0

        baseline_occ = baseline.stats.avg_iq_occupancy
        occupancy = run.stats.avg_iq_occupancy
        occ_reduction = (
            100.0 * (1.0 - occupancy / baseline_occ) if baseline_occ > 0 else 0.0
        )
        baseline_inflight = baseline.stats.avg_inflight
        inflight_reduction = (
            100.0 * (1.0 - run.stats.avg_inflight / baseline_inflight)
            if baseline_inflight > 0
            else 0.0
        )

        pct = savings.as_percentages()
        return TechniqueMetrics(
            benchmark=benchmark,
            technique=technique,
            ipc=ipc,
            baseline_ipc=baseline_ipc,
            ipc_loss_pct=ipc_loss,
            occupancy=occupancy,
            baseline_occupancy=baseline_occ,
            occupancy_reduction_pct=occ_reduction,
            iq_banks_off_pct=100.0 * run.stats.iq_banks_off_fraction,
            rf_banks_off_pct=100.0 * run.stats.rf_banks_off_fraction,
            iq_dynamic_saving_pct=pct["iq_dynamic_pct"],
            iq_static_saving_pct=pct["iq_static_pct"],
            rf_dynamic_saving_pct=pct["rf_dynamic_pct"],
            rf_static_saving_pct=pct["rf_static_pct"],
            inflight_reduction_pct=inflight_reduction,
        )

    def suite_metrics(self, technique: str) -> list[TechniqueMetrics]:
        """Metrics for every benchmark in the campaign."""
        return [
            self.metrics(benchmark, technique) for benchmark in self.config.benchmarks
        ]

    def average(self, technique: str, attribute: str) -> float:
        """Arithmetic mean of ``attribute`` over the suite (the SPECINT bar)."""
        values = [getattr(m, attribute) for m in self.suite_metrics(technique)]
        if not values:
            return 0.0
        return sum(values) / len(values)
