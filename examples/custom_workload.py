#!/usr/bin/env python3
"""Apply the technique to a custom (non-SPEC) workload.

Demonstrates the full user-facing flow on a program you define yourself:
describe a workload with :class:`BenchmarkTraits`, generate it, compile it
with each hint encoding, and measure what the software-directed issue queue
does to performance and power.  Also sweeps the compiler's sizing margin to
show the power/performance trade-off a user can tune.

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

from repro.core import CompilerConfig, compile_program
from repro.power import build_power_report, power_savings
from repro.techniques import BaselinePolicy, SoftwareDirectedPolicy
from repro.uarch import simulate
from repro.workloads import BenchmarkTraits, generate_program


def build_image_filter_like_workload():
    """A stand-in for a small image-filter kernel: strided loads, two
    accumulator chains, a store per iteration and a helper call."""
    traits = BenchmarkTraits(
        name="imgfilter",
        seed=1234,
        num_loop_kernels=2,
        num_dag_kernels=1,
        num_call_kernels=1,
        loop_body_size=(18, 26),
        loop_trip_count=(32, 64),
        ilp_width=2,
        mem_fraction=0.3,
        store_fraction=0.4,
        mul_fraction=0.12,
        working_set_bytes=96 * 1024,
        call_in_loop_prob=0.3,
        num_leaf_procs=2,
        leaf_mul_heavy=True,
    )
    return generate_program(traits)


def main() -> None:
    program = build_image_filter_like_workload()
    budget = dict(max_instructions=12_000, warmup_instructions=4_000)

    baseline_policy = BaselinePolicy()
    baseline = simulate(program, baseline_policy, **budget)
    baseline_power = build_power_report(baseline, baseline_policy)
    print(f"workload: {program.name}, baseline IPC {baseline.ipc:.2f}, "
          f"IQ occupancy {baseline.avg_iq_occupancy:.1f}/80\n")

    print(f"{'configuration':28s} {'IPC loss':>9s} {'IQ dyn save':>12s} {'IQ stat save':>13s}")
    for mode in ("noop", "extension", "improved"):
        compilation = compile_program(program, CompilerConfig(), mode=mode)
        policy = SoftwareDirectedPolicy(mode)
        stats = simulate(compilation.instrumented_program, policy, **budget)
        savings = power_savings(baseline_power, build_power_report(stats, policy))
        loss = 100 * (1 - stats.ipc / baseline.ipc)
        print(f"{mode:28s} {loss:8.1f}% {100 * savings.iq_dynamic:11.1f}% "
              f"{100 * savings.iq_static:12.1f}%")

    print("\nsizing-margin sweep (extension encoding):")
    print(f"{'margin':>8s} {'IPC loss':>9s} {'occupancy cut':>14s} {'IQ dyn save':>12s}")
    for margin in (1.0, 1.3, 1.6, 2.0):
        config = CompilerConfig(sizing_margin=margin)
        compilation = compile_program(program, config, mode="extension")
        policy = SoftwareDirectedPolicy("extension")
        stats = simulate(compilation.instrumented_program, policy, **budget)
        savings = power_savings(baseline_power, build_power_report(stats, policy))
        loss = 100 * (1 - stats.ipc / baseline.ipc)
        occ_cut = 100 * (1 - stats.avg_iq_occupancy / baseline.avg_iq_occupancy)
        print(f"{margin:8.1f} {loss:8.1f}% {occ_cut:13.1f}% {100 * savings.iq_dynamic:11.1f}%")


if __name__ == "__main__":
    main()
