"""Functional (architectural) emulation of IR programs.

The timing simulator is trace-driven: this emulator executes a program's
semantics -- register values, memory contents, branch outcomes, call/return
nesting -- and yields the committed dynamic instruction stream, annotated
with everything the timing model needs (program counter, branch outcome and
target, effective memory address).  This mirrors how SimpleScalar's
functional core feeds its timing core.

Determinism matters for reproducibility: uninitialised memory reads return a
value derived from the address by a fixed hash, so every run of a given
program produces exactly the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, NUM_FP_ARCH_REGS, ZERO_REG


_VALUE_MASK = (1 << 63) - 1
_UNINIT_HASH_MULTIPLIER = 2654435761


class EmulationError(Exception):
    """Raised when a program cannot be executed (bad targets, empty blocks...)."""


class EmulationLimitExceeded(Exception):
    """Raised when the call-depth safety limit is exceeded."""


@dataclass
class ProgramLayout:
    """Static address assignment for every instruction of a program.

    Instructions get consecutive 4-byte addresses, procedure by procedure
    and block by block, so the instruction cache sees realistic spatial
    locality and every static instruction has a unique PC for the branch
    predictor and BTB.
    """

    instruction_pc: dict[int, int] = field(default_factory=dict)  # uid -> pc
    block_pc: dict[tuple[str, str], int] = field(default_factory=dict)
    procedure_pc: dict[str, int] = field(default_factory=dict)
    code_size: int = 0

    @classmethod
    def for_program(cls, program: Program, base_address: int = 0x1000) -> "ProgramLayout":
        """Lay out ``program`` starting at ``base_address``."""
        layout = cls()
        pc = base_address
        for procedure in program.procedures.values():
            layout.procedure_pc[procedure.name] = pc
            for block in procedure.blocks:
                layout.block_pc[(procedure.name, block.label)] = pc
                for instruction in block.instructions:
                    layout.instruction_pc[instruction.uid] = pc
                    pc += 4
        layout.code_size = pc - base_address
        return layout


@dataclass
class DynamicInstruction:
    """One element of the committed dynamic instruction stream.

    Attributes:
        static: the static instruction executed.
        seq: sequence number in commit order (0-based).
        pc: the instruction's address.
        next_pc: address of the next dynamic instruction.
        taken: for control transfers, whether the transfer was taken.
        mem_address: effective address for loads and stores.
    """

    static: Instruction
    seq: int
    pc: int
    next_pc: int
    taken: bool = False
    mem_address: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.static.is_branch

    @property
    def is_load(self) -> bool:
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        return self.static.is_store

    @property
    def is_hint(self) -> bool:
        return self.static.is_hint


# Pre-compiled execution-spec kinds (first element of each spec tuple).
_K_ALU = 0
_K_BRANCH = 1
_K_LOAD = 2
_K_STORE = 3
_K_NOOP = 4
_K_CALL = 5
_K_RET = 6
_K_JUMP = 7
_K_HALT = 8


def _reg_spec(reg) -> tuple[int, bool]:
    return (reg.index, reg.is_fp)


def _compile_instruction(instr: Instruction, block_index: dict[str, int]) -> tuple:
    """Lower one static instruction into an interpreter execution spec.

    The spec front-loads everything the main loop would otherwise fetch
    per dynamic execution: operand register indices and files, immediates,
    and branch/jump targets resolved to block indices.
    """
    opcode = instr.opcode
    if opcode is Opcode.HALT:
        return (_K_HALT,)
    if opcode is Opcode.CALL:
        return (_K_CALL, instr.call_target)
    if opcode is Opcode.RET:
        return (_K_RET,)
    if opcode is Opcode.JUMP:
        return (_K_JUMP, block_index[instr.target])
    if opcode is Opcode.BEQZ or opcode is Opcode.BNEZ:
        return (
            _K_BRANCH,
            opcode is Opcode.BNEZ,
            _reg_spec(instr.srcs[0]),
            block_index[instr.target],
        )
    if opcode is Opcode.LOAD:
        return (
            _K_LOAD,
            _reg_spec(instr.srcs[0]),
            instr.imm,
            _reg_spec(instr.dests[0]),
        )
    if opcode is Opcode.STORE:
        return (
            _K_STORE,
            _reg_spec(instr.srcs[0]),
            instr.imm,
            _reg_spec(instr.srcs[1]),
        )
    if opcode is Opcode.NOP or opcode is Opcode.HINT:
        return (_K_NOOP,)
    srcs = instr.srcs
    return (
        _K_ALU,
        opcode,
        _reg_spec(srcs[0]) if srcs else None,
        _reg_spec(srcs[1]) if len(srcs) > 1 else None,
        _reg_spec(instr.dests[0]) if instr.dests else None,
        instr.imm,
    )


class FunctionalEmulator:
    """Architectural interpreter for IR programs."""

    #: Base address of the data segment (separated from code addresses).
    DATA_BASE = 0x100000

    #: Default stack pointer value.
    STACK_BASE = 0x7F0000

    def __init__(self, program: Program, max_call_depth: int = 256):
        program.validate()
        self.program = program
        self.layout = ProgramLayout.for_program(program)
        self.max_call_depth = max_call_depth

        self.registers = [0] * NUM_ARCH_REGS
        self.fp_registers = [0.0] * NUM_FP_ARCH_REGS
        self.registers[29] = self.STACK_BASE  # conventional stack pointer
        self.memory: dict[int, int] = {}
        self.instructions_executed = 0

        # label -> block index per procedure, so branch resolution is a
        # dict lookup instead of a linear scan of the block list.
        self._block_index: dict[str, dict[str, int]] = {
            name: {block.label: i for i, block in enumerate(proc.blocks)}
            for name, proc in program.procedures.items()
        }
        # Per-procedure list of per-block [(instruction, pc, spec), ...]
        # triples, so the main loop never consults the uid -> pc map and
        # dispatches on a pre-compiled small-int execution spec instead of
        # opcode enums and ``Reg`` attribute chains; built lazily on first
        # entry into each procedure.
        self._proc_cache: dict[str, list[list[tuple]]] = {}

    def _blocks_for(self, proc_name: str) -> list[list[tuple]]:
        cached = self._proc_cache.get(proc_name)
        if cached is None:
            instruction_pc = self.layout.instruction_pc
            block_index = self._block_index[proc_name]
            cached = [
                [
                    (
                        instr,
                        instruction_pc[instr.uid],
                        _compile_instruction(instr, block_index),
                    )
                    for instr in block.instructions
                ]
                for block in self.program.procedures[proc_name].blocks
            ]
            self._proc_cache[proc_name] = cached
        return cached

    # ------------------------------------------------------------------
    # Memory helpers
    # ------------------------------------------------------------------
    def read_memory(self, address: int) -> int:
        """Read ``address``; uninitialised locations return a deterministic value."""
        address &= _VALUE_MASK
        if address in self.memory:
            return self.memory[address]
        return (address * _UNINIT_HASH_MULTIPLIER) & 0xFFFF

    def write_memory(self, address: int, value: int) -> None:
        """Write ``value`` to ``address``."""
        self.memory[address & _VALUE_MASK] = value & _VALUE_MASK

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------
    def _read_reg(self, reg) -> int | float:
        if reg.is_fp:
            return self.fp_registers[reg.index]
        if reg.index == ZERO_REG:
            return 0
        return self.registers[reg.index]

    def _write_reg(self, reg, value) -> None:
        if reg.is_fp:
            self.fp_registers[reg.index] = float(value)
            return
        if reg.index == ZERO_REG:
            return
        self.registers[reg.index] = int(value) & _VALUE_MASK

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 1_000_000) -> Iterator[DynamicInstruction]:
        """Execute from the program entry; yield committed dynamic instructions.

        Execution stops at ``HALT``, when the entry procedure returns, or
        after ``max_instructions`` dynamic instructions.  The whole stream
        is produced by :meth:`run_collect` (bounded by
        ``max_instructions``) and then wrapped in
        :class:`DynamicInstruction` objects.
        """
        statics, pcs, next_pcs, takens, mems = self.run_collect(max_instructions)
        for seq in range(len(pcs)):
            yield DynamicInstruction(
                static=statics[seq],
                seq=seq,
                pc=pcs[seq],
                next_pc=next_pcs[seq],
                taken=takens[seq],
                mem_address=mems[seq],
            )

    def run_collect(
        self, max_instructions: int = 1_000_000
    ) -> tuple[list, list[int], list[int], list[bool], list[Optional[int]]]:
        """Execute and return ``(statics, pcs, next_pcs, takens, mems)``.

        The column-oriented form feeds :mod:`repro.uarch.trace` directly,
        avoiding one :class:`DynamicInstruction` allocation per committed
        instruction on the pre-decode path.
        """
        statics: list = []
        pcs: list[int] = []
        next_pcs: list[int] = []
        takens: list[bool] = []
        mems: list[Optional[int]] = []
        for chunk in self.run_collect_windows(max_instructions, None):
            if not pcs:
                statics, pcs, next_pcs, takens, mems = chunk
            else:  # pragma: no cover - window_size=None yields one chunk
                statics.extend(chunk[0])
                pcs.extend(chunk[1])
                next_pcs.extend(chunk[2])
                takens.extend(chunk[3])
                mems.extend(chunk[4])
        return statics, pcs, next_pcs, takens, mems

    def run_collect_windows(
        self, max_instructions: int = 1_000_000, window_size: Optional[int] = None
    ) -> Iterator[tuple[list, list[int], list[int], list[bool], list[Optional[int]]]]:
        """Execute, yielding ``(statics, pcs, next_pcs, takens, mems)`` chunks.

        Every yielded chunk except possibly the last holds exactly
        ``window_size`` committed instructions; ``window_size=None`` (or
        ``<= 0``) yields the whole stream as one chunk.  Chunks are
        produced in commit order and the architectural state advances
        eagerly, so consuming lazily bounds the peak size of the column
        lists by the window size instead of the instruction budget — this
        is the decode-memory bound behind windowed trace replay
        (:mod:`repro.uarch.trace`).

        ``instructions_executed`` is only accurate once the generator is
        exhausted (an abandoned generator stops mid-stream).
        """
        program = self.program
        regs = self.registers
        fregs = self.fp_registers
        memory = self.memory
        max_call_depth = self.max_call_depth

        window_limit = window_size if window_size and window_size > 0 else None

        statics: list = []
        pcs: list[int] = []
        next_pcs: list[int] = []
        takens: list[bool] = []
        mems: list[Optional[int]] = []
        statics_append = statics.append
        pcs_append = pcs.append
        next_pcs_append = next_pcs.append
        takens_append = takens.append
        mems_append = mems.append

        # The current position is (procedure name, block index, instruction
        # index) held in plain locals; ``blocks`` holds the procedure's
        # pre-zipped [(instruction, pc), ...] lists and ``instrs`` the
        # current block's, refreshed whenever control flow moves.
        proc_name = program.entry
        blocks = self._blocks_for(proc_name)
        block_idx = 0
        instr_idx = 0
        instrs = blocks[0] if blocks else []
        call_stack: list[tuple[str, int, int]] = []
        seq = 0

        while seq < max_instructions:
            if instr_idx >= len(instrs):
                # Fall off the end of a block: continue with the next block.
                block_idx += 1
                instr_idx = 0
                if block_idx >= len(blocks):
                    break
                instrs = blocks[block_idx]
                continue

            instr, pc, spec = instrs[instr_idx]
            taken = False
            mem_address: Optional[int] = None
            halt = False
            # Default successor: the next instruction of this block.
            next_proc = proc_name
            next_block = block_idx
            next_instr = instr_idx + 1

            kind = spec[0]
            if kind == _K_ALU:
                _, opcode, a_spec, b_spec, dest_spec, imm = spec
                if a_spec is None:
                    a = 0
                else:
                    a_idx, a_fp = a_spec
                    a = fregs[a_idx] if a_fp else regs[a_idx]
                if b_spec is None:
                    b = imm
                else:
                    b_idx, b_fp = b_spec
                    b = fregs[b_idx] if b_fp else regs[b_idx]
                if opcode is Opcode.ADD:
                    result = a + b
                elif opcode is Opcode.LI:
                    result = imm
                elif opcode is Opcode.SUB:
                    result = a - b
                elif opcode is Opcode.MOV:
                    result = a
                elif opcode is Opcode.CMP_LT:
                    result = 1 if a < b else 0
                elif opcode is Opcode.CMP_EQ:
                    result = 1 if a == b else 0
                elif opcode is Opcode.AND:
                    result = int(a) & int(b)
                elif opcode is Opcode.OR:
                    result = int(a) | int(b)
                elif opcode is Opcode.XOR:
                    result = int(a) ^ int(b)
                elif opcode is Opcode.SHL:
                    result = int(a) << (int(b) & 31)
                elif opcode is Opcode.SHR:
                    result = int(a) >> (int(b) & 31)
                elif opcode is Opcode.MUL:
                    result = int(a) * int(b)
                elif opcode is Opcode.DIV:
                    result = int(a) // int(b) if int(b) != 0 else 0
                elif opcode is Opcode.FADD:
                    result = float(a) + float(b)
                elif opcode is Opcode.FSUB:
                    result = float(a) - float(b)
                elif opcode is Opcode.FMUL:
                    result = float(a) * float(b)
                elif opcode is Opcode.FDIV:
                    result = float(a) / float(b) if float(b) != 0.0 else 0.0
                else:  # pragma: no cover - defensive
                    result = 0
                if dest_spec is not None:
                    d_idx, d_fp = dest_spec
                    if d_fp:
                        fregs[d_idx] = float(result)
                    elif d_idx != ZERO_REG:
                        regs[d_idx] = int(result) & _VALUE_MASK
            elif kind == _K_BRANCH:
                _, is_bnez, (s_idx, s_fp), target_block = spec
                value = fregs[s_idx] if s_fp else regs[s_idx]
                taken = (value != 0) if is_bnez else (value == 0)
                if taken:
                    next_block = target_block
                    next_instr = 0
            elif kind == _K_LOAD:
                _, (b_idx, b_fp), imm, (d_idx, d_fp) = spec
                base = fregs[b_idx] if b_fp else regs[b_idx]
                mem_address = (int(base) + imm) & _VALUE_MASK
                # Inlined read_memory + destination write.
                value = memory.get(mem_address)
                if value is None:
                    value = (mem_address * _UNINIT_HASH_MULTIPLIER) & 0xFFFF
                if d_fp:
                    fregs[d_idx] = float(value)
                elif d_idx != ZERO_REG:
                    regs[d_idx] = value & _VALUE_MASK
            elif kind == _K_STORE:
                _, (b_idx, b_fp), imm, (v_idx, v_fp) = spec
                base = fregs[b_idx] if b_fp else regs[b_idx]
                mem_address = (int(base) + imm) & _VALUE_MASK
                value = fregs[v_idx] if v_fp else regs[v_idx]
                memory[mem_address] = int(value) & _VALUE_MASK
            elif kind == _K_CALL:
                if len(call_stack) >= max_call_depth:
                    raise EmulationLimitExceeded(
                        f"call depth exceeded {max_call_depth} in {proc_name}"
                    )
                call_stack.append((proc_name, block_idx, next_instr))
                next_proc = spec[1]
                next_block = 0
                next_instr = 0
                taken = True
            elif kind == _K_RET:
                taken = True
                if call_stack:
                    next_proc, next_block, next_instr = call_stack.pop()
                else:
                    halt = True
            elif kind == _K_JUMP:
                taken = True
                next_block = spec[1]
                next_instr = 0
            elif kind == _K_HALT:
                halt = True
            # _K_NOOP: no architectural effect.

            if halt:
                next_pc = pc + 4
            elif (
                next_proc is proc_name
                and next_block == block_idx
                and next_instr == instr_idx + 1
                and next_instr < len(instrs)
            ):
                # Straight-line successor: layout PCs are consecutive.
                next_pc = pc + 4
            else:
                next_pc = self._position_pc(next_proc, next_block, next_instr)

            statics_append(instr)
            pcs_append(pc)
            next_pcs_append(next_pc)
            takens_append(taken)
            mems_append(mem_address)
            seq += 1
            if window_limit is not None and len(pcs) >= window_limit:
                yield (statics, pcs, next_pcs, takens, mems)
                statics = []
                pcs = []
                next_pcs = []
                takens = []
                mems = []
                statics_append = statics.append
                pcs_append = pcs.append
                next_pcs_append = next_pcs.append
                takens_append = takens.append
                mems_append = mems.append
            if halt:
                break
            if next_proc is not proc_name:
                proc_name = next_proc
                blocks = self._blocks_for(proc_name)
                block_idx = next_block
                instr_idx = next_instr
                instrs = blocks[block_idx] if block_idx < len(blocks) else []
            elif next_block != block_idx:
                block_idx = next_block
                instr_idx = next_instr
                instrs = blocks[block_idx] if block_idx < len(blocks) else []
            else:
                instr_idx = next_instr
        self.instructions_executed = seq
        if pcs:
            yield (statics, pcs, next_pcs, takens, mems)

    # ------------------------------------------------------------------
    def _position_pc(self, proc_name: str, block_index: int, instr_index: int) -> int:
        """PC of the instruction at the given position (best effort at block ends)."""
        procedure = self.program.procedures.get(proc_name)
        if procedure is None or block_index >= len(procedure.blocks):
            return 0
        block = procedure.blocks[block_index]
        if instr_index < len(block.instructions):
            return self.layout.instruction_pc[block.instructions[instr_index].uid]
        # Falling off the block: the next block's first instruction.
        if block_index + 1 < len(procedure.blocks):
            nxt = procedure.blocks[block_index + 1]
            if nxt.instructions:
                return self.layout.instruction_pc[nxt.instructions[0].uid]
        return 0
