"""Shared fixtures for the figure/table regeneration benchmarks.

One :class:`ParallelSuiteRunner` is shared by every benchmark module so
each (benchmark, technique) pair is simulated exactly once per pytest
session; the per-figure benchmarks then measure the figure-assembly step
and, more importantly, print the regenerated numbers next to the paper's
values.

The grid is populated up front by ``run_suite`` — fanned out over
``REPRO_WORKERS`` processes (or the ``--workers`` option) and backed by
the on-disk result cache under ``benchmarks/.figure-cache`` — so re-runs
with unchanged configuration skip simulation entirely.  Delete that
directory (or change any configuration input) to force re-simulation.

The instruction budget is 100k instructions (20k warm-up) per cell:
windowed trace replay (:mod:`repro.uarch.trace`) streams each
benchmark's pre-decoded stream in ~16k-instruction windows, so decode
memory no longer grows with the budget and the figure suite runs at a
meaningfully higher fidelity than the earlier 16k-instruction compromise
(figure 6's SPECINT noop loss re-anchors against the paper's 2.2% at
this budget).  A cold grid takes a few minutes of simulation on one
core; re-runs with unchanged configuration load from the cache instead.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig

CACHE_DIR = Path(__file__).parent / ".figure-cache"


@pytest.fixture(scope="session")
def runner(suite_workers) -> ParallelSuiteRunner:
    runner = ParallelSuiteRunner(
        RunConfig(max_instructions=100_000, warmup_instructions=20_000),
        workers=suite_workers,
        cache_dir=str(CACHE_DIR),
    )
    runner.run_suite()
    return runner
