"""Section 6's whole-processor dynamic-power estimate (~11% for Improved)."""

from repro.harness.reporting import overall_processor_savings


def test_overall_processor_savings(benchmark, runner):
    value = benchmark.pedantic(
        overall_processor_savings,
        args=(runner,),
        kwargs={"technique": "improved"},
        rounds=1,
        iterations=1,
    )
    print(f"\nwhole-processor dynamic power saving (Improved): {value:.1f}% "
          f"(paper estimate: ~11%)")
    # IQ contributes 22% and the RF 11% of processor power, so the estimate
    # is bounded by 33%; it must be a material single/double-digit saving.
    assert 3.0 < value < 33.0
