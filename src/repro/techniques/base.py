"""Policy interface shared by every issue-queue management technique."""

from __future__ import annotations

import abc


class ResizingPolicy(abc.ABC):
    """Base class for issue-queue management policies.

    Subclasses override the class attributes to declare their gating
    behaviour and the hooks to react to hints and cycle boundaries.

    Attributes:
        name: short identifier used by the harness and reports.
        wakeup_gating: ``"full"`` for a conventional CAM that precharges and
            compares every operand slot on every broadcast, or
            ``"nonempty"`` when empty and already-ready operands are gated
            off (Folegnani & González).
        iq_bank_gating: True when issue-queue banks holding no valid entry
            are powered down.
        rf_bank_gating: True when register-file banks holding no allocated
            register are powered down.
        uses_hints: True when compiler hints (special NOOPs or instruction
            tags) drive the ``new_head``/``max_new_range`` mechanism.
    """

    name: str = "abstract"
    wakeup_gating: str = "full"
    iq_bank_gating: bool = False
    rf_bank_gating: bool = False
    uses_hints: bool = False

    def on_simulation_start(self, core) -> None:
        """Called once, after the core's structures exist."""

    def on_measurement_start(self, core, cycle_shift: int) -> None:
        """Called when warm-up ends and the measurement clock rebases.

        The core's clock restarts at zero (an old cycle ``c`` becomes
        ``c - cycle_shift``) and its statistics counters reset; policies
        holding absolute cycle anchors or counter snapshots must rebase
        them here or their heuristics stall until the new clock catches
        up with the stale anchors.
        """

    def on_hint(self, core, value: int) -> None:
        """Called when a hint NOOP is stripped or a tagged instruction dispatches."""

    def on_cycle_end(self, core) -> None:
        """Called at the end of every simulated cycle."""

    def describe(self) -> dict:
        """Summary of the policy's static properties (for reports)."""
        return {
            "name": self.name,
            "wakeup_gating": self.wakeup_gating,
            "iq_bank_gating": self.iq_bank_gating,
            "rf_bank_gating": self.rf_bank_gating,
            "uses_hints": self.uses_hints,
        }
