"""Tests for the functional emulator and the cycle-level pipeline."""

from __future__ import annotations

import pytest

from repro.core import CompilerConfig, compile_program
from repro.isa import Instruction, Opcode, Program
from repro.isa.registers import int_reg
from repro.techniques import (
    AbellaPolicy,
    BaselinePolicy,
    FixedLimitPolicy,
    NonEmptyPolicy,
    SoftwareDirectedPolicy,
)
from repro.uarch import FunctionalEmulator, OutOfOrderCore, ProcessorConfig, simulate
from repro.uarch.emulator import ProgramLayout
from tests.conftest import make_counted_loop_program


class TestFunctionalEmulator:
    def test_counted_loop_executes_expected_instruction_count(self):
        trips, body = 10, 4
        program = make_counted_loop_program(trips=trips, body_adds=body)
        emulator = FunctionalEmulator(program)
        trace = list(emulator.run(max_instructions=10_000))
        # init (2) + trips * (body + sub + bnez) + halt
        assert len(trace) == 2 + trips * (body + 2) + 1
        assert trace[-1].static.is_halt

    def test_loop_branch_outcomes(self):
        program = make_counted_loop_program(trips=5, body_adds=1)
        emulator = FunctionalEmulator(program)
        branches = [d for d in emulator.run(max_instructions=1000) if d.is_branch]
        assert [d.taken for d in branches] == [True, True, True, True, False]

    def test_register_semantics(self):
        program = make_counted_loop_program(trips=3, body_adds=2)
        emulator = FunctionalEmulator(program)
        list(emulator.run(max_instructions=1000))
        # r2 accumulates (1 + 2) per iteration over 3 iterations.
        assert emulator.registers[2] == 9
        assert emulator.registers[1] == 0  # counter ran down

    def test_memory_roundtrip(self):
        program = Program(name="mem")
        main = program.new_procedure("main")
        block = main.add_block("entry")
        block.append(Instruction.load_imm(int_reg(1), 0x1234))
        block.append(Instruction.load_imm(int_reg(2), 0x200000))
        block.append(Instruction.store(int_reg(1), int_reg(2), 8))
        block.append(Instruction.load(int_reg(3), int_reg(2), 8))
        block.append(Instruction.halt())
        emulator = FunctionalEmulator(program)
        trace = list(emulator.run())
        assert emulator.registers[3] == 0x1234
        stores = [d for d in trace if d.is_store]
        loads = [d for d in trace if d.is_load]
        assert stores[0].mem_address == loads[0].mem_address == 0x200008

    def test_uninitialised_memory_is_deterministic(self):
        program = make_counted_loop_program()
        a = FunctionalEmulator(program)
        b = FunctionalEmulator(program)
        assert a.read_memory(0xABCDE0) == b.read_memory(0xABCDE0)

    def test_call_and_return(self, call_program):
        emulator = FunctionalEmulator(call_program)
        trace = list(emulator.run(max_instructions=10_000))
        calls = [d for d in trace if d.static.is_call]
        rets = [d for d in trace if d.static.is_return]
        assert len(calls) == len(rets) == 7  # 6 leaf calls + 1 library call
        assert trace[-1].static.is_halt

    def test_instruction_cap(self):
        program = make_counted_loop_program(trips=10_000)
        emulator = FunctionalEmulator(program)
        trace = list(emulator.run(max_instructions=500))
        assert len(trace) == 500

    def test_layout_assigns_unique_pcs(self, call_program):
        layout = ProgramLayout.for_program(call_program)
        pcs = list(layout.instruction_pc.values())
        assert len(pcs) == len(set(pcs)) == call_program.num_instructions

    def test_hint_noops_appear_in_trace(self, counted_loop_program):
        result = compile_program(counted_loop_program, CompilerConfig(), mode="noop")
        emulator = FunctionalEmulator(result.instrumented_program)
        trace = list(emulator.run(max_instructions=10_000))
        assert any(d.is_hint for d in trace)


class TestPipelineBasics:
    def test_all_instructions_commit(self, counted_loop_program):
        stats = simulate(counted_loop_program, BaselinePolicy(), max_instructions=5000)
        emulator = FunctionalEmulator(counted_loop_program)
        expected = len(list(emulator.run(max_instructions=5000)))
        assert stats.committed_instructions == expected

    def test_ipc_bounded_by_commit_width(self, gzip_program):
        config = ProcessorConfig.hpca2005()
        stats = simulate(gzip_program, BaselinePolicy(), config=config, max_instructions=3000)
        assert 0 < stats.ipc <= config.commit_width

    def test_dependent_chain_takes_one_cycle_per_instruction(self):
        program = Program(name="chain")
        main = program.new_procedure("main")
        block = main.add_block("entry")
        block.append(Instruction.load_imm(int_reg(1), 1))
        for _ in range(20):
            block.append(Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)], imm=1))
        block.append(Instruction.halt())
        stats = simulate(program, BaselinePolicy(), max_instructions=100)
        assert stats.cycles >= 20  # serial chain cannot go faster

    def test_hint_noops_not_counted_as_committed(self, counted_loop_program):
        result = compile_program(counted_loop_program, CompilerConfig(), mode="noop")
        base = simulate(counted_loop_program, BaselinePolicy(), max_instructions=5000)
        soft = simulate(
            result.instrumented_program, SoftwareDirectedPolicy(), max_instructions=6000
        )
        assert soft.hint_noops_stripped > 0
        assert soft.committed_instructions == base.committed_instructions

    def test_warmup_resets_measurement(self, gzip_program):
        cold = simulate(gzip_program, BaselinePolicy(), max_instructions=4000)
        warm = simulate(
            gzip_program, BaselinePolicy(), max_instructions=4000, warmup_instructions=2000
        )
        assert warm.committed_instructions == cold.committed_instructions - 2000
        assert warm.l1d_miss_rate <= cold.l1d_miss_rate + 1e-9

    def test_stats_summary_keys(self, gzip_program):
        stats = simulate(gzip_program, BaselinePolicy(), max_instructions=1500)
        summary = stats.summary()
        for key in ("ipc", "avg_iq_occupancy", "iq_banks_off_fraction", "l1d_miss_rate"):
            assert key in summary

    def test_max_cycles_cap(self, gzip_program):
        stats = simulate(
            gzip_program, BaselinePolicy(), max_instructions=50_000, max_cycles=200
        )
        assert stats.cycles <= 200


class TestPoliciesInPipeline:
    def test_baseline_never_stalls_on_region_limit(self, gzip_program):
        stats = simulate(gzip_program, BaselinePolicy(), max_instructions=3000)
        assert stats.iq_dispatch_stall_cycles == 0
        assert stats.iq_banks_off_fraction == 0.0

    def test_fixed_limit_reduces_occupancy(self, gzip_program):
        base = simulate(gzip_program, BaselinePolicy(), max_instructions=3000)
        limited = simulate(gzip_program, FixedLimitPolicy(16), max_instructions=3000)
        assert limited.avg_iq_occupancy < base.avg_iq_occupancy
        assert limited.iq_banks_off_fraction > 0.0

    def test_nonempty_matches_baseline_timing(self, gzip_program):
        base = simulate(gzip_program, BaselinePolicy(), max_instructions=3000)
        gated = simulate(gzip_program, NonEmptyPolicy(), max_instructions=3000)
        assert gated.cycles == base.cycles
        assert gated.iq_cmp_gated < gated.iq_cmp_full

    def test_software_policy_applies_hints(self, gzip_compiled):
        policy = SoftwareDirectedPolicy("noop")
        stats = simulate(
            gzip_compiled.instrumented_program, policy, max_instructions=3000
        )
        assert policy.hints_applied > 0
        assert stats.hint_noops_stripped > 0

    def test_extension_tags_seen_by_pipeline(self, gzip_program):
        result = compile_program(gzip_program, CompilerConfig(), mode="extension")
        policy = SoftwareDirectedPolicy("extension")
        stats = simulate(result.instrumented_program, policy, max_instructions=3000)
        assert stats.tagged_instructions_seen > 0
        assert stats.hint_noops_stripped == 0

    def test_abella_adapts_limit(self, gzip_program):
        policy = AbellaPolicy(interval_cycles=128)
        simulate(gzip_program, policy, max_instructions=4000)
        assert policy.decisions  # at least one resize decision happened
        assert policy.current_limit <= 80

    def test_software_beats_abella_on_improved_variant(self):
        """On a call-heavy benchmark, Improved loses no more IPC than abella.

        vortex is the paper's showcase for the inter-procedural refinement;
        gzip-like loop-parallel workloads are where this reproduction's
        losses exceed the paper's (see EXPERIMENTS.md), so the ordering is
        asserted where the paper's mechanism applies.
        """
        from repro.workloads import build_benchmark

        program = build_benchmark("vortex")
        base = simulate(program, BaselinePolicy(), max_instructions=4000,
                        warmup_instructions=1000)
        improved = compile_program(program, CompilerConfig(), mode="improved")
        soft = simulate(improved.instrumented_program, SoftwareDirectedPolicy("improved"),
                        max_instructions=4000, warmup_instructions=1000)
        abella = simulate(program, AbellaPolicy(), max_instructions=4000,
                          warmup_instructions=1000)
        soft_loss = 1 - soft.ipc / base.ipc
        abella_loss = 1 - abella.ipc / base.ipc
        assert soft_loss <= abella_loss + 0.02
