"""Tests for the trace pre-decode & replay subsystem.

Three families:

* **Equivalence** — the statistics of a run must not depend on how the
  decoded trace was obtained: live emulation, the in-process memo, or a
  round-trip through the on-disk :class:`~repro.uarch.trace.TraceCache`
  must all produce byte-identical :class:`SimulationStats`, across every
  technique policy and structurally different workloads.
* **Invalidation** — the trace fingerprint must move whenever anything
  that can change the committed stream moves: workload traits, the
  instruction budget, or the emulator's own source digest.
* **Reuse** — a (benchmark × technique) grid emulates each distinct
  program once; with a warm on-disk trace cache, a fresh process-like
  runner re-times cells without re-emulating at all.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import CompilerConfig, compile_program
from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.cache import ResultCache, stats_to_dict
from repro.techniques import (
    AbellaPolicy,
    BaselinePolicy,
    NonEmptyPolicy,
    SoftwareDirectedPolicy,
)
from repro.uarch import OutOfOrderCore, TraceCache, simulate
from repro.uarch.trace import (
    TRACE_FORMAT_VERSION,
    clear_trace_memo,
    get_decoded_trace,
    get_trace_stream,
    reset_trace_events,
    trace_events,
    trace_fingerprint,
)
from repro.workloads import ALL_TRAITS, build_benchmark, generate_program

MAX_INSTRUCTIONS = 3_000
WORKLOADS = ("gzip", "branchstorm", "fpstream")


def _policy(technique: str):
    if technique == "baseline":
        return BaselinePolicy()
    if technique == "nonempty":
        return NonEmptyPolicy()
    if technique == "abella":
        return AbellaPolicy(interval_cycles=256)
    return SoftwareDirectedPolicy(variant=technique)


def _program(benchmark: str, technique: str):
    if technique in ("noop", "extension", "improved"):
        result = compile_program(
            build_benchmark(benchmark), CompilerConfig(), mode=technique
        )
        return result.instrumented_program
    return build_benchmark(benchmark)


def _stats_bytes(stats) -> bytes:
    return json.dumps(stats_to_dict(stats), sort_keys=True).encode()


class TestReplayEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize(
        "technique",
        ("baseline", "nonempty", "abella", "noop", "extension", "improved"),
    )
    def test_live_memo_and_disk_paths_are_byte_identical(
        self, workload, technique, tmp_path
    ):
        program = _program(workload, technique)
        kwargs = dict(max_instructions=MAX_INSTRUCTIONS, warmup_instructions=500)

        clear_trace_memo()
        live = simulate(program, _policy(technique), live_emulation=True, **kwargs)

        # First cached call: emulates once, stores to disk, memoises.
        cache_dir = tmp_path / "traces"
        stored = simulate(
            program, _policy(technique), trace_cache=str(cache_dir), **kwargs
        )
        # Second call with a cold memo: must come back from disk.
        clear_trace_memo()
        reset_trace_events()
        replayed = simulate(
            program, _policy(technique), trace_cache=str(cache_dir), **kwargs
        )
        assert trace_events["emulations"] == 0
        assert trace_events["disk_hits"] == 1

        assert _stats_bytes(live) == _stats_bytes(stored) == _stats_bytes(replayed)

    def test_in_place_program_mutation_reemulates(self):
        """The memo keys on program *content*, not object identity, so
        mutating a ``fresh=True`` program between runs must re-emulate."""
        program = build_benchmark("gzip", fresh=True)
        simulate(program, BaselinePolicy(), max_instructions=1_500)
        instr = next(iter(program.procedures.values())).blocks[0].instructions[0]
        instr.imm += 7
        mutated = simulate(program, BaselinePolicy(), max_instructions=1_500)
        clear_trace_memo()
        live = simulate(
            program, BaselinePolicy(), max_instructions=1_500, live_emulation=True
        )
        assert _stats_bytes(mutated) == _stats_bytes(live)

    def test_warmup_run_is_identical_across_paths(self, tmp_path):
        """The warm-up clock rebase must survive the replay path too."""
        program = build_benchmark("gzip")
        kwargs = dict(max_instructions=4_000, warmup_instructions=2_000)
        clear_trace_memo()
        live = simulate(program, BaselinePolicy(), live_emulation=True, **kwargs)
        via_cache = simulate(
            program, BaselinePolicy(), trace_cache=str(tmp_path), **kwargs
        )
        assert _stats_bytes(live) == _stats_bytes(via_cache)
        assert live.committed_instructions == 2_000


class TestWindowedReplay:
    """Streaming windowed replay: bit-identical stats, bounded memory."""

    @pytest.mark.parametrize("window", (1, 7, 250, 1024))
    def test_windowed_replay_is_bit_identical(self, window, tmp_path):
        """Every window size — including 1 and sizes that don't divide
        the budget — must reproduce the monolithic stats exactly, both
        when emulating+storing and when streaming back from disk."""
        program = _program("branchstorm", "improved")
        policy = lambda: SoftwareDirectedPolicy(variant="improved")  # noqa: E731
        kwargs = dict(max_instructions=MAX_INSTRUCTIONS, warmup_instructions=500)
        clear_trace_memo()
        reference = simulate(program, policy(), trace_window=0, **kwargs)

        cache_dir = tmp_path / "traces"
        stored = simulate(
            program, policy(), trace_window=window, trace_cache=str(cache_dir), **kwargs
        )
        clear_trace_memo()  # force the replay to come back from disk
        reset_trace_events()
        replayed = simulate(
            program, policy(), trace_window=window, trace_cache=str(cache_dir), **kwargs
        )
        assert trace_events["emulations"] == 0
        assert trace_events["disk_hits"] == 1
        assert _stats_bytes(reference) == _stats_bytes(stored) == _stats_bytes(replayed)

    @pytest.mark.parametrize(
        "technique",
        ("baseline", "nonempty", "abella", "noop", "extension", "improved"),
    )
    def test_every_technique_matches_monolithic_replay(self, technique):
        """The window boundary carries every piece of microarchitectural
        state a policy can observe, so each technique's stats must be
        unchanged by windowing."""
        program = _program("gzip", technique)
        kwargs = dict(max_instructions=MAX_INSTRUCTIONS, warmup_instructions=500)
        clear_trace_memo()
        monolithic = simulate(program, _policy(technique), trace_window=0, **kwargs)
        windowed = simulate(program, _policy(technique), trace_window=640, **kwargs)
        assert _stats_bytes(monolithic) == _stats_bytes(windowed)

    def test_100k_budget_run_bounds_resident_windows(self):
        """Acceptance: a 100k-instruction run completes with peak decoded
        trace memory bounded by the window size — the core never holds
        more than the two windows spanning its fetch queue — and the
        stats are bit-identical to a monolithic replay."""
        program = build_benchmark("gzip")
        budget = 100_000
        clear_trace_memo()
        stream = get_trace_stream(program, budget, window_size=16_384)
        core = OutOfOrderCore(
            stream, policy=BaselinePolicy(), warmup_instructions=20_000
        )
        windowed = core.run()
        assert core.max_resident_windows <= 2
        clear_trace_memo()
        monolithic = simulate(
            program,
            BaselinePolicy(),
            max_instructions=budget,
            warmup_instructions=20_000,
            trace_window=0,
        )
        assert _stats_bytes(windowed) == _stats_bytes(monolithic)

    def test_truncated_window_payload_is_a_clean_miss(self, tmp_path):
        program = build_benchmark("gzip")
        cache = TraceCache(tmp_path)
        clear_trace_memo()
        kwargs = dict(max_instructions=2_000)
        first = simulate(
            program, BaselinePolicy(), trace_window=512, trace_cache=cache, **kwargs
        )
        path = cache.path_for(trace_fingerprint(program, 2_000))
        payload = path.read_bytes()
        path.write_bytes(payload[:-10])  # chop the last window's tail

        clear_trace_memo()  # the corrupted file must be consulted, not the memo
        reset_trace_events()
        again = simulate(
            program, BaselinePolicy(), trace_window=512, trace_cache=cache, **kwargs
        )
        assert trace_events["disk_misses"] == 1  # counted, not crashed
        assert trace_events["emulations"] == 1  # re-emulated...
        assert trace_events["disk_stores"] == 1  # ...and re-stored
        assert _stats_bytes(first) == _stats_bytes(again)

    def test_old_format_trace_files_are_invalidated(self, tmp_path):
        """A pre-window (format 1) file has no window table; the format
        bump turns it into a miss instead of a misread."""
        import sys

        program = build_benchmark("gzip")
        cache = TraceCache(tmp_path)
        fingerprint = trace_fingerprint(program, 1_000)
        path = cache.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        assert TRACE_FORMAT_VERSION > 1
        header = {"format": 1, "length": 0, "byteorder": sys.byteorder}
        path.write_bytes(json.dumps(header).encode() + b"\n")
        assert cache.load(fingerprint, program) is None
        assert cache.open_windows(fingerprint, program) is None
        assert cache.misses == 2

    def test_uncached_streaming_grid_emulates_once_per_program(self):
        """Budgets above the window must not regress the emulate-once
        guarantee when no disk cache is configured: repeat cells replay
        from the in-process memo of compact encoded columns."""
        program = build_benchmark("gzip")
        kwargs = dict(
            max_instructions=20_000, warmup_instructions=500, trace_window=8_192
        )
        clear_trace_memo()
        reset_trace_events()
        simulate(program, BaselinePolicy(), **kwargs)
        second = simulate(program, NonEmptyPolicy(), **kwargs)
        assert trace_events["emulations"] == 1
        assert trace_events["memo_hits"] == 1
        clear_trace_memo()
        reference = simulate(program, NonEmptyPolicy(), live_emulation=True, **kwargs)
        assert _stats_bytes(second) == _stats_bytes(reference)

    def test_stored_layout_never_defeats_the_requested_bound(self, tmp_path):
        """A cache warmed monolithically (or at any other window size)
        must be re-chunked to the requesting run's window size — serving
        the stored layout verbatim would silently unbound decode memory."""
        program = build_benchmark("gzip")
        cache = TraceCache(tmp_path)
        budget = 3_000
        clear_trace_memo()
        simulate(
            program,
            BaselinePolicy(),
            max_instructions=budget,
            trace_window=0,  # stored as one monolithic window
            trace_cache=cache,
        )
        reset_trace_events()
        stream = get_trace_stream(program, budget, window_size=256, cache=cache)
        first = stream.next_window()
        assert trace_events["disk_hits"] == 1
        assert first is not None and first.length == 256
        stream = get_trace_stream(program, budget, window_size=256, cache=cache)
        core = OutOfOrderCore(stream, policy=BaselinePolicy())
        core.run()
        assert core.max_resident_windows <= 2

    def test_windowed_and_monolithic_stores_interoperate(self, tmp_path):
        """One fingerprint serves both access patterns: a windowed store
        loads monolithically and vice versa."""
        program = build_benchmark("gzip")
        cache = TraceCache(tmp_path)
        clear_trace_memo()
        reference = simulate(
            program, BaselinePolicy(), max_instructions=2_000, trace_window=0
        )
        # Store windowed, read monolithic.
        simulate(
            program,
            BaselinePolicy(),
            max_instructions=2_000,
            trace_window=256,
            trace_cache=cache,
        )
        clear_trace_memo()
        reset_trace_events()
        monolithic = simulate(
            program,
            BaselinePolicy(),
            max_instructions=2_000,
            trace_window=0,
            trace_cache=cache,
        )
        assert trace_events["disk_hits"] == 1
        assert trace_events["emulations"] == 0
        assert _stats_bytes(monolithic) == _stats_bytes(reference)


class TestTraceCacheBounding:
    """The trace cache's byte cap: LRU pruning with utime-on-hit recency."""

    def _trace(self):
        clear_trace_memo()
        return get_decoded_trace(build_benchmark("gzip"), 1_000)

    def test_byte_cap_evicts_least_recently_used(self, tmp_path):
        import os
        import time

        trace = self._trace()
        probe = TraceCache(tmp_path / "probe")
        size = probe.store("f" * 64, trace).stat().st_size
        cache = TraceCache(tmp_path / "cache", max_bytes=3 * size + size // 2)
        for index in range(5):
            path = cache.store(f"{index:064x}", trace)
            stamp = time.time() - 100 + index
            os.utime(path, (stamp, stamp))
        assert len(cache) == 3
        assert cache.evictions == 2
        survivors = {path.name for path in cache._entry_paths()}
        assert survivors == {f"{index:064x}.trace.bin" for index in (2, 3, 4)}

    def test_hits_refresh_recency(self, tmp_path):
        import os
        import time

        program = build_benchmark("gzip")
        trace = self._trace()
        probe = TraceCache(tmp_path / "probe")
        size = probe.store("f" * 64, trace).stat().st_size
        cache = TraceCache(tmp_path / "cache", max_bytes=2 * size + size // 2)
        fingerprint_a = trace_fingerprint(program, 1_000)
        path_a = cache.store(fingerprint_a, trace)
        path_b = cache.store("b" * 64, trace)
        for offset, path in ((-100, path_a), (-50, path_b)):
            stamp = time.time() + offset
            os.utime(path, (stamp, stamp))
        # The hit re-touches A, so the later store evicts B instead.
        assert cache.load(fingerprint_a, program) is not None
        cache.store("c" * 64, trace)
        survivors = {path.name for path in cache._entry_paths()}
        assert survivors == {f"{fingerprint_a}.trace.bin", "c" * 64 + ".trace.bin"}

    def test_cache_stats_reports_traffic_and_size(self, tmp_path):
        program = build_benchmark("gzip")
        trace = self._trace()
        cache = TraceCache(tmp_path, max_bytes=1 << 30)
        fingerprint = trace_fingerprint(program, 1_000)
        cache.store(fingerprint, trace)
        assert cache.load(fingerprint, program) is not None
        assert cache.load("0" * 64, program) is None
        report = cache.cache_stats()
        assert report["traces"] == 1
        assert report["total_bytes"] > 0
        assert report["max_bytes"] == 1 << 30
        assert report["hits"] == 1
        assert report["misses"] == 1
        assert report["stores"] == 1
        assert report["evictions"] == 0

    def test_rejects_nonpositive_byte_caps(self, tmp_path):
        with pytest.raises(ValueError):
            TraceCache(tmp_path, max_bytes=0)


class TestTraceFingerprint:
    def test_changing_traits_changes_the_fingerprint(self):
        base = build_benchmark("gzip")
        tweaked_traits = dataclasses.replace(ALL_TRAITS["gzip"], seed=999_999)
        tweaked = generate_program(tweaked_traits)
        assert trace_fingerprint(base, 1_000) != trace_fingerprint(tweaked, 1_000)

    def test_changing_budget_changes_the_fingerprint(self):
        program = build_benchmark("gzip")
        assert trace_fingerprint(program, 1_000) != trace_fingerprint(program, 2_000)

    def test_changing_emulator_digest_misses_the_cache(self, tmp_path, monkeypatch):
        program = build_benchmark("gzip")
        cache = TraceCache(tmp_path)
        clear_trace_memo()
        get_decoded_trace(program, 1_000, cache=cache)
        assert cache.stores == 1

        import repro.uarch.trace as trace_module

        monkeypatch.setattr(
            trace_module, "_emulator_code_digest", lambda: "0" * 64
        )
        clear_trace_memo()
        reset_trace_events()
        get_decoded_trace(program, 1_000, cache=cache)
        # The edited-emulator fingerprint cannot resurrect the old trace.
        assert trace_events["disk_hits"] == 0
        assert trace_events["emulations"] == 1

    def test_instrumented_programs_have_distinct_fingerprints(self):
        plain = build_benchmark("gzip")
        hinted = _program("gzip", "noop")
        assert trace_fingerprint(plain, 1_000) != trace_fingerprint(hinted, 1_000)


class TestGridReuse:
    CONFIG = dict(
        benchmarks=("gzip", "branchstorm"),
        max_instructions=2_000,
        warmup_instructions=500,
    )
    TECHNIQUES = ("baseline", "nonempty")

    def test_grid_emulates_each_benchmark_once(self, tmp_path):
        clear_trace_memo()
        reset_trace_events()
        runner = ParallelSuiteRunner(
            RunConfig(**self.CONFIG), workers=1, cache_dir=str(tmp_path)
        )
        runner.run_suite(techniques=self.TECHNIQUES)
        assert runner.simulations_run == 4
        # baseline and nonempty share each benchmark's uninstrumented
        # program, so two benchmarks cost exactly two emulations.
        assert trace_events["emulations"] == 2

    def test_warm_trace_cache_skips_reemulation_entirely(self, tmp_path):
        clear_trace_memo()
        first = ParallelSuiteRunner(
            RunConfig(**self.CONFIG), workers=1, cache_dir=str(tmp_path)
        )
        first_results = first.run_suite(techniques=self.TECHNIQUES)

        # Drop the result cells but keep the decoded traces, as a second
        # host sharing only the trace directory would see.
        for path in first.cache._entry_paths():
            path.unlink()
        clear_trace_memo()
        reset_trace_events()
        second = ParallelSuiteRunner(
            RunConfig(**self.CONFIG), workers=1, cache_dir=str(tmp_path)
        )
        second_results = second.run_suite(techniques=self.TECHNIQUES)

        assert second.simulations_run == 4  # cells really were re-timed
        assert trace_events["emulations"] == 0  # ...without re-emulating
        assert second.trace_cache.hits == 2
        for key, result in first_results.items():
            assert _stats_bytes(result.stats) == _stats_bytes(
                second_results[key].stats
            )


class TestResultCacheHygiene:
    def test_lru_pruning_keeps_most_recent_cells(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path, max_entries=3)
        stats = simulate(build_benchmark("gzip"), max_instructions=500)
        for index in range(5):
            fingerprint = f"{index:064x}"
            path = cache.store(fingerprint, stats)
            # Deterministic, strictly increasing recency without sleeping;
            # all stamps sit in the past so a freshly stored cell is never
            # the pruning victim.
            stamp = time.time() - 100 + index
            os.utime(path, (stamp, stamp))
        assert len(cache) == 3
        assert cache.evictions == 2
        survivors = {path.name for path in cache._entry_paths()}
        assert survivors == {f"{index:064x}.json" for index in (2, 3, 4)}

    def test_cache_stats_reports_traffic_and_size(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=10)
        stats = simulate(build_benchmark("gzip"), max_instructions=500)
        cache.store("a" * 64, stats)
        assert cache.load("a" * 64) is not None
        assert cache.load("b" * 64) is None
        report = cache.cache_stats()
        assert report["entries"] == 1
        assert report["total_bytes"] > 0
        assert report["hits"] == 1
        assert report["misses"] == 1
        assert report["stores"] == 1
        assert report["max_entries"] == 10
