"""Reorder buffer.

A 128-entry circular buffer (table 1).  Entries progress through the states
*dispatched* -> *issued* -> *completed* and commit in order from the head.
The abella (IqRob64) baseline additionally limits how many ROB entries may
be occupied, which is supported through :meth:`ReorderBuffer.set_limit`.

Entry objects are pooled: each ring slot lazily creates one
:class:`RobEntry` and reuses it for every instruction that later occupies
the slot, so steady-state allocation performs no object construction.  An
entry is live exactly while its slot lies in the head..tail window
(``count`` tracks the extent), so recycled objects are never observable
through the public API.
"""

from __future__ import annotations

from typing import Optional


DISPATCHED = 0
ISSUED = 1
COMPLETED = 2

#: Shared placeholder for freshly (re)allocated entries' tag lists; the
#: dispatch stage overwrites these with the real rename results.
_NO_TAGS: tuple[int, ...] = ()


class RobEntry:
    """One reorder-buffer entry.

    Attributes:
        index: position in the circular buffer.
        dyn: the dynamic instruction — a trace index for the replay core.
        state: DISPATCHED, ISSUED or COMPLETED.
        dest_tags: physical registers written by the instruction.
        freed_on_commit: physical registers released when it commits.
        source_tags: physical registers read (for register-file accounting).
        completion_cycle: cycle at which execution finished.
        flags / latency / mem_addr: the instruction's pre-decoded timing
            attributes, copied from the trace window at dispatch so later
            stages (issue, execute) never index the trace — which lets the
            windowed replay core release a trace window as soon as every
            entry in it has been dispatched.
    """

    __slots__ = (
        "index",
        "dyn",
        "state",
        "dest_tags",
        "freed_on_commit",
        "source_tags",
        "completion_cycle",
        "flags",
        "latency",
        "mem_addr",
    )

    def __init__(
        self,
        index: int,
        dyn: object = None,
        state: int = DISPATCHED,
        dest_tags=None,
        freed_on_commit=None,
        source_tags=None,
        completion_cycle: int = 0,
    ):
        self.index = index
        self.dyn = dyn
        self.state = state
        self.dest_tags = dest_tags if dest_tags is not None else []
        self.freed_on_commit = freed_on_commit if freed_on_commit is not None else []
        self.source_tags = source_tags if source_tags is not None else []
        self.completion_cycle = completion_cycle
        self.flags = 0
        self.latency = 1
        self.mem_addr = 0


class ReorderBuffer:
    """In-order allocate / out-of-order complete / in-order commit buffer."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self.entries: list[Optional[RobEntry]] = [None] * capacity
        self.head = 0
        self.tail = 0
        self.count = 0
        self.limit: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of in-flight instructions."""
        return self.count

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def set_limit(self, limit: Optional[int]) -> None:
        """Cap occupancy below the physical capacity (abella's ROB limiting)."""
        if limit is not None:
            limit = max(1, min(limit, self.capacity))
        self.limit = limit

    def can_allocate(self) -> bool:
        """Whether one more instruction may be dispatched into the ROB."""
        effective = self.capacity if self.limit is None else self.limit
        return self.count < effective

    # ------------------------------------------------------------------
    def allocate(self, dyn) -> RobEntry:
        """Allocate the tail entry for ``dyn`` and return it."""
        if not self.can_allocate():
            raise RuntimeError("ROB allocate called while full")
        index = self.tail
        entry = self.entries[index]
        if entry is None:
            entry = RobEntry(index=index)
            self.entries[index] = entry
        entry.dyn = dyn
        entry.state = DISPATCHED
        entry.dest_tags = _NO_TAGS
        entry.freed_on_commit = _NO_TAGS
        entry.source_tags = _NO_TAGS
        entry.completion_cycle = 0
        self.tail = (index + 1) % self.capacity
        self.count += 1
        return entry

    def mark_issued(self, entry: RobEntry) -> None:
        """Record that the entry has left the issue queue."""
        entry.state = ISSUED

    def mark_completed(self, entry: RobEntry, cycle: int) -> None:
        """Record execution completion."""
        entry.state = COMPLETED
        entry.completion_cycle = cycle

    def commit_ready(self) -> Optional[RobEntry]:
        """The head entry if it has completed, else None."""
        if self.count == 0:
            return None
        entry = self.entries[self.head]
        if entry is not None and entry.state == COMPLETED:
            return entry
        return None

    def pop_completed(self) -> Optional[RobEntry]:
        """Retire and return the head entry if completed, else None.

        Single-call form of ``commit_ready`` + ``commit`` for the
        per-cycle commit loop, which otherwise checks the head twice per
        retired instruction.  The entry object stays in the ring for
        reuse; it is live only until the next wrap reaches its slot.
        """
        if self.count == 0:
            return None
        head = self.head
        entry = self.entries[head]
        if entry is None or entry.state != COMPLETED:
            return None
        self.head = (head + 1) % self.capacity
        self.count -= 1
        return entry

    def commit(self) -> RobEntry:
        """Retire the head entry and return it."""
        entry = self.pop_completed()
        if entry is None:
            raise RuntimeError("commit called with no completed head entry")
        return entry
