"""Figure 6: normalised IPC loss for the NOOP technique (vs. abella)."""

from figure_report import report
from repro.harness.figures import figure6


def test_figure6_ipc_loss_noop(benchmark, runner):
    figure = benchmark.pedantic(figure6, args=(runner,), rounds=1, iterations=1)
    report("Figure 6 - IPC loss, NOOP technique (paper: SPECINT 2.2%, abella 3.1%)", figure)
    series = figure.series["noop"]
    # Shape checks: resizing costs some IPC but the machine still works, and
    # mcf (memory bound, pointer chasing) sits well below the suite average
    # (the paper's qualitative claim; exact rank order is sample noise at
    # these scaled-down instruction budgets).  At the 100k-instruction
    # budget the windowed-replay suite runs at, the SPECINT noop loss
    # measures ~1.4% against the paper's 2.2% (it was ~2.4% at the old
    # 16k budget), so the tolerance band is an order of magnitude tighter
    # than the pre-window 25% ceiling.
    assert 0.0 <= series["SPECINT"] < 8.0
    assert series["mcf"] < series["SPECINT"]
    assert series["abella"] > 0.0
