"""Equivalence and caching tests for the parallel experiment engine.

The contract: :class:`ParallelSuiteRunner` is a drop-in replacement for
the serial :class:`SuiteRunner` — identical metrics for any worker count
— and a warm on-disk cache eliminates simulation entirely.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness import (
    ParallelSuiteRunner,
    RunConfig,
    SimulationJob,
    SuiteRunner,
)
from repro.harness.cache import (
    ResultCache,
    stats_from_dict,
    stats_to_dict,
)
from repro.uarch import SimulationStats


#: A tiny grid that still crosses hardware-only and software techniques
#: and includes an extended-family benchmark.
TINY_CONFIG = RunConfig(
    benchmarks=("gzip", "ptrthrash"),
    max_instructions=2_500,
    warmup_instructions=500,
)
TINY_TECHNIQUES = ("baseline", "abella", "noop")


def _grid_metrics(runner) -> dict:
    return {
        (benchmark, technique): dataclasses.asdict(runner.metrics(benchmark, technique))
        for benchmark in TINY_CONFIG.benchmarks
        for technique in TINY_TECHNIQUES
    }


class TestSerialEquivalence:
    def test_single_worker_reproduces_serial_metrics_exactly(self, suite_workers):
        serial = SuiteRunner(TINY_CONFIG)
        parallel = ParallelSuiteRunner(TINY_CONFIG, workers=suite_workers)
        parallel.run_suite(techniques=TINY_TECHNIQUES)
        assert _grid_metrics(parallel) == _grid_metrics(serial)

    def test_lazy_result_path_matches_run_suite(self):
        eager = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        eager.run_suite(techniques=TINY_TECHNIQUES)
        lazy = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        assert _grid_metrics(lazy) == _grid_metrics(eager)

    def test_software_results_keep_their_compilation(self):
        runner = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        runner.run_suite(techniques=TINY_TECHNIQUES)
        assert runner.result("gzip", "noop").compilation is not None
        assert runner.result("gzip", "baseline").compilation is None


class TestDiskCache:
    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        cold = ParallelSuiteRunner(TINY_CONFIG, workers=1, cache_dir=str(tmp_path))
        cold.run_suite(techniques=TINY_TECHNIQUES)
        expected_cells = len(TINY_CONFIG.benchmarks) * len(TINY_TECHNIQUES)
        assert cold.simulations_run == expected_cells

        warm = ParallelSuiteRunner(TINY_CONFIG, workers=1, cache_dir=str(tmp_path))
        warm.run_suite(techniques=TINY_TECHNIQUES)
        assert warm.simulations_run == 0
        assert warm.cache.hits == expected_cells
        assert _grid_metrics(warm) == _grid_metrics(cold)

    def test_changed_configuration_misses_the_cache(self, tmp_path):
        base_job = SimulationJob("gzip", "baseline", TINY_CONFIG)
        changed = dataclasses.replace(TINY_CONFIG, warmup_instructions=501)
        changed_job = SimulationJob("gzip", "baseline", changed)
        assert base_job.fingerprint() != changed_job.fingerprint()
        # Same inputs, same key.
        assert base_job.fingerprint() == SimulationJob(
            "gzip", "baseline", TINY_CONFIG
        ).fingerprint()

    def test_different_techniques_use_different_keys(self):
        keys = {
            SimulationJob("gzip", technique, TINY_CONFIG).fingerprint()
            for technique in TINY_TECHNIQUES
        }
        assert len(keys) == len(TINY_TECHNIQUES)

    def test_cache_roundtrip_preserves_all_counters(self, tmp_path):
        stats = SimulationStats(
            cycles=123, committed_instructions=456, rf_writes=7, iq_cmp_gated=8
        )
        stats.extra["note"] = 1.5
        cache = ResultCache(tmp_path)
        key = "a" * 64
        cache.store(key, stats, benchmark="gzip", technique="baseline")
        loaded = cache.load(key)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(stats)
        assert cache.stores == 1 and cache.hits == 1

    def test_missing_entry_counts_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("b" * 64) is None
        assert cache.misses == 1
        assert len(cache) == 0

    def test_orphaned_writer_temp_files_are_not_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("c" * 64, SimulationStats(cycles=1))
        (tmp_path / ".tmp-orphan.json").write_text("{}")  # killed writer
        assert len(cache) == 1


class TestStatsSerialisation:
    def test_roundtrip_identity(self):
        stats = SimulationStats(cycles=42, iq_broadcasts=9)
        assert dataclasses.asdict(stats_from_dict(stats_to_dict(stats))) == (
            dataclasses.asdict(stats)
        )

    def test_unknown_fields_are_ignored(self):
        payload = stats_to_dict(SimulationStats(cycles=1))
        payload["counter_from_the_future"] = 99
        assert stats_from_dict(payload).cycles == 1


class TestWorkerValidation:
    def test_rejects_nonpositive_worker_counts(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(TINY_CONFIG, workers=0)

    def test_env_default_is_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        runner = ParallelSuiteRunner(TINY_CONFIG)
        assert runner.workers == 3
