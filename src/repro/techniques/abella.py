"""The hardware-adaptive baseline: Abella & González's IqRob64 scheme.

The paper compares against "IqRob64" from Abella & González [2, 1]: a
hardware heuristic that periodically adapts both the usable issue-queue
size and the usable ROB size.  Every evaluation interval the mechanism
tries to shrink the structures to save power, and grows them back when the
measured performance degrades beyond a tolerance.  Because the decision is
based on *past* behaviour, rapid program phase changes are followed with a
delay -- the effect the paper identifies as the inherent weakness of purely
hardware schemes (section 1), and the reason the compiler-directed approach
can both save more power and lose less performance.

The parameters below (interval length, tolerance, resize step) were chosen
so the scheme is a competitive hardware baseline on the synthetic suite:
it loses slightly more IPC than the software NOOP scheme and clearly more
than the Extension/Improved schemes, with comparable power savings (see
EXPERIMENTS.md for the measured numbers and deviations from the paper).
"""

from __future__ import annotations

from repro.techniques.base import ResizingPolicy


class AbellaPolicy(ResizingPolicy):
    """Interval-based adaptive limiting of the issue queue and ROB."""

    name = "abella"
    wakeup_gating = "nonempty"
    iq_bank_gating = True
    rf_bank_gating = True
    uses_hints = False

    def __init__(
        self,
        interval_cycles: int = 768,
        slowdown_tolerance: float = 0.01,
        step_entries: int = 8,
        min_entries: int = 48,
        rob_ratio: float = 1.75,
        grow_steps: int = 2,
    ):
        """Create the adaptive policy.

        Args:
            interval_cycles: cycles between resize decisions.
            slowdown_tolerance: IPC degradation (relative to the best recent
                interval) that triggers growing the structures back.
            step_entries: entries added/removed per decision (one bank).
            min_entries: smallest issue-queue limit the heuristic may reach.
            rob_ratio: the ROB limit is kept at ``rob_ratio`` times the
                issue-queue limit (IqRob64 scales both structures together).
        """
        self.interval_cycles = interval_cycles
        self.slowdown_tolerance = slowdown_tolerance
        self.step_entries = step_entries
        self.min_entries = min_entries
        self.rob_ratio = rob_ratio
        self.grow_steps = grow_steps

        self._limit = 0
        self._best_interval_ipc = 0.0
        self._interval_start_cycle = 0
        self._interval_start_committed = 0
        self.decisions: list[tuple[int, int]] = []  # (cycle, new limit)

    # ------------------------------------------------------------------
    def on_simulation_start(self, core) -> None:
        self._limit = core.config.iq_entries
        self._apply(core)
        self._interval_start_cycle = core.cycle
        self._interval_start_committed = core._committed_total
        self._best_interval_ipc = 0.0

    def on_measurement_start(self, core, cycle_shift: int) -> None:
        # Keep the interval phase across the boundary: the cycle anchor
        # shifts with the clock.  The committed anchor snapshots the
        # core's *architectural* commit count, which never resets, so it
        # needs no rebase — the hardware heuristic observes the machine,
        # not the measurement infrastructure, and behaves identically
        # wherever the warm-up boundary happens to fall (which is what
        # makes window-sharded replay of this policy exact).
        self._interval_start_cycle -= cycle_shift

    def on_cycle_end(self, core) -> None:
        elapsed = core.cycle - self._interval_start_cycle
        if elapsed < self.interval_cycles:
            return
        committed = core._committed_total - self._interval_start_committed
        interval_ipc = committed / max(1, elapsed)

        if self._best_interval_ipc > 0 and interval_ipc < self._best_interval_ipc * (
            1.0 - self.slowdown_tolerance
        ):
            # Performance dropped: give entries back quickly (the heuristic
            # is deliberately asymmetric, as in the original proposal).
            self._limit = min(
                core.config.iq_entries,
                self._limit + self.grow_steps * self.step_entries,
            )
        else:
            # Performance acceptable: try to shrink and save power.
            self._limit = max(self.min_entries, self._limit - self.step_entries)

        self._best_interval_ipc = max(
            interval_ipc, self._best_interval_ipc * 0.97  # slow decay tracks phases
        )
        self._apply(core)
        self.decisions.append((core.cycle, self._limit))
        self._interval_start_cycle = core.cycle
        self._interval_start_committed = core._committed_total

    # ------------------------------------------------------------------
    def _apply(self, core) -> None:
        core.iq.set_global_limit(self._limit)
        core.rob.set_limit(int(self._limit * self.rob_ratio))

    @property
    def current_limit(self) -> int:
        """The issue-queue limit currently imposed by the heuristic."""
        return self._limit
