"""Unit tests for the simulator's building blocks (:mod:`repro.uarch`)."""

from __future__ import annotations

import pytest

from repro.isa.opcodes import FuClass
from repro.uarch.branch import HybridBranchPredictor
from repro.uarch.cache import MemoryHierarchy, SetAssociativeCache
from repro.uarch.config import CacheConfig, ProcessorConfig
from repro.uarch.functional_units import FunctionalUnitPool
from repro.uarch.issue_queue import BankedIssueQueue
from repro.uarch.regfile import OutOfPhysicalRegisters, PhysicalRegisterFile, RenameUnit
from repro.uarch.rob import ReorderBuffer


class TestProcessorConfig:
    def test_table1_defaults(self):
        config = ProcessorConfig.hpca2005()
        assert config.iq_entries == 80
        assert config.rob_entries == 128
        assert config.int_phys_regs == 112
        assert config.iq_banks == 10
        assert config.int_regfile_banks == 14
        assert config.fu_counts[FuClass.INT_ALU] == 6
        assert config.l1d.hit_latency == 2
        config.validate()

    def test_validation_rejects_bad_values(self):
        config = ProcessorConfig(iq_entries=0)
        with pytest.raises(ValueError):
            config.validate()
        config = ProcessorConfig(int_phys_regs=16)
        with pytest.raises(ValueError):
            config.validate()

    def test_cache_sets(self):
        cache = CacheConfig("x", 64 * 1024, 2, 32, 1)
        assert cache.num_sets == 1024


class TestCaches:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(CacheConfig("t", 1024, 2, 32, 1))
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.miss_rate == 0.5

    def test_lru_eviction(self):
        cache = SetAssociativeCache(CacheConfig("t", 64, 1, 32, 1))  # 2 sets, direct mapped
        cache.access(0x0)
        cache.access(0x40)  # same set, evicts 0x0
        assert cache.probe(0x0) is False
        assert cache.probe(0x40) is True

    def test_hierarchy_latencies(self):
        hierarchy = MemoryHierarchy(ProcessorConfig.hpca2005())
        miss = hierarchy.data_access(0x5000)
        hit = hierarchy.data_access(0x5000)
        assert miss.latency > hit.latency
        assert hit.l1_hit and not miss.l1_hit
        assert hit.latency == 2

    def test_l2_hit_faster_than_memory(self):
        config = ProcessorConfig.hpca2005()
        hierarchy = MemoryHierarchy(config)
        first = hierarchy.data_access(0x9000)   # misses everywhere
        hierarchy.l1d = SetAssociativeCache(config.l1d)  # clear L1 only
        second = hierarchy.data_access(0x9000)  # L1 miss, L2 hit
        assert first.latency > second.latency > 2


class TestBranchPredictor:
    def test_learns_always_taken_branch(self):
        predictor = HybridBranchPredictor()
        outcomes = [
            predictor.predict_and_update(0x400, True, 0x800) for _ in range(20)
        ]
        assert outcomes[-1].correct

    def test_learns_not_taken_branch(self):
        predictor = HybridBranchPredictor()
        for _ in range(10):
            outcome = predictor.predict_and_update(0x404, False, 0x800)
        assert outcome.correct

    def test_alternating_pattern_learned_by_gshare(self):
        predictor = HybridBranchPredictor()
        correct = 0
        for index in range(200):
            taken = index % 2 == 0
            outcome = predictor.predict_and_update(0x500, taken, 0x900)
            if index >= 100 and outcome.correct:
                correct += 1
        assert correct > 80

    def test_return_address_stack(self):
        predictor = HybridBranchPredictor()
        predictor.push_return_address(0x1000)
        predictor.push_return_address(0x2000)
        assert predictor.predict_return(0x2000) is True
        assert predictor.predict_return(0x1000) is True
        assert predictor.predict_return(0x3000) is False  # empty stack

    def test_mispredict_counter(self):
        predictor = HybridBranchPredictor()
        predictor.predict_and_update(0x600, True, 0x700)
        assert predictor.lookups == 1
        assert predictor.mispredicts >= 0


class TestFunctionalUnits:
    def test_per_cycle_limit(self):
        pool = FunctionalUnitPool({FuClass.INT_MUL: 2})
        pool.new_cycle()
        assert pool.try_acquire(FuClass.INT_MUL)
        assert pool.try_acquire(FuClass.INT_MUL)
        assert not pool.try_acquire(FuClass.INT_MUL)
        pool.new_cycle()
        assert pool.try_acquire(FuClass.INT_MUL)

    def test_structural_stall_counter(self):
        pool = FunctionalUnitPool({FuClass.INT_ALU: 1})
        pool.new_cycle()
        pool.try_acquire(FuClass.INT_ALU)
        pool.try_acquire(FuClass.INT_ALU)
        assert pool.structural_stalls == 1

    def test_available(self):
        pool = FunctionalUnitPool({FuClass.MEM_PORT: 2})
        pool.new_cycle()
        assert pool.available(FuClass.MEM_PORT) == 2
        pool.try_acquire(FuClass.MEM_PORT)
        assert pool.available(FuClass.MEM_PORT) == 1


class TestReorderBuffer:
    def test_allocate_complete_commit(self):
        rob = ReorderBuffer(4)
        entry = rob.allocate(dyn="i0")
        assert rob.occupancy == 1
        assert rob.commit_ready() is None
        rob.mark_completed(entry, cycle=3)
        assert rob.commit_ready() is entry
        committed = rob.commit()
        assert committed is entry and rob.is_empty

    def test_in_order_commit(self):
        rob = ReorderBuffer(4)
        first = rob.allocate("a")
        second = rob.allocate("b")
        rob.mark_completed(second, 1)
        assert rob.commit_ready() is None  # head not finished yet
        rob.mark_completed(first, 2)
        assert rob.commit() is first
        assert rob.commit() is second

    def test_capacity_and_limit(self):
        rob = ReorderBuffer(2)
        rob.allocate("a")
        rob.allocate("b")
        assert not rob.can_allocate()
        with pytest.raises(RuntimeError):
            rob.allocate("c")
        rob2 = ReorderBuffer(8)
        rob2.set_limit(1)
        rob2.allocate("a")
        assert not rob2.can_allocate()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestPhysicalRegisterFile:
    def test_initial_mapping_identity(self):
        rf = PhysicalRegisterFile(112, 32, 8)
        assert rf.lookup(5) == 5
        assert rf.free_count == 80
        assert rf.allocated == 32

    def test_allocate_and_release(self):
        rf = PhysicalRegisterFile(40, 32, 8)
        new, old = rf.allocate(3)
        assert rf.lookup(3) == new and old == 3
        assert rf.free_count == 7
        rf.release(old)
        assert rf.free_count == 8

    def test_lowest_first_allocation_clusters_banks(self):
        rf = PhysicalRegisterFile(112, 32, 8)
        allocations = [rf.allocate(1)[0] for _ in range(8)]
        assert allocations == sorted(allocations)
        assert max(allocations) < 48  # stays in the low banks

    def test_exhaustion_raises(self):
        rf = PhysicalRegisterFile(33, 32, 8)
        rf.allocate(0)
        with pytest.raises(OutOfPhysicalRegisters):
            rf.allocate(1)

    def test_bank_gating_counts(self):
        rf = PhysicalRegisterFile(112, 32, 8)
        assert rf.enabled_banks(bank_gating=False) == 14
        assert rf.enabled_banks(bank_gating=True) == 4  # 32 regs in 4 banks of 8


class TestRenameUnit:
    def test_rename_tracks_mappings(self):
        from repro.isa import Instruction, Opcode
        from repro.isa.registers import int_reg

        unit = RenameUnit(112, 112, 8)
        instr = Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(2), int_reg(3)])
        renamed = unit.rename(instr)
        assert renamed.source_tags == [2, 3]
        assert renamed.dest_tags[0] >= 32
        assert renamed.freed_on_commit == [1]
        # A later reader sees the new mapping.
        reader = Instruction.alu(Opcode.ADD, int_reg(4), [int_reg(1)])
        assert unit.rename(reader).source_tags == [renamed.dest_tags[0]]

    def test_fp_tags_offset_above_int(self):
        from repro.isa import Instruction, Opcode
        from repro.isa.registers import fp_reg

        unit = RenameUnit(112, 112, 8)
        instr = Instruction.alu(Opcode.FADD, fp_reg(1), [fp_reg(2), fp_reg(3)])
        renamed = unit.rename(instr)
        assert all(tag >= 112 for tag in renamed.dest_tags)
        unit.release(renamed.dest_tags[0])  # round-trips through the offset


class TestBankedIssueQueue:
    def make_queue(self) -> BankedIssueQueue:
        return BankedIssueQueue(capacity=16, bank_size=4)

    def test_allocate_and_remove(self):
        iq = self.make_queue()
        entry = iq.allocate(0, set(), 0, FuClass.INT_ALU, 0)
        assert iq.occupancy == 1 and iq.span == 1
        iq.remove(entry)
        assert iq.occupancy == 0 and iq.span == 0

    def test_physical_capacity_blocks_dispatch(self):
        iq = self.make_queue()
        for index in range(16):
            iq.allocate(index, set(), 0, FuClass.INT_ALU, 0)
        ok, reason = iq.can_dispatch()
        assert not ok and reason == "physical"

    def test_global_limit(self):
        iq = self.make_queue()
        iq.set_global_limit(4)
        for index in range(4):
            iq.allocate(index, set(), 0, FuClass.INT_ALU, 0)
        ok, reason = iq.can_dispatch()
        assert not ok and reason == "global_limit"

    def test_region_limit_and_new_head_advance(self):
        iq = self.make_queue()
        old = iq.allocate(0, set(), 0, FuClass.INT_ALU, 0)
        iq.start_new_region(2)
        first = iq.allocate(1, set(), 0, FuClass.INT_ALU, 0)
        iq.allocate(2, set(), 0, FuClass.INT_ALU, 0)
        ok, reason = iq.can_dispatch()
        assert not ok and reason == "region_limit"
        # Issuing the region's oldest entry frees a slot (figure 2).
        iq.remove(first)
        ok, _ = iq.can_dispatch()
        assert ok
        # The old region's entry is still resident and unaffected.
        assert iq.slots[old.slot] is old

    def test_wakeup_broadcast(self):
        iq = self.make_queue()
        entry = iq.allocate(0, {42, 43}, 2, FuClass.INT_ALU, 0)
        assert iq.waiting_operand_count == 2
        assert iq.broadcast(42) == 1
        assert not entry.is_ready
        assert iq.broadcast(43) == 1
        assert entry.is_ready
        assert iq.waiting_operand_count == 0
        assert iq.broadcast(42) == 0  # no duplicate wakeups

    def test_ready_entries_in_age_order(self):
        iq = self.make_queue()
        first = iq.allocate(0, set(), 0, FuClass.INT_ALU, 0)
        second = iq.allocate(1, {9}, 1, FuClass.INT_ALU, 0)
        third = iq.allocate(2, set(), 0, FuClass.INT_ALU, 0)
        ready = iq.ready_entries_in_age_order()
        assert ready == [first, third]
        iq.broadcast(9)
        assert iq.ready_entries_in_age_order() == [first, second, third]

    def test_bank_gating_counts(self):
        iq = self.make_queue()
        assert iq.enabled_banks(bank_gating=False) == 4
        assert iq.enabled_banks(bank_gating=True) == 0
        iq.allocate(0, set(), 0, FuClass.INT_ALU, 0)
        assert iq.enabled_banks(bank_gating=True) == 1

    def test_wraparound_reuses_freed_slots(self):
        iq = self.make_queue()
        entries = [iq.allocate(i, set(), 0, FuClass.INT_ALU, 0) for i in range(16)]
        for entry in entries[:8]:
            iq.remove(entry)
        # Head advanced past the removed entries, so dispatch can continue.
        for index in range(8):
            ok, _ = iq.can_dispatch()
            assert ok
            iq.allocate(100 + index, set(), 0, FuClass.INT_ALU, 0)
        assert iq.occupancy == 16

    def test_comparison_counts(self):
        iq = self.make_queue()
        iq.allocate(0, {7}, 1, FuClass.INT_ALU, 0)
        full, gated = iq.comparison_counts()
        assert full == 2 * iq.capacity
        assert gated == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            BankedIssueQueue(0, 8)
