"""Energy coefficients for the power model.

The coefficients are expressed in arbitrary energy units; only ratios
matter.  They were calibrated (see EXPERIMENTS.md) so that the *baseline*
machine's issue-queue dynamic energy is split roughly 60% wakeup CAM, 25%
RAM read/write and 15% selection logic -- the balance Wattch-era studies
report for CAM-based issue queues -- and so the register file's per-access
energy is dominated by the banked array (the part bank gating can save)
with a small bank-independent overhead (decoders and global drivers).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EnergyParams:
    """Energy coefficients (arbitrary units).

    Attributes:
        iq_cmp_energy: energy of one tag comparator operation during a
            wakeup broadcast.
        iq_write_energy: energy of writing one issue-queue entry at dispatch.
        iq_read_energy: energy of reading one issue-queue entry at issue.
        iq_selection_energy_per_cycle: always-on selection-logic energy per
            cycle (the paper keeps selection on in every configuration).
        iq_bank_leakage: static energy per issue-queue bank per cycle.
        iq_ungated_static_fraction: fraction of issue-queue leakage that
            cannot be removed by turning banks off (peripheral logic).
        rf_access_base: bank-independent energy per register-file access.
        rf_access_per_bank: per-enabled-bank energy per register-file access
            (bit-line precharge in banks that are powered).
        rf_bank_leakage: static energy per register-file bank per cycle.
        rf_ungated_static_fraction: fraction of register-file leakage that
            cannot be removed by turning banks off.
    """

    iq_cmp_energy: float = 0.55
    iq_write_energy: float = 22.0
    iq_read_energy: float = 22.0
    iq_selection_energy_per_cycle: float = 24.0
    iq_bank_leakage: float = 1.0
    iq_ungated_static_fraction: float = 0.16
    rf_access_base: float = 0.30
    rf_access_per_bank: float = 0.05
    rf_bank_leakage: float = 1.0
    rf_ungated_static_fraction: float = 0.16

    def validate(self) -> None:
        """Check all coefficients are non-negative and fractions sane."""
        for name, value in vars(self).items():
            if value < 0:
                raise ValueError(f"energy coefficient {name} must be non-negative")
        for name in ("iq_ungated_static_fraction", "rf_ungated_static_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be a fraction in [0, 1]")
