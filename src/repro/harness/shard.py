"""Window-level sharding of one benchmark's simulation.

The work-queue backend (:mod:`repro.harness.queue`) parallelises a
(benchmark × technique) grid *across* cells; this module parallelises
*within* a single large cell.  PR 3's per-window trace format made each
window of a decoded trace an independently loadable unit, so an
N-instruction budget can be split into per-window **spans** replayed in
parallel: each shard warms the machine up over a configurable stretch of
the preceding trace, measures exactly its span, and keeps a short
*slack* of subsequent entries in flight so the cycle at the span
boundary is timed exactly as in an unsharded run.  A stitcher
(:func:`repro.uarch.stats.merge_stats`) then folds the per-shard
:class:`~repro.uarch.stats.SimulationStats` into one run's counters.

Exactness is a dial, not a hope:

* ``overlap="full"`` — every shard replays the *entire* preceding trace
  as warm-up.  Each shard's microarchitectural trajectory is then
  identical to the sequential run's, the measure boundaries cut at the
  very same commits the sequential clock passes (statistics freeze
  mid-commit exactly where the next shard's warm-up flips), and the
  stitched statistics are **bit-identical** to one sequential replay.
  Total work grows quadratically with the shard count, so this mode is
  the validation reference, not the production configuration.
* ``overlap=<entries>`` — each shard warms up over only the last
  ``overlap`` trace entries before its span (caches, branch predictor
  and queue state start cold at the overlap's start).  Work is
  ``span + overlap + slack`` per shard — embarrassingly parallel — and
  the stitched statistics approximate the sequential run's.  On the
  tier-1 validation budgets an overlap of a few thousand entries keeps
  the stitched IPC within a few percent (the regression tests pin 5%);
  longer overlaps buy accuracy linearly.

:func:`compare_sharded_to_sequential` is the validation mode: it runs
both paths on a tier-1-sized budget and reports per-metric deltas.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core import compile_program
from repro.harness.experiment import RunConfig, SOFTWARE_TECHNIQUES, make_policy
from repro.uarch import SimulationStats, TraceCache
from repro.uarch.core import simulate, simulate_span
from repro.uarch.stats import merge_stats
from repro.uarch.trace import commit_mask, get_trace_columns, resolve_trace_window
from repro.workloads import build_benchmark

#: Entries replayed beyond a shard's measure span so the front end keeps
#: the pipeline fed while the span's last instructions commit.  Fetch
#: never runs further ahead of commit than the ROB plus the fetch queue
#: (well under 200 entries for the table-1 machine), so this default is
#: conservatively larger than any in-flight capacity.
DEFAULT_SHARD_SLACK = 1_024


@dataclass(frozen=True)
class ShardSpan:
    """One shard's slice of the trace, in dynamic-entry indices.

    ``[start, stop)`` is the measured span; the shard replays
    ``[warm_start, feed_stop)``, treating the ``warmup_commits``
    committed instructions before ``start`` as warm-up and freezing its
    statistics after ``measure_commits`` measured commits
    (None: run to the natural end of the feed — the final shard).
    """

    index: int
    start: int
    stop: int
    warm_start: int
    feed_stop: int
    warmup_commits: int
    measure_commits: Optional[int]


def plan_shards(
    program,
    max_instructions: int,
    warmup_instructions: int,
    span_entries: int,
    overlap: Union[str, int] = "full",
    slack: int = DEFAULT_SHARD_SLACK,
    cache: Optional[TraceCache] = None,
) -> list[ShardSpan]:
    """Split a budget into measure spans of ``span_entries`` trace entries.

    The plan is computed from the trace itself (one emulation, shared
    through the usual memo/disk tiers): span boundaries land on entry
    indices, and the commit mask translates them into the warm-up and
    measure commit counts each shard needs.  The first span is grown
    until it holds more commits than the run's warm-up, so shard 0
    always measures something; a budget that fits in one span yields a
    single shard equivalent to the sequential run.
    """
    if span_entries < 1:
        raise ValueError("span_entries must be a positive entry count")
    if isinstance(overlap, str):
        if overlap != "full":
            raise ValueError(f"overlap must be 'full' or an entry count, got {overlap!r}")
    elif overlap < 0:
        raise ValueError("overlap must be a non-negative entry count")
    columns = get_trace_columns(program, max_instructions, cache=cache)
    length = len(columns[0])
    mask = commit_mask(program, columns)
    prefix = [0] * (length + 1)
    total = 0
    for index, bit in enumerate(mask):
        total += bit
        prefix[index + 1] = total

    boundaries = list(range(0, length, span_entries)) or [0]
    boundaries.append(length)  # range() never includes length itself
    # Grow the first span past the warm-up so shard 0 measures something.
    while len(boundaries) > 2 and prefix[boundaries[1]] <= warmup_instructions:
        boundaries.pop(1)
    # Merge any span holding zero commits (all hint-NOOPs/NOPs at tiny
    # span sizes) into its predecessor: a measure span must advance the
    # commit count or the freeze/flip boundary it shares with its
    # neighbour would be ill-defined.
    deduped = [boundaries[0]]
    for boundary in boundaries[1:-1]:
        if prefix[boundary] > prefix[deduped[-1]]:
            deduped.append(boundary)
    deduped.append(boundaries[-1])
    boundaries = deduped

    spans: list[ShardSpan] = []
    last = len(boundaries) - 2
    for index in range(len(boundaries) - 1):
        start, stop = boundaries[index], boundaries[index + 1]
        if index == 0:
            warm_start = 0
            warmup = warmup_instructions
        elif overlap == "full":
            warm_start = 0
            warmup = prefix[start]
        else:
            warm_start = max(0, start - overlap)
            warmup = prefix[start] - prefix[warm_start]
        if index == last:
            feed_stop = length
            measure: Optional[int] = None
        else:
            feed_stop = min(length, stop + max(0, slack))
            measure = prefix[stop] - prefix[start]
            if index == 0:
                measure -= warmup_instructions
        spans.append(
            ShardSpan(
                index=index,
                start=start,
                stop=stop,
                warm_start=warm_start,
                feed_stop=feed_stop,
                warmup_commits=warmup,
                measure_commits=measure,
            )
        )
    return spans


@dataclass
class ShardJob:
    """Picklable description of one shard of a (benchmark, technique) cell.

    Mirrors :class:`repro.harness.parallel.SimulationJob` so shards ride
    the same execution backends — the in-process path, the process pool
    and the distributed work queue.  ``cell_fingerprint`` names the
    parent cell (for grouping and queue completion markers); the shard's
    own fingerprint extends it with the span geometry.
    """

    benchmark: str
    technique: str
    config: RunConfig
    span: ShardSpan
    cell_fingerprint: str
    trace_cache_dir: Optional[str] = None
    trace_window: Optional[int] = None
    trace_cache_max_bytes: Optional[int] = None
    # Replay kernel (transport, not identity — engines are bit-identical
    # and never participate in the fingerprint, mirroring SimulationJob).
    engine: Optional[str] = None
    # Queue-backend retry budget (transport as well, mirroring
    # SimulationJob.max_attempts; None means the queue's default).
    max_attempts: Optional[int] = None
    # Queue scheduling band (transport, mirroring SimulationJob.priority;
    # None means the queue's default band).
    priority: Optional[int] = None

    def fingerprint(self) -> str:
        span = self.span
        text = (
            f"{self.cell_fingerprint}:shard:{span.index}:{span.start}:{span.stop}"
            f":{span.warm_start}:{span.feed_stop}"
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _program_for(benchmark: str, technique: str, config: RunConfig):
    if technique in SOFTWARE_TECHNIQUES:
        compilation = compile_program(
            build_benchmark(benchmark), config.compiler_config, mode=technique
        )
        return compilation.instrumented_program
    return build_benchmark(benchmark)


def run_shard_job(job: ShardJob, program=None, trace_cache=None) -> dict:
    """Execute one shard; return ``{"stats": ..., "trace_cache": ...}``.

    The same worker contract as
    :func:`repro.harness.parallel.run_simulation_job`: pool and queue
    workers build a private :class:`TraceCache` over
    ``job.trace_cache_dir`` and ship its counter deltas back in the
    payload, while the in-process path accumulates traffic directly on
    the caller's cache.
    """
    from repro.harness.cache import stats_to_dict

    config = job.config
    if program is None:
        program = _program_for(job.benchmark, job.technique, config)
    local_cache = trace_cache
    if local_cache is None and job.trace_cache_dir is not None:
        local_cache = TraceCache(
            job.trace_cache_dir, max_bytes=job.trace_cache_max_bytes
        )
    span = job.span
    stats = simulate_span(
        program,
        make_policy(job.technique, config),
        config=config.processor_config,
        max_instructions=config.max_instructions,
        first_entry=span.warm_start,
        last_entry=span.feed_stop,
        warmup_commits=span.warmup_commits,
        measure_commits=span.measure_commits,
        trace_cache=local_cache,
        trace_window=job.trace_window,
        engine=job.engine,
    )
    payload: dict = {"stats": stats_to_dict(stats)}
    if local_cache is not None and local_cache is not trace_cache:
        payload["trace_cache"] = {
            "hits": local_cache.hits,
            "misses": local_cache.misses,
            "stores": local_cache.stores,
            "evictions": local_cache.evictions,
        }
    return payload


def stitch_payloads(payloads: Sequence[dict]) -> SimulationStats:
    """Merge per-shard job payloads (in span order) into one run's stats."""
    from repro.harness.cache import stats_from_dict

    return merge_stats([stats_from_dict(payload["stats"]) for payload in payloads])


def run_sharded(
    benchmark: str,
    technique: str,
    config: RunConfig,
    *,
    span_entries: int,
    overlap: Union[str, int] = "full",
    slack: int = DEFAULT_SHARD_SLACK,
    trace_cache=None,
    trace_window: Optional[int] = None,
    engine: Optional[str] = None,
) -> SimulationStats:
    """Shard one cell in-process and stitch the result (reference path).

    The parallel execution paths live in
    :class:`repro.harness.parallel.ParallelSuiteRunner`
    (``shard_span_windows=...``); this helper runs the same plan
    serially, which the validation tests use as the sharding oracle.
    """
    if trace_cache is not None and not isinstance(trace_cache, TraceCache):
        trace_cache = TraceCache(trace_cache)
    program = _program_for(benchmark, technique, config)
    spans = plan_shards(
        program,
        config.max_instructions,
        config.warmup_instructions,
        span_entries,
        overlap=overlap,
        slack=slack,
        cache=trace_cache,
    )
    parts = []
    for span in spans:
        job = ShardJob(
            benchmark,
            technique,
            config,
            span,
            cell_fingerprint="",
            trace_window=trace_window,
            engine=engine,
        )
        parts.append(run_shard_job(job, program, trace_cache))
    return stitch_payloads(parts)


def compare_sharded_to_sequential(
    benchmark: str,
    technique: str,
    config: RunConfig,
    *,
    span_entries: int,
    overlap: Union[str, int] = "full",
    slack: int = DEFAULT_SHARD_SLACK,
    trace_window: Optional[int] = None,
    engine: Optional[str] = None,
) -> dict:
    """Validation mode: stitched vs. sequential stats on one budget.

    Returns the two :class:`SimulationStats` plus the relative error of
    the headline metrics.  With ``overlap="full"`` every delta is
    exactly zero (the stitched run is bit-identical); finite overlaps
    trade accuracy for parallel speedup and should stay within the
    documented tolerance (a few percent of IPC at tier-1 budgets).
    """
    program = _program_for(benchmark, technique, config)
    policy = make_policy(technique, config)
    sequential = simulate(
        program,
        policy,
        config=config.processor_config,
        max_instructions=config.max_instructions,
        warmup_instructions=config.warmup_instructions,
        trace_window=trace_window,
        engine=engine,
    )
    stitched = run_sharded(
        benchmark,
        technique,
        config,
        span_entries=span_entries,
        overlap=overlap,
        slack=slack,
        trace_window=trace_window,
        engine=engine,
    )

    def _rel(a: float, b: float) -> float:
        if b == 0:
            return 0.0 if a == 0 else float("inf")
        return abs(a - b) / abs(b)

    deltas = {
        "ipc": _rel(stitched.ipc, sequential.ipc),
        "cycles": _rel(stitched.cycles, sequential.cycles),
        "committed": _rel(
            stitched.committed_instructions, sequential.committed_instructions
        ),
        "avg_iq_occupancy": _rel(
            stitched.avg_iq_occupancy, sequential.avg_iq_occupancy
        ),
        "iq_banks_off_fraction": _rel(
            stitched.iq_banks_off_fraction, sequential.iq_banks_off_fraction
        ),
    }
    return {
        "stitched": stitched,
        "sequential": sequential,
        "deltas": deltas,
        "shards": len(
            plan_shards(
                program,
                config.max_instructions,
                config.warmup_instructions,
                span_entries,
                overlap=overlap,
                slack=slack,
            )
        ),
    }


def shard_span_entries(
    span_windows: int, trace_window: Optional[int] = None
) -> int:
    """Entries per measure span for a span of ``span_windows`` windows."""
    if span_windows < 1:
        raise ValueError("span_windows must be a positive window count")
    window = resolve_trace_window(trace_window)
    if window == 0:
        raise ValueError(
            "window sharding needs a non-zero trace window "
            "(trace_window=0 forces monolithic replay)"
        )
    return span_windows * window
