"""Configuration of the compiler analysis.

The analysis is deliberately independent of any particular hardware
configuration (section 1.2 of the paper), but it must know the resources it
schedules against: the processor's issue width, functional-unit counts and
the latency it should assume for memory operations (the paper assumes all
cache hits, section 4.2).  The defaults mirror table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass, Opcode


def default_fu_counts() -> dict[FuClass, int]:
    """Functional-unit counts from table 1 (plus 2 memory ports, the
    SimpleScalar default the paper's simulator inherits)."""
    return {
        FuClass.INT_ALU: 6,
        FuClass.INT_MUL: 3,
        FuClass.FP_ALU: 4,
        FuClass.FP_MULDIV: 2,
        FuClass.MEM_PORT: 2,
        FuClass.NONE: 10_000,  # control/no-op instructions are unconstrained
    }


@dataclass
class CompilerConfig:
    """Parameters of the compiler analysis.

    Attributes:
        issue_width: instructions the pseudo issue queue may issue per cycle.
        fu_counts: available functional units per class.
        assumed_l1_hit_latency: additional cycles the compiler charges a load
            beyond address generation (all accesses assumed L1 hits).
        max_iq_entries: the physical issue-queue capacity; requirements are
            clamped to this and library calls request this value.
        min_hint_value: lower clamp applied to emitted requirements.  A tiny
            floor avoids pathological throttling when a block is trivially
            small; the paper's blocks have the same effect because dispatch
            width bounds how fast a region fills anyway.
        merge_policy: how register-availability summaries from multiple
            control-flow predecessors are merged: ``"max"`` (conservative,
            the default) or ``"ready"`` (assume everything available).
        max_merge_preds: blocks with more predecessors than this fall back
            to the ``"ready"`` summary.  This models the paper's
            "conservative assumptions ... in the presence of complex control
            paths" that limit gcc's accuracy (section 5.3).
        max_simple_cycles: cap on the number of elementary dependence cycles
            enumerated per loop before falling back to an SCC approximation.
        hot_call_threshold: a callee invoked from at least this many call
            sites inside loops is considered *hot* for the Improved scheme's
            inter-procedural functional-unit-contention refinement.
        sizing_margin: multiplicative head-room applied to every emitted
            requirement.  The analysis deliberately ignores effects the
            compiler cannot see (cache misses, branch-resolution shadows,
            the non-collapsing queue's holes), exactly as the paper's does;
            the margin is the calibration constant that absorbs them.  It is
            the reproduction's stand-in for whatever slack the authors'
            MachineSUIF implementation carried implicitly, and it is the
            knob the ablation bench sweeps.
        sizing_slack: additive head-room applied together with
            ``sizing_margin``.
    """

    issue_width: int = 8
    fu_counts: dict[FuClass, int] = field(default_factory=default_fu_counts)
    assumed_l1_hit_latency: int = 2
    max_iq_entries: int = 80
    min_hint_value: int = 4
    merge_policy: str = "max"
    max_merge_preds: int = 4
    max_simple_cycles: int = 200
    hot_call_threshold: int = 1
    sizing_margin: float = 1.6
    sizing_slack: int = 8

    def instruction_latency(self, instruction: Instruction) -> int:
        """Latency the compiler assumes for ``instruction``.

        Loads are assumed to hit in the L1 data cache (section 4.2); every
        other instruction uses its functional latency.
        """
        latency = instruction.latency
        if instruction.opcode is Opcode.LOAD:
            latency += self.assumed_l1_hit_latency
        return latency

    def clamp_requirement(self, entries: int) -> int:
        """Apply the sizing margin and clamp into the physical range."""
        with_margin = int(round(entries * self.sizing_margin)) + self.sizing_slack
        return max(self.min_hint_value, min(with_margin, self.max_iq_entries))
