"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cfg import build_ddg
from repro.core import CompilerConfig
from repro.core.loop_analysis import analyse_loop_body
from repro.core.pseudo_queue import PseudoIssueQueue
from repro.isa import Instruction, Opcode
from repro.isa.encoding import HINT_MAX_VALUE, decode_hint_payload, encode_hint_payload
from repro.isa.opcodes import FuClass
from repro.isa.registers import int_reg
from repro.uarch.issue_queue import BankedIssueQueue
from repro.uarch.regfile import PhysicalRegisterFile
from repro.workloads.generator import SyntheticProgramGenerator
from repro.workloads.traits import BenchmarkTraits


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
_alu_opcodes = st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.MUL])


@st.composite
def instruction_sequences(draw, max_length: int = 20):
    """Random straight-line sequences of ALU/memory instructions."""
    length = draw(st.integers(min_value=1, max_value=max_length))
    instructions = []
    for _ in range(length):
        choice = draw(st.integers(min_value=0, max_value=3))
        dest = int_reg(draw(st.integers(min_value=1, max_value=12)))
        src = int_reg(draw(st.integers(min_value=1, max_value=12)))
        if choice == 0:
            instructions.append(Instruction.load(dest, src, draw(st.integers(0, 64)) * 8))
        elif choice == 1:
            instructions.append(Instruction.store(dest, src, draw(st.integers(0, 64)) * 8))
        else:
            opcode = draw(_alu_opcodes)
            instructions.append(
                Instruction.alu(opcode, dest, [src], imm=draw(st.integers(1, 7)))
            )
    return instructions


# ---------------------------------------------------------------------------
# Hint encoding
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=HINT_MAX_VALUE))
def test_hint_encoding_roundtrip(value):
    assert decode_hint_payload(encode_hint_payload(value)) == value


@given(st.integers(min_value=0, max_value=10_000))
def test_hint_encoding_never_exceeds_payload(value):
    assert 0 <= encode_hint_payload(value) <= HINT_MAX_VALUE


# ---------------------------------------------------------------------------
# Dependence graphs
# ---------------------------------------------------------------------------
@given(instruction_sequences())
@settings(max_examples=40, deadline=None)
def test_ddg_edges_point_forward_within_iteration(instructions):
    ddg = build_ddg(instructions, include_loop_carried=True)
    for edge in ddg.edges:
        assert 0 <= edge.src < len(instructions)
        assert 0 <= edge.dst < len(instructions)
        if edge.distance == 0:
            assert edge.src < edge.dst or edge.src == edge.dst is None
        assert edge.latency >= 1


@given(instruction_sequences())
@settings(max_examples=40, deadline=None)
def test_ddg_carried_edges_only_when_requested(instructions):
    plain = build_ddg(instructions, include_loop_carried=False)
    assert all(edge.distance == 0 for edge in plain.edges)


# ---------------------------------------------------------------------------
# Pseudo issue queue / analysis invariants
# ---------------------------------------------------------------------------
@given(instruction_sequences())
@settings(max_examples=30, deadline=None)
def test_pseudo_queue_requirement_bounds(instructions):
    config = CompilerConfig()
    schedule = PseudoIssueQueue(config).schedule(instructions)
    occupying = [i for i in instructions if i.occupies_iq]
    assert 0 <= schedule.entries_needed <= len(occupying)
    assert all(cycle >= 0 for cycle in schedule.issue_cycle)
    # Dependences are respected: every consumer issues after its producer.
    ddg = build_ddg(occupying)
    for edge in ddg.intra_edges():
        assert schedule.issue_cycle[edge.dst] > schedule.issue_cycle[edge.src] - 1


@given(instruction_sequences(max_length=14))
@settings(max_examples=25, deadline=None)
def test_loop_requirement_is_clamped_and_monotone_in_margin(instructions):
    tight = CompilerConfig(sizing_margin=1.0, sizing_slack=0)
    loose = CompilerConfig(sizing_margin=2.0, sizing_slack=4)
    tight_req = analyse_loop_body(instructions, tight)
    loose_req = analyse_loop_body(instructions, loose)
    assert tight.min_hint_value <= tight_req.entries <= tight.max_iq_entries
    assert loose_req.entries >= tight_req.entries


# ---------------------------------------------------------------------------
# Issue queue invariants under random operation sequences
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=120))
@settings(max_examples=60, deadline=None)
def test_issue_queue_invariants(operations):
    """Random allocate/remove/broadcast sequences keep the queue consistent."""
    iq = BankedIssueQueue(capacity=16, bank_size=4)
    live = []
    next_tag = 1000
    for op in operations:
        if op == 0:  # allocate if possible
            ok, _ = iq.can_dispatch()
            if ok:
                entry = iq.allocate(len(live), {next_tag}, 1, FuClass.INT_ALU, 0)
                live.append((entry, next_tag))
                next_tag += 1
        elif op == 1 and live:  # wake then remove the oldest live entry
            entry, tag = live.pop(0)
            iq.broadcast(tag)
            iq.remove(entry)
        elif op == 2 and live:  # broadcast a random live tag (wake only)
            iq.broadcast(live[-1][1])

        # Invariants.
        assert iq.occupancy == len(live)
        assert 0 <= iq.occupancy <= iq.span <= iq.capacity
        assert sum(iq.bank_counts) == iq.occupancy
        assert iq.waiting_operand_count >= 0
        assert iq.enabled_banks(True) <= iq.num_banks
        assert iq.region_occupancy <= iq.span


# ---------------------------------------------------------------------------
# Register file invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=70))
@settings(max_examples=50, deadline=None)
def test_register_file_allocation_invariants(arch_regs):
    rf = PhysicalRegisterFile(112, 32, 8)
    released = []
    for arch in arch_regs:
        if rf.free_count == 0:
            break
        _, old = rf.allocate(arch)
        released.append(old)
        assert rf.allocated + rf.free_count == 112
        assert sum(rf.bank_counts) == rf.allocated
    for phys in released:
        rf.release(phys)
    assert rf.allocated + rf.free_count == 112
    assert rf.allocated == 32 - len([r for r in []])  # all transients released
    assert sum(rf.bank_counts) == rf.allocated


# ---------------------------------------------------------------------------
# Workload generator: any sane trait combination yields a valid program
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loops=st.integers(min_value=0, max_value=3),
    dags=st.integers(min_value=0, max_value=2),
    calls=st.integers(min_value=0, max_value=2),
    ilp=st.integers(min_value=1, max_value=5),
    mem=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=25, deadline=None)
def test_generator_always_produces_valid_programs(seed, loops, dags, calls, ilp, mem):
    traits = BenchmarkTraits(
        name="prop",
        seed=seed,
        num_loop_kernels=loops,
        num_dag_kernels=dags,
        num_call_kernels=calls,
        ilp_width=ilp,
        mem_fraction=mem,
        outer_trips=2,
        loop_trip_count=(2, 5),
    )
    program = SyntheticProgramGenerator(traits).build()
    program.validate()
    assert "main" in program.procedures
