"""Instruction-set / intermediate-representation substrate.

This package defines the RISC-like IR that both the compiler analysis
(:mod:`repro.core`) and the out-of-order timing simulator
(:mod:`repro.uarch`) operate on.  It plays the role that the Alpha ISA and
the MachineSUIF IR play in the original paper.

The public surface is:

* :class:`~repro.isa.opcodes.Opcode` and :class:`~repro.isa.opcodes.FuClass`
  -- operations, their functional-unit classes and latencies.
* :class:`~repro.isa.instruction.Instruction` -- a single IR instruction,
  including the special hint NOOP used by the paper's NOOP scheme and the
  per-instruction tag used by the Extension scheme.
* :class:`~repro.isa.program.Program`, :class:`~repro.isa.program.Procedure`
  and :class:`~repro.isa.program.BasicBlock` -- the static program
  containers the compiler analyses and the simulator executes.
* :mod:`repro.isa.encoding` -- encoding/decoding of issue-queue size hints
  into NOOP payloads and instruction tags.
"""

from repro.isa.opcodes import (
    FuClass,
    Opcode,
    OPCODE_FU_CLASS,
    OPCODE_LATENCY,
    is_branch,
    is_control,
    is_memory,
)
from repro.isa.registers import (
    NUM_ARCH_REGS,
    Reg,
    REG_NAMES,
    RETURN_VALUE_REG,
    STACK_POINTER_REG,
    ZERO_REG,
)
from repro.isa.instruction import Instruction, InstructionKind
from repro.isa.program import BasicBlock, Procedure, Program
from repro.isa.encoding import (
    HINT_MAX_VALUE,
    decode_hint_payload,
    encode_hint_payload,
    make_hint_noop,
)

__all__ = [
    "FuClass",
    "Opcode",
    "OPCODE_FU_CLASS",
    "OPCODE_LATENCY",
    "is_branch",
    "is_control",
    "is_memory",
    "NUM_ARCH_REGS",
    "Reg",
    "REG_NAMES",
    "RETURN_VALUE_REG",
    "STACK_POINTER_REG",
    "ZERO_REG",
    "Instruction",
    "InstructionKind",
    "BasicBlock",
    "Procedure",
    "Program",
    "HINT_MAX_VALUE",
    "decode_hint_payload",
    "encode_hint_payload",
    "make_hint_noop",
]
