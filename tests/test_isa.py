"""Unit tests for the ISA/IR substrate (:mod:`repro.isa`)."""

from __future__ import annotations

import pytest

from repro.isa import (
    HINT_MAX_VALUE,
    Instruction,
    InstructionKind,
    Opcode,
    Program,
    decode_hint_payload,
    encode_hint_payload,
    is_branch,
    is_control,
    is_memory,
    make_hint_noop,
)
from repro.isa.encoding import HintEncodingError, tag_instruction
from repro.isa.opcodes import FuClass, default_latency, fu_class, is_int_alu
from repro.isa.program import BasicBlock, Procedure, ProgramError
from repro.isa.registers import NUM_ARCH_REGS, Reg, fp_reg, int_reg


class TestOpcodes:
    def test_every_opcode_has_latency_and_fu_class(self):
        for opcode in Opcode:
            assert default_latency(opcode) >= 1
            assert isinstance(fu_class(opcode), FuClass)

    @pytest.mark.parametrize("opcode", [Opcode.BEQZ, Opcode.BNEZ])
    def test_conditional_branches_are_branches(self, opcode):
        assert is_branch(opcode)
        assert is_control(opcode)

    @pytest.mark.parametrize(
        "opcode", [Opcode.JUMP, Opcode.CALL, Opcode.RET, Opcode.HALT]
    )
    def test_other_control_flow_is_control_but_not_branch(self, opcode):
        assert is_control(opcode)
        assert not is_branch(opcode)

    @pytest.mark.parametrize("opcode", [Opcode.LOAD, Opcode.STORE])
    def test_memory_classification(self, opcode):
        assert is_memory(opcode)
        assert fu_class(opcode) is FuClass.MEM_PORT

    def test_int_alu_latency_is_one_cycle(self):
        for opcode in Opcode:
            if is_int_alu(opcode):
                assert default_latency(opcode) == 1

    def test_table1_latencies(self):
        assert default_latency(Opcode.MUL) == 3
        assert default_latency(Opcode.FADD) == 2
        assert default_latency(Opcode.FMUL) == 4
        assert default_latency(Opcode.FDIV) == 12


class TestRegisters:
    def test_register_names(self):
        assert int_reg(5).name == "r5"
        assert fp_reg(3).name == "f3"

    def test_out_of_range_register_rejected(self):
        with pytest.raises(ValueError):
            Reg(NUM_ARCH_REGS)
        with pytest.raises(ValueError):
            Reg(-1)

    def test_registers_are_hashable_and_comparable(self):
        assert int_reg(3) == Reg(3)
        assert len({int_reg(1), Reg(1), int_reg(2)}) == 2
        assert int_reg(1) != fp_reg(1)


class TestInstruction:
    def test_alu_builder(self):
        instr = Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(2), int_reg(3)])
        assert instr.dests == (int_reg(1),)
        assert instr.srcs == (int_reg(2), int_reg(3))
        assert instr.kind is InstructionKind.INT_ALU
        assert instr.occupies_iq

    def test_load_store_builders(self):
        load = Instruction.load(int_reg(1), int_reg(2), 16)
        store = Instruction.store(int_reg(1), int_reg(2), 8)
        assert load.is_load and load.is_memory
        assert store.is_store and store.is_memory
        assert load.imm == 16 and store.imm == 8

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(opcode=Opcode.BEQZ, srcs=(int_reg(1),))

    def test_call_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(opcode=Opcode.CALL)

    def test_hint_requires_value(self):
        with pytest.raises(ValueError):
            Instruction(opcode=Opcode.HINT)

    def test_hint_does_not_occupy_issue_queue(self):
        hint = Instruction.hint(12)
        assert hint.is_hint
        assert not hint.occupies_iq

    def test_uids_are_unique(self):
        a = Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)])
        b = Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)])
        assert a.uid != b.uid

    def test_str_contains_opcode_and_operands(self):
        instr = Instruction.alu(Opcode.XOR, int_reg(4), [int_reg(5)], imm=3)
        text = str(instr)
        assert "xor" in text and "r4" in text and "r5" in text


class TestHintEncoding:
    @pytest.mark.parametrize("value", [0, 1, 8, 80, HINT_MAX_VALUE])
    def test_roundtrip(self, value):
        assert decode_hint_payload(encode_hint_payload(value)) == value

    def test_oversized_request_is_clamped(self):
        assert encode_hint_payload(HINT_MAX_VALUE + 50) == HINT_MAX_VALUE

    def test_negative_request_rejected(self):
        with pytest.raises(HintEncodingError):
            encode_hint_payload(-1)

    def test_decode_rejects_out_of_range_payload(self):
        with pytest.raises(HintEncodingError):
            decode_hint_payload(HINT_MAX_VALUE + 1)

    def test_make_hint_noop(self):
        hint = make_hint_noop(24)
        assert hint.opcode is Opcode.HINT
        assert hint.hint_value == 24

    def test_tagging_ordinary_instruction(self):
        instr = Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)])
        tag_instruction(instr, 30)
        assert instr.iq_tag == 30

    def test_tagging_hint_rejected(self):
        with pytest.raises(HintEncodingError):
            tag_instruction(make_hint_noop(5), 10)


class TestProgramContainers:
    def test_block_terminator_and_fallthrough(self):
        block = BasicBlock(label="b")
        block.append(Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)]))
        assert block.terminator is None and block.falls_through
        block.append(Instruction.jump("elsewhere"))
        assert block.terminator is not None and not block.falls_through

    def test_branch_block_falls_through(self):
        block = BasicBlock(label="b")
        block.append(Instruction.branch_nez(int_reg(1), "t"))
        assert block.falls_through

    def test_duplicate_block_label_rejected(self):
        proc = Procedure(name="p")
        proc.add_block("a")
        with pytest.raises(ProgramError):
            proc.add_block("a")

    def test_unknown_branch_target_rejected(self, counted_loop_program):
        program = counted_loop_program
        block = program.procedures["main"].find_block("loop")
        block.append(Instruction.branch_nez(int_reg(1), "nowhere"))
        with pytest.raises(ProgramError):
            program.validate()

    def test_unknown_call_target_rejected(self):
        program = Program(name="bad")
        main = program.new_procedure("main")
        block = main.add_block("entry")
        block.append(Instruction.call("missing"))
        block.append(Instruction.halt())
        with pytest.raises(ProgramError):
            program.validate()

    def test_missing_entry_rejected(self):
        program = Program(name="noentry", entry="main")
        program.new_procedure("other").add_block("b").append(Instruction.halt())
        with pytest.raises(ProgramError):
            program.validate()

    def test_counting_helpers(self, call_program):
        assert call_program.num_instructions > 0
        assert call_program.num_basic_blocks >= 6
        assert call_program.count_opcode(Opcode.CALL) == 2
        analysable = [p.name for p in call_program.analysable_procedures()]
        assert "libfn" not in analysable and "leaf" in analysable

    def test_non_hint_instructions(self):
        block = BasicBlock(label="b")
        block.append(make_hint_noop(9))
        block.append(Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)]))
        assert len(block.non_hint_instructions()) == 1
