"""Synthetic SPECint2000-like workload suite.

The paper evaluates on eleven SPEC CPU2000 integer benchmarks compiled with
MachineSUIF.  SPEC sources and inputs cannot be redistributed (and a
pure-Python simulator could not run 100M-instruction samples anyway), so
this package provides a *synthetic* stand-in: for each benchmark a program
generator builds an IR program whose structural characteristics -- loop
body sizes and trip counts, dependence-chain depth and width, memory
intensity and working-set size, pointer chasing, call density, functional
unit mix, control-flow complexity -- are chosen to mimic the published
qualitative behaviour of that benchmark (see DESIGN.md for the
substitution argument).

Public API::

    from repro.workloads import build_benchmark, SPECINT_BENCHMARKS

    program = build_benchmark("vortex")
    suite = {name: build_benchmark(name) for name in SPECINT_BENCHMARKS}
"""

from repro.workloads.traits import (
    ALL_TRAITS,
    BenchmarkTraits,
    EXTENDED_TRAITS,
    SPECINT_TRAITS,
)
from repro.workloads.generator import SyntheticProgramGenerator, generate_program
from repro.workloads.specint import (
    ALL_BENCHMARKS,
    EXTENDED_BENCHMARKS,
    SPECINT_BENCHMARKS,
    build_benchmark,
    build_suite,
)

__all__ = [
    "ALL_TRAITS",
    "BenchmarkTraits",
    "EXTENDED_TRAITS",
    "SPECINT_TRAITS",
    "SyntheticProgramGenerator",
    "generate_program",
    "ALL_BENCHMARKS",
    "EXTENDED_BENCHMARKS",
    "SPECINT_BENCHMARKS",
    "build_benchmark",
    "build_suite",
]
