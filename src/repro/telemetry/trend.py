"""Perf-trajectory gate over ``benchmarks/BENCH_trace.json``.

The perf benches have appended to ``BENCH_trace.json`` since PR 1, but
nothing ever *read* it — the floors in each bench are hand-set
constants, so a slow drift that stays above the floor goes unnoticed.
This module turns the trajectory into an enforced invariant::

    PYTHONPATH=src python -m repro.telemetry.trend

parses the history, splits it into per-series samples —

* ``engine/<name>/cold`` and ``engine/<name>/warm``: per-engine
  simulator throughput in cycles/second (higher is better; entries
  older than the PR 5 engine split carry no ``engine`` field and are
  attributed to ``scalar``, the only kernel that existed then);
* ``queue_grid/seconds`` and ``service_grid/seconds``: 6-cell grid
  wall-clock through the queue and the service daemon (lower is
  better);
* ``crossover/<config>/<engine>``: warm replay throughput of one
  kernel on one machine-width configuration from the cross-over study
  (``benchmarks/test_perf_crossover.py``; higher is better) —

and gates the **latest** sample of each series against the median of
its history with a robust noise band.

Noise model: the gate uses the median absolute deviation (MAD) rather
than a standard deviation because perf samples on shared containers are
heavy-tailed — one throttled run must widen nothing.  The band is::

    tolerance = max(SIGMAS * 1.4826 * MAD, RELATIVE_FLOOR * median)

``1.4826 * MAD`` estimates sigma for normally-distributed noise, the
``SIGMAS`` multiplier (default 4) makes the gate fire only on gross
regressions, and the relative floor (default 45% of the median — the
same slack the hand-set per-engine floors encode) keeps a
low-variance history from producing a hair-trigger band.  A series
regresses when its latest sample falls below ``median - tolerance``
(throughput) or rises above ``median + tolerance`` (seconds).  Series
with fewer than ``--min-samples`` historical points are reported but
never gated.

The perf benches call :func:`gate_series` right after appending their
entry, so a regression fails the bench that introduced it; the CLI is
for operators and CI, and ``--report`` writes the full evaluation as
JSON next to the human-readable table.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Default trajectory location: ``benchmarks/BENCH_trace.json`` at the
#: repo root (this file lives in ``src/repro/telemetry/``).
DEFAULT_TRAJECTORY = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_trace.json"
)

TREND_FORMAT = 1
#: Consistency constant: 1.4826 * MAD estimates sigma for normal noise.
MAD_SCALE = 1.4826
DEFAULT_SIGMAS = 4.0
DEFAULT_RELATIVE_FLOOR = 0.45
DEFAULT_MIN_SAMPLES = 5


def load_history(path=DEFAULT_TRAJECTORY) -> list[dict]:
    """The trajectory file as a list of entry dicts ([] when absent)."""
    try:
        history = json.loads(Path(path).read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    if not isinstance(history, list):
        return []
    return [entry for entry in history if isinstance(entry, dict)]


def split_series(history: list[dict]) -> dict[str, dict]:
    """Group trajectory entries into gateable sample series.

    Returns ``{series_key: {"values": [...], "direction": ...}}`` in
    entry order.  ``direction`` is ``"higher"`` (throughput: bigger is
    better) or ``"lower"`` (wall-clock seconds).  Unstamped pre-PR 9
    entries parse fine: throughput entries default to engine
    ``scalar``, and grid entries are classified by their ``kind``.
    """
    series: dict[str, dict] = {}

    def _append(key: str, value, direction: str) -> None:
        if not isinstance(value, (int, float)):
            return
        bucket = series.setdefault(key, {"values": [], "direction": direction})
        bucket["values"].append(float(value))

    for entry in history:
        kind = entry.get("kind")
        if kind == "queue_grid":
            _append("queue_grid/seconds", entry.get("queue_seconds"), "lower")
        elif kind == "service_grid":
            _append("service_grid/seconds", entry.get("service_seconds"), "lower")
        elif kind == "crossover":
            config = entry.get("config", "table1")
            engine = entry.get("engine", "scalar")
            _append(
                f"crossover/{config}/{engine}",
                entry.get("cycles_per_second"),
                "higher",
            )
        elif "cycles_per_second_cold" in entry:
            engine = entry.get("engine", "scalar")
            _append(
                f"engine/{engine}/cold",
                entry.get("cycles_per_second_cold"),
                "higher",
            )
            _append(
                f"engine/{engine}/warm",
                entry.get("cycles_per_second_warm"),
                "higher",
            )
    return series


def evaluate_series(
    values: list[float],
    direction: str,
    sigmas: float = DEFAULT_SIGMAS,
    relative_floor: float = DEFAULT_RELATIVE_FLOOR,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> dict:
    """Gate the last sample of *values* against the rest.

    The baseline is every sample but the latest, so a bad latest run
    cannot drag the median toward itself.  ``regressed`` is None (not
    False) when the history is too short to gate.
    """
    if not values:
        raise ValueError("evaluate_series needs at least one sample")
    latest = values[-1]
    baseline = values[:-1]
    evaluation = {
        "samples": len(values),
        "direction": direction,
        "latest": latest,
        "median": None,
        "mad": None,
        "tolerance": None,
        "bound": None,
        "regressed": None,
    }
    if len(baseline) < min_samples:
        return evaluation
    median = statistics.median(baseline)
    mad = statistics.median(abs(value - median) for value in baseline)
    tolerance = max(sigmas * MAD_SCALE * mad, relative_floor * abs(median))
    evaluation["median"] = median
    evaluation["mad"] = mad
    evaluation["tolerance"] = tolerance
    if direction == "higher":
        bound = median - tolerance
        evaluation["bound"] = bound
        evaluation["regressed"] = latest < bound
    else:
        bound = median + tolerance
        evaluation["bound"] = bound
        evaluation["regressed"] = latest > bound
    return evaluation


def trend_report(
    history: list[dict],
    sigmas: float = DEFAULT_SIGMAS,
    relative_floor: float = DEFAULT_RELATIVE_FLOOR,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> dict:
    """Evaluate every series in *history*; list the regressed ones."""
    series = {
        key: evaluate_series(
            bucket["values"],
            bucket["direction"],
            sigmas=sigmas,
            relative_floor=relative_floor,
            min_samples=min_samples,
        )
        for key, bucket in sorted(split_series(history).items())
    }
    return {
        "format": TREND_FORMAT,
        "entries": len(history),
        "sigmas": sigmas,
        "relative_floor": relative_floor,
        "min_samples": min_samples,
        "series": series,
        "regressions": [
            key for key, evaluation in series.items() if evaluation["regressed"]
        ],
    }


def gate_series(
    series_key: str,
    path=DEFAULT_TRAJECTORY,
    **band_kwargs,
) -> dict | None:
    """Bench-facing gate: evaluate one series of the on-disk trajectory.

    Called by the perf benches immediately after ``_record_trajectory``
    appends their sample, so ``latest`` is the run being gated.  Returns
    the evaluation dict, or None when the series does not exist yet.
    Callers assert ``evaluation["regressed"] is not True`` — an
    ungateable (too-short) history must pass, not fail.
    """
    series = split_series(load_history(path))
    bucket = series.get(series_key)
    if bucket is None:
        return None
    return evaluate_series(bucket["values"], bucket["direction"], **band_kwargs)


def format_report(report: dict) -> str:
    """Render a report dict as the CLI's human-readable table."""
    lines = [
        f"perf trajectory: {report['entries']} entries, "
        f"{len(report['series'])} series "
        f"(band: max({report['sigmas']:g} sigma via MAD, "
        f"{report['relative_floor']:.0%} of median); "
        f"gated at >= {report['min_samples']} baseline samples)"
    ]
    for key, ev in report["series"].items():
        if ev["regressed"] is None:
            verdict = "insufficient history"
        elif ev["regressed"]:
            verdict = "REGRESSED"
        else:
            verdict = "ok"
        arrow = ">" if ev["direction"] == "lower" else "<"
        if ev["median"] is None:
            band = ""
        else:
            band = (
                f" median {ev['median']:,.1f}, "
                f"fails when {arrow} {ev['bound']:,.1f}"
            )
        lines.append(
            f"  {key:28s} {verdict:20s} latest {ev['latest']:,.1f} "
            f"over {ev['samples']} sample(s){band}"
        )
    if report["regressions"]:
        lines.append(f"regressions: {', '.join(report['regressions'])}")
    else:
        lines.append("no regressions")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate the BENCH_trace.json perf trajectory"
    )
    parser.add_argument(
        "trajectory",
        nargs="?",
        default=str(DEFAULT_TRAJECTORY),
        help=f"trajectory file (default: {DEFAULT_TRAJECTORY})",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="also write the full evaluation as JSON to this path",
    )
    parser.add_argument("--sigmas", type=float, default=DEFAULT_SIGMAS)
    parser.add_argument(
        "--relative-floor", type=float, default=DEFAULT_RELATIVE_FLOOR
    )
    parser.add_argument("--min-samples", type=int, default=DEFAULT_MIN_SAMPLES)
    args = parser.parse_args(argv)

    history = load_history(args.trajectory)
    report = trend_report(
        history,
        sigmas=args.sigmas,
        relative_floor=args.relative_floor,
        min_samples=args.min_samples,
    )
    print(format_report(report))
    if args.report is not None:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
