"""The experiment service daemon: many clients, one queue, one loop.

``python -m repro.service <cache_dir>`` starts a long-lived daemon that
multiplexes any number of concurrent client connections over the
**same** :class:`~repro.harness.completion.QueueEventCore` selector
loop the batch driver waits on — client sockets and queue completion
markers are two event sources of one loop, so the daemon needs no
threads, no locks around its request state, and no separate poll
cadence for the queue.

Request lifecycle (the dedupe/subscription pipeline)::

    client line ── validate_request ── per-cell fingerprint ──┐
                                                              │
          ┌── ResultCache hit ───────────── resolve instantly ┤
          ├── fingerprint in flight ──────── subscribe (no new job)
          └── novel ───────── enqueue(priority) + watch ── subscribe

N identical cells from N clients collapse onto **one** queued job with
N subscriptions: the first request enqueues and every later one merely
subscribes, so the queue's ``enqueued`` counter and the ``done/``
marker count stay exactly the number of *unique* fingerprints no
matter how many clients ask.  When the marker event fires, every
subscription gets a ``progress`` event and each request whose last
cell resolved gets its ``result`` event, cells in request order.

Scheduling is two-layered: **admission control** here (a request whose
cells would push its client or the whole service over the in-flight
bounds is rejected whole with ``rejected: overload`` — partial
admission would hand back a grid missing cells) and **priority bands**
in the queue (the envelope's ``priority`` field; workers claim higher
bands first, so interactive traffic overtakes batch backfill).

Execution is the worker fleet's job, not the loop's: the daemon stays
responsive because simulations run in worker processes (spawn some
with ``--workers``, or point external hosts at the cache directory).
``assist=True`` opts the loop itself into claiming jobs between ticks
— useful for tests and single-process setups, at the cost of blocking
the loop while each assisted job runs.

Every filesystem touchpoint is the queue's and the caches' own
(atomic-rename leases, ``repro.atomicio`` publication, quarantining
cache reads), so the whole service path inherits chaoskit coverage:
``REPRO_FAULT_PLAN`` installs a seeded plan at daemon start
(:func:`repro.harness.faults.install_from_env`), and the chaos soak in
``tests/test_service.py`` holds bit-identical results under torn
writes, listing delays and mid-job worker death.
"""

from __future__ import annotations

import selectors
import socket
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.harness.cache import ResultCache, stats_to_dict
from repro.harness.completion import CompletionEvent, QueueEventCore
from repro.harness.experiment import RunConfig
from repro.harness.parallel import SimulationJob
from repro.harness.queue import WorkQueue, _default_worker_id
from repro.service import protocol
from repro.service.protocol import RequestError, validate_request
from repro.telemetry import spans as tracing
from repro.telemetry.metrics import MetricsRegistry, counter_property

#: Disconnect a client whose unread event backlog exceeds this many
#: bytes — a reader that never drains would otherwise grow the daemon's
#: out-buffer without bound.
MAX_OUT_BUFFER = 8 << 20


@dataclass
class _Request:
    """One admitted simulate/grid op: its cells and their resolutions."""

    connection: "_Connection"
    request_id: object
    priority: int
    # Cell order is the client's (benchmarks outer, techniques inner);
    # the result event replays it regardless of completion order.
    cells: list  # [(benchmark, technique, fingerprint)]
    results: dict = field(default_factory=dict)  # fingerprint -> stats dict
    failed: bool = False

    def outstanding(self) -> int:
        return len({fp for _, _, fp in self.cells}) - len(self.results)


@dataclass
class _Inflight:
    """One queued fingerprint and the requests subscribed to it."""

    priority: int
    requests: list  # [_Request]


class _Connection:
    """One client socket: line reassembly, buffered writes, admission."""

    def __init__(self, service: "ExperimentService", sock: socket.socket):
        self.service = service
        self.sock = sock
        self.in_buffer = b""
        self.out_buffer = b""
        # Unresolved (fingerprint, request) pairs charged to this
        # client — the per-client admission-control gauge.
        self.inflight = 0
        self.closed = False

    def fileno(self) -> int:
        return self.sock.fileno()

    # -- event-loop callbacks ------------------------------------------
    def on_ready(self, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush()
        if mask & selectors.EVENT_READ:
            self._read()

    def _read(self) -> None:
        try:
            chunk = self.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self.service._drop_connection(self)
            return
        if not chunk:
            self.service._drop_connection(self)
            return
        self.in_buffer += chunk
        while b"\n" in self.in_buffer:
            line, self.in_buffer = self.in_buffer.split(b"\n", 1)
            self.service._handle_line(self, line)
            if self.closed:
                return
        if len(self.in_buffer) > protocol.MAX_LINE_BYTES:
            # An endless unterminated line is a protocol violation, not
            # a request we can answer; cut the connection.
            self.service._drop_connection(self)

    # -- writes --------------------------------------------------------
    def send(self, message: dict) -> None:
        if self.closed:
            return
        self.out_buffer += protocol.encode_line(message)
        if len(self.out_buffer) > MAX_OUT_BUFFER:
            self.service._drop_connection(self)
            return
        self._flush()

    def _flush(self) -> None:
        if self.closed:
            return
        try:
            while self.out_buffer:
                sent = self.sock.send(self.out_buffer)
                self.out_buffer = self.out_buffer[sent:]
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self.service._drop_connection(self)
            return
        self.service._set_write_interest(self, bool(self.out_buffer))


class ExperimentService:
    """The daemon: accept, validate, dedupe, schedule, stream.

    Attributes:
        cache_dir: the shared cache directory (results, traces, queue).
        config: the server-side base :class:`RunConfig`; client config
            overrides are applied per request via dataclass ``replace``.
        max_inflight / max_inflight_per_client: admission-control
            bounds on unresolved work (unique fingerprints globally,
            (fingerprint, request) charges per client).
        requests_accepted / requests_rejected / cells_deduped /
            cells_cached / cells_enqueued: service traffic counters —
            registry-backed (one ``metrics.snapshot()`` shape across
            the fleet) but readable as plain ints.
    """

    requests_accepted = counter_property("requests_accepted")
    requests_rejected = counter_property("requests_rejected")
    cells_deduped = counter_property("cells_deduped")
    cells_cached = counter_property("cells_cached")
    cells_enqueued = counter_property("cells_enqueued")

    def __init__(
        self,
        cache_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[RunConfig] = None,
        queue_ttl: float = 60.0,
        poll_floor: float = 0.02,
        poll_ceiling: float = 0.5,
        assist: bool = False,
        max_inflight: int = 64,
        max_inflight_per_client: int = 16,
        queue_max_attempts: Optional[int] = None,
    ):
        self.cache_dir = Path(cache_dir)
        self.host = host
        self.port = port
        self.config = config if config is not None else RunConfig()
        self.cache = ResultCache(self.cache_dir)
        self.queue = WorkQueue(self.cache_dir, ttl=queue_ttl)
        self.core = QueueEventCore(
            self.queue,
            poll_floor=poll_floor,
            poll_ceiling=poll_ceiling,
            assist=assist,
            worker_id="service-" + _default_worker_id(),
        )
        self.max_inflight = max_inflight
        self.max_inflight_per_client = max_inflight_per_client
        self.queue_max_attempts = queue_max_attempts
        self.metrics = MetricsRegistry("service")
        for name in (
            "requests_accepted",
            "requests_rejected",
            "cells_deduped",
            "cells_cached",
            "cells_enqueued",
        ):
            self.metrics.counter(name)
        self._inflight: dict[str, _Inflight] = {}
        self._connections: set[_Connection] = set()
        self._listener: Optional[socket.socket] = None
        self._stopping = False
        self.address: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> tuple:
        """Bind the listening socket; returns the bound (host, port)."""
        listener = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        listener.setblocking(False)
        self.core.register(listener, selectors.EVENT_READ, self._accept)
        self._listener = listener
        self.address = listener.getsockname()
        return self.address

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`stop` is called."""
        if self._listener is None:
            self.open()
        while not self._stopping:
            self.core.step()
        self._teardown()

    def stop(self) -> None:
        """Request shutdown; safe to call from another thread."""
        self._stopping = True
        self.core.wake()

    def _teardown(self) -> None:
        for connection in list(self._connections):
            self._drop_connection(connection)
        if self._listener is not None:
            self.core.unregister(self._listener)
            self._listener.close()
            self._listener = None
        self.core.close()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _accept(self, mask: int) -> None:
        if self._listener is None:
            return
        try:
            sock, _addr = self._listener.accept()
        except (BlockingIOError, InterruptedError):
            return
        sock.setblocking(False)
        connection = _Connection(self, sock)
        self._connections.add(connection)
        self.core.register(
            sock, selectors.EVENT_READ, connection.on_ready
        )

    def _set_write_interest(self, connection: _Connection, wanted: bool) -> None:
        if connection.closed:
            return
        events = selectors.EVENT_READ
        if wanted:
            events |= selectors.EVENT_WRITE
        self.core.modify(connection.sock, events, connection.on_ready)

    def _drop_connection(self, connection: _Connection) -> None:
        """Close a client; its subscriptions die, its jobs keep running.

        A queued job another client is still subscribed to — or that a
        future identical request would dedupe onto — is not cancelled;
        only this client's subscriptions (and their admission charges)
        are released.
        """
        if connection.closed:
            return
        connection.closed = True
        self._connections.discard(connection)
        try:
            self.core.unregister(connection.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        connection.sock.close()
        for fingerprint, entry in list(self._inflight.items()):
            entry.requests = [
                request
                for request in entry.requests
                if request.connection is not connection
            ]
            if not entry.requests:
                # Nobody is listening any more; the job still completes
                # (and caches) but the service stops tracking it.
                self._inflight.pop(fingerprint, None)
                self.core.unwatch(fingerprint)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _handle_line(self, connection: _Connection, line: bytes) -> None:
        if not line.strip():
            return
        payload: object = None
        try:
            payload = protocol.decode_line(line)
            op = payload.get("op")
            if op == "status":
                self.handle_status(connection, payload)
            elif op == "simulate":
                self.handle_simulate(connection, payload)
            elif op == "grid":
                self.handle_grid(connection, payload)
            else:
                raise RequestError(f"unknown op {op!r}")
        except RequestError as error:
            self.requests_rejected += 1
            connection.send(
                {
                    "event": "rejected",
                    "id": payload.get("id") if isinstance(payload, dict) else None,
                    "reason": "invalid",
                    "message": str(error),
                }
            )
        # The daemon must survive any single request's failure: one
        # buggy handler path must cost one error event, not the loop.
        # repro: allow[exception-hygiene] daemon-wide request isolation
        except Exception as error:
            connection.send(
                {
                    "event": "error",
                    "id": payload.get("id") if isinstance(payload, dict) else None,
                    "message": f"internal error: {error!r}",
                }
            )

    def handle_simulate(self, connection: _Connection, payload: dict) -> None:
        """One (benchmark, technique) cell; a grid of one."""
        normalized = validate_request(payload)
        self._admit(connection, normalized)

    def handle_grid(self, connection: _Connection, payload: dict) -> None:
        """A benchmarks × techniques grid under one subscription."""
        normalized = validate_request(payload)
        self._admit(connection, normalized)

    def handle_status(self, connection: _Connection, payload: dict) -> None:
        """Queue + service observability snapshot."""
        normalized = validate_request(payload)
        inflight_by_priority: dict[str, int] = {}
        subscribers = 0
        for entry in self._inflight.values():
            band = str(entry.priority)
            inflight_by_priority[band] = inflight_by_priority.get(band, 0) + 1
            subscribers += len(entry.requests)
        # Point-in-time load lives in registry gauges (refreshed here,
        # the only place they're read) so the counters *and* gauges ride
        # one metrics.snapshot(); the legacy top-level keys and the
        # "counters" dict keep their exact shape for older clients.
        self.metrics.gauge("inflight").set(len(self._inflight))
        self.metrics.gauge("inflight_subscribers").set(subscribers)
        self.metrics.gauge("connections").set(len(self._connections))
        connection.send(
            {
                "event": "status",
                "id": normalized["id"],
                # queue.status() carries the queue's own telemetry
                # section (metrics snapshot + span-derived enqueue→claim
                # / claim→done latency percentiles), so the service
                # status op surfaces fleet latency without new plumbing.
                "queue": self.queue.status(),
                "service": {
                    "inflight": len(self._inflight),
                    "inflight_by_priority": inflight_by_priority,
                    "inflight_subscribers": subscribers,
                    "connections": len(self._connections),
                    "counters": {
                        "requests_accepted": self.requests_accepted,
                        "requests_rejected": self.requests_rejected,
                        "cells_cached": self.cells_cached,
                        "cells_deduped": self.cells_deduped,
                        "cells_enqueued": self.cells_enqueued,
                    },
                    "metrics": self.metrics.snapshot(),
                },
            }
        )

    # ------------------------------------------------------------------
    def _admit(self, connection: _Connection, normalized: dict) -> None:
        """Dedupe, admission-check and schedule one validated request."""
        config = (
            replace(self.config, **normalized["config"])
            if normalized["config"]
            else self.config
        )
        priority = normalized["priority"]
        cells: list = []
        jobs: dict[str, SimulationJob] = {}
        for benchmark in normalized["benchmarks"]:
            for technique in normalized["techniques"]:
                job = SimulationJob(
                    benchmark,
                    technique,
                    config,
                    trace_cache_dir=str(self.cache_dir / "traces"),
                    max_attempts=self.queue_max_attempts,
                    priority=priority,
                )
                fingerprint = job.fingerprint()
                cells.append((benchmark, technique, fingerprint))
                jobs[fingerprint] = job
        cached: dict[str, dict] = {}
        subscribe: list[str] = []
        enqueue: list[str] = []
        for fingerprint in jobs:
            stats = self.cache.load(fingerprint)
            if stats is not None:
                cached[fingerprint] = stats_to_dict(stats)
            elif fingerprint in self._inflight:
                subscribe.append(fingerprint)
            else:
                enqueue.append(fingerprint)
        # Admission control, whole-request: partial admission would
        # return a grid with holes.  Cached cells are free (no queue
        # work); new and deduped cells charge the client, new unique
        # fingerprints charge the global bound.
        charges = len(subscribe) + len(enqueue)
        if connection.inflight + charges > self.max_inflight_per_client or (
            len(self._inflight) + len(enqueue) > self.max_inflight
        ):
            self.requests_rejected += 1
            connection.send(
                {
                    "event": "rejected",
                    "id": normalized["id"],
                    "reason": "overload",
                    "message": (
                        f"in-flight bounds exceeded ({len(self._inflight)} "
                        f"global, {connection.inflight} on this client); "
                        "retry later or lower the request's cell count"
                    ),
                }
            )
            return
        request = _Request(
            connection=connection,
            request_id=normalized["id"],
            priority=priority,
            cells=cells,
            results=dict(cached),
        )
        self.requests_accepted += 1
        self.cells_cached += len(cached)
        self.cells_deduped += len(subscribe)
        self.cells_enqueued += len(enqueue)
        for fingerprint in subscribe:
            self._inflight[fingerprint].requests.append(request)
        # When the daemon runs traced (REPRO_TELEMETRY=1), each admitted
        # request enqueues under its own trace scope keyed by the
        # protocol request id, so a client can find *its* spans across
        # the worker fleet.  Untraced, this is the shared no-op.
        with tracing.maybe_trace_scope(
            f"svc-{normalized['id']}" if enqueue else None
        ):
            for fingerprint in enqueue:
                self.queue.enqueue(jobs[fingerprint], priority=priority)
                self._inflight[fingerprint] = _Inflight(
                    priority=priority, requests=[request]
                )
                self.core.watch(fingerprint, self._on_completion)
        connection.inflight += charges
        connection.send(
            {
                "event": "accepted",
                "id": normalized["id"],
                "cells": len(cells),
                "cached": len(cached),
                "deduped": len(subscribe),
                "enqueued": len(enqueue),
            }
        )
        for benchmark, technique, fingerprint in cells:
            if fingerprint in cached:
                self._send_progress(
                    request, benchmark, technique, source="cache"
                )
        self._maybe_finish(request)

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------
    def _on_completion(self, event: CompletionEvent) -> None:
        """The core resolved a watched fingerprint; fan out to requests."""
        entry = self._inflight.pop(event.fingerprint, None)
        if entry is None:
            return
        marker = event.record
        failure: Optional[str] = None
        if event.kind == "poisoned":
            failure = (
                f"job poisoned after {marker.get('attempts', '?')} "
                f"attempt(s): {marker.get('poison_reason', 'unrecorded')}"
            )
        elif marker.get("error") or marker.get("payload") is None:
            failure = f"job failed on worker {marker.get('worker')!r}: " + str(
                marker.get("error", "no payload")
            )
        for request in entry.requests:
            request.connection.inflight -= 1
            if failure is not None:
                if not request.failed:
                    request.failed = True
                    request.connection.send(
                        {
                            "event": "error",
                            "id": request.request_id,
                            "message": failure,
                        }
                    )
                continue
            request.results[event.fingerprint] = marker["payload"]["stats"]
            for benchmark, technique, fingerprint in request.cells:
                if fingerprint == event.fingerprint:
                    self._send_progress(
                        request, benchmark, technique, source="queue"
                    )
            self._maybe_finish(request)

    def _send_progress(
        self, request: _Request, benchmark: str, technique: str, source: str
    ) -> None:
        request.connection.send(
            {
                "event": "progress",
                "id": request.request_id,
                "benchmark": benchmark,
                "technique": technique,
                "source": source,
                "done": len(request.results),
                "total": len({fp for _, _, fp in request.cells}),
            }
        )

    def _maybe_finish(self, request: _Request) -> None:
        if request.failed or request.outstanding() > 0:
            return
        request.connection.send(
            {
                "event": "result",
                "id": request.request_id,
                "cells": [
                    {
                        "benchmark": benchmark,
                        "technique": technique,
                        "stats": request.results[fingerprint],
                    }
                    for benchmark, technique, fingerprint in request.cells
                ],
            }
        )
