"""Inter-procedural refinement for the *Improved* scheme (section 5.3).

The NOOP and Extension schemes analyse each procedure in isolation, so
functional-unit contention between a caller's instructions and the callee's
instructions is invisible to the compiler; the paper identifies this as the
main source of IPC loss in vortex and bzip2.  The *Improved* scheme
applies, "by hand", inter-procedural analysis to the most heavily used
procedures.

Here the refinement is automated.  For every call site to a *hot* procedure
(one invoked from inside a loop, or from at least ``hot_call_threshold``
call sites):

* the requirement of the calling block -- and, when the call sits inside a
  loop, the enclosing loop's requirement -- is enlarged by the callee's own
  entry requirement, so the caller's in-flight instructions and the
  callee's first instructions can share the queue without stalling dispatch
  at the boundary;
* the callee's entry requirement is enlarged by (a bounded amount of) the
  caller's pressure, so that after the call returns the region in force is
  large enough for the remainder of the calling region to keep flowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfg.graph import build_cfg
from repro.cfg.natural_loops import find_natural_loops
from repro.core.config import CompilerConfig
from repro.core.dag_analysis import BlockRequirement, analyse_block
from repro.core.loop_analysis import LoopRequirement
from repro.isa.program import Program


#: Upper bound on how much caller pressure is folded back into a callee's
#: entry requirement (keeps the refinement from simply requesting the
#: maximum queue everywhere, which would forfeit the power savings).
MAX_CALLER_FEEDBACK_ENTRIES = 24


@dataclass
class CallSiteInfo:
    """Static description of one call site.

    Attributes:
        caller: calling procedure name.
        block: label of the block containing the call.
        callee: called procedure name.
        in_loop: True when the call site sits inside a natural loop.
        loop_header: header label of the innermost loop containing the call
            site (None when not in a loop).
    """

    caller: str
    block: str
    callee: str
    in_loop: bool
    loop_header: Optional[str] = None


@dataclass
class InterproceduralSummary:
    """Whole-program call-site and hot-procedure information."""

    call_sites: list[CallSiteInfo] = field(default_factory=list)
    hot_procedures: set[str] = field(default_factory=set)
    entry_requirements: dict[str, int] = field(default_factory=dict)

    def call_counts(self) -> dict[str, int]:
        """Static call-site count per callee."""
        counts: dict[str, int] = {}
        for site in self.call_sites:
            counts[site.callee] = counts.get(site.callee, 0) + 1
        return counts


def summarise_call_sites(program: Program, config: CompilerConfig) -> InterproceduralSummary:
    """Collect call sites, hot procedures and callee entry-block requirements."""
    summary = InterproceduralSummary()

    for procedure in program.analysable_procedures():
        cfg = build_cfg(procedure)
        loops = find_natural_loops(cfg)
        # Innermost-first ordering lets the first match win.
        block_to_loop: dict[str, str] = {}
        for loop in loops:
            for label in loop.body:
                block_to_loop.setdefault(label, loop.header)
        for block in procedure.blocks:
            for instr in block.instructions:
                if instr.is_call:
                    header = block_to_loop.get(block.label)
                    summary.call_sites.append(
                        CallSiteInfo(
                            caller=procedure.name,
                            block=block.label,
                            callee=instr.call_target,
                            in_loop=header is not None,
                            loop_header=header,
                        )
                    )

    counts = summary.call_counts()
    for site in summary.call_sites:
        callee = program.procedures.get(site.callee)
        if callee is None or callee.is_library:
            continue
        if site.in_loop or counts.get(site.callee, 0) >= config.hot_call_threshold:
            summary.hot_procedures.add(site.callee)

    for name in summary.hot_procedures:
        callee = program.procedures[name]
        requirement = analyse_block(callee.entry_block, config, procedure_name=name)
        summary.entry_requirements[name] = requirement.raw_entries

    return summary


def _enlarged(existing: BlockRequirement, extra: int, config: CompilerConfig) -> BlockRequirement:
    """Copy ``existing`` with ``extra`` entries added (and re-clamped)."""
    raw = existing.raw_entries + extra
    return BlockRequirement(
        procedure=existing.procedure,
        label=existing.label,
        entries=config.clamp_requirement(raw),
        raw_entries=raw,
        schedule=existing.schedule,
        source=existing.source,
    )


def apply_interprocedural_refinement(
    program: Program,
    requirements: dict[tuple[str, str], BlockRequirement],
    config: CompilerConfig,
    loop_requirements: Optional[list[LoopRequirement]] = None,
) -> dict[tuple[str, str], BlockRequirement]:
    """Enlarge requirements around hot call sites (both caller and callee side).

    Args:
        program: the analysed program.
        requirements: per-(procedure, block) requirements from the intra-
            procedural analysis; a refined copy is returned, the input is
            left untouched.
        config: compiler configuration.
        loop_requirements: loop analysis results; when provided, loops that
            contain hot call sites are also refined in place through their
            header entry in ``requirements``.

    Returns:
        A new requirements mapping with refined values.
    """
    summary = summarise_call_sites(program, config)
    refined = dict(requirements)

    caller_pressure: dict[str, int] = {}

    for site in summary.call_sites:
        if site.callee not in summary.hot_procedures:
            continue
        callee_need = summary.entry_requirements.get(site.callee, 0)

        # Caller side: the block containing the call.
        block_key = (site.caller, site.block)
        existing = refined.get(block_key)
        if existing is not None and callee_need > 0:
            refined[block_key] = _enlarged(existing, callee_need, config)
            caller_pressure[site.callee] = max(
                caller_pressure.get(site.callee, 0), existing.raw_entries
            )

        # Caller side: the enclosing loop, when the call sits inside one.
        if site.loop_header is not None:
            loop_key = (site.caller, site.loop_header)
            loop_existing = refined.get(loop_key)
            if loop_existing is not None and callee_need > 0:
                refined[loop_key] = _enlarged(loop_existing, callee_need, config)
                caller_pressure[site.callee] = max(
                    caller_pressure.get(site.callee, 0), loop_existing.raw_entries
                )

    # Callee side: fold (bounded) caller pressure back into the callee's
    # entry block so the region in force after the call returns is not
    # undersized for the caller's remaining work.
    for callee_name, pressure in caller_pressure.items():
        callee = program.procedures[callee_name]
        entry_key = (callee_name, callee.entry_block.label)
        existing = refined.get(entry_key)
        if existing is None:
            continue
        extra = min(pressure, MAX_CALLER_FEEDBACK_ENTRIES)
        refined[entry_key] = _enlarged(existing, extra, config)

    return refined
