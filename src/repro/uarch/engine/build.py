"""Lazy C-extension builds for compiled replay kernels.

:class:`ExtensionCompiler` is the build/availability seam between a
compiled kernel module (``engine/native.py`` today) and the host
toolchain, modeled on hpy's test-suite ``ExtensionCompiler``: given a C
source file and a module name it answers two questions —

* :meth:`ExtensionCompiler.unavailable_reason` — can this host build the
  extension at all (a C compiler on ``PATH``, the running interpreter's
  ``Python.h``)?  ``None`` means yes; otherwise a human-readable reason
  the caller wraps into its kernel-specific ``*UnavailableError``.
* :meth:`ExtensionCompiler.load` — compile (once) and import the module.

The compile is **lazy and cached**: artefacts land in a directory keyed
by a digest of the C source, the interpreter version and the compiler,
so editing the kernel source or switching interpreters rebuilds while
repeated test sessions reuse the shared object.  Publication is atomic
(build to a pid-suffixed temp name, then ``os.replace``) so concurrent
pytest workers racing the first build never import a torn ``.so``.
This deliberately does *not* route through :mod:`repro.atomicio` — that
module transitively imports the chaoskit fault machinery, which the
``retry-discipline`` lint rule bans from the replay core, and a build
artefact is a derived local cache, not shared experiment state.

Adding a second compiled backend is a one-file change: instantiate
another ``ExtensionCompiler`` (or any object with the same two-method
surface) over its source and register the engine — nothing here is
specific to the native kernel.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
from typing import Optional

#: Environment override for the build/cache directory (e.g. CI keeping
#: artefacts on a tmpfs, or tests forcing a cold build).
BUILD_DIR_ENV_VAR = "REPRO_NATIVE_BUILD_DIR"


def _default_build_dir() -> str:
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_home, "repro-native")


class ExtensionBuildError(RuntimeError):
    """The toolchain exists but the compile itself failed."""


class ExtensionCompiler:
    """Build one C extension module lazily, cache the artefact, load it.

    Args:
        source_path: path to the single C translation unit.
        module_name: the extension module's import name (must match its
            ``PyInit_<name>`` symbol).
        cc: compiler executable; default ``$CC``, else ``cc``, else
            ``gcc`` — whichever is first found on ``PATH``.
        build_dir: artefact cache root; default ``$REPRO_NATIVE_BUILD_DIR``,
            else ``~/.cache/repro-native``.
    """

    def __init__(
        self,
        source_path: str,
        module_name: str,
        cc: Optional[str] = None,
        build_dir: Optional[str] = None,
    ):
        self.source_path = source_path
        self.module_name = module_name
        self._cc_arg = cc
        self._build_dir_arg = build_dir
        self._module = None

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    def compiler(self) -> Optional[str]:
        """Absolute path of the C compiler to use, or ``None``."""
        candidates = (
            [self._cc_arg]
            if self._cc_arg
            else [os.environ.get("CC"), "cc", "gcc"]
        )
        for candidate in candidates:
            if not candidate:
                continue
            found = shutil.which(candidate)
            if found:
                return found
        return None

    def include_dir(self) -> Optional[str]:
        """The running interpreter's header directory, if headers exist."""
        include = sysconfig.get_paths().get("include")
        if include and os.path.exists(os.path.join(include, "Python.h")):
            return include
        return None

    def unavailable_reason(self) -> Optional[str]:
        """Why this host cannot build the extension, or ``None`` if it can."""
        if not os.path.exists(self.source_path):
            return f"kernel source {self.source_path} is missing"
        if self.compiler() is None:
            return "no C compiler (cc/gcc/$CC) on PATH"
        if self.include_dir() is None:
            return "Python development headers (Python.h) are not installed"
        return None

    # ------------------------------------------------------------------
    # Build + load
    # ------------------------------------------------------------------
    def build_dir(self) -> str:
        """The digest-keyed artefact directory for the current inputs."""
        root = (
            self._build_dir_arg
            or os.environ.get(BUILD_DIR_ENV_VAR)
            or _default_build_dir()
        )
        digest = hashlib.sha256()
        with open(self.source_path, "rb") as handle:
            digest.update(handle.read())
        digest.update(sys.version.encode())
        digest.update((self.compiler() or "").encode())
        return os.path.join(root, f"{self.module_name}-{digest.hexdigest()[:16]}")

    def artifact_path(self) -> str:
        suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
        return os.path.join(self.build_dir(), self.module_name + suffix)

    def build(self) -> str:
        """Compile if needed and return the shared-object path.

        Raises :class:`ExtensionBuildError` when the toolchain is present
        but the compile fails (the compiler's stderr is included), and
        ``RuntimeError`` with the availability reason when it is not —
        callers normally check :meth:`unavailable_reason` first and wrap
        either into their kernel-specific error.
        """
        reason = self.unavailable_reason()
        if reason is not None:
            raise ExtensionBuildError(reason)
        artifact = self.artifact_path()
        if os.path.exists(artifact):
            return artifact
        os.makedirs(os.path.dirname(artifact), exist_ok=True)
        # pid-suffixed temp + os.replace: concurrent first builds race
        # benignly — last writer wins with an identical artefact.
        temp = f"{artifact}.tmp-{os.getpid()}"
        command = [
            self.compiler(),
            "-O2",
            "-fPIC",
            "-shared",
            f"-I{self.include_dir()}",
            self.source_path,
            "-o",
            temp,
        ]
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            if os.path.exists(temp):
                os.unlink(temp)
            raise ExtensionBuildError(
                f"C compile failed ({' '.join(command)}):\n{result.stderr}"
            )
        os.replace(temp, artifact)
        return artifact

    def load(self):
        """Build (if needed), import, and memoise the extension module."""
        if self._module is None:
            artifact = self.build()
            loader = importlib.machinery.ExtensionFileLoader(
                self.module_name, artifact
            )
            spec = importlib.util.spec_from_file_location(
                self.module_name, artifact, loader=loader
            )
            module = importlib.util.module_from_spec(spec)
            loader.exec_module(module)
            self._module = module
        return self._module
