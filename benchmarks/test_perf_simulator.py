"""Micro-benchmark: simulator hot-path throughput in cycles per second.

Records how many machine cycles the timing model simulates per wall-clock
second on the gzip baseline run, so successive PRs have a performance
trajectory for the per-cycle hot path (issue select, wakeup broadcast,
dispatch, fetch).  Two rates are measured:

* **cold** — a fresh in-process trace memo and an empty on-disk trace
  cache, with the **windowed streaming path on** (the budget is split
  across several trace windows), so the measured time includes one
  functional emulation, the per-window pre-decode, the windowed cache
  store and the timed window-by-window replay;
* **warm** — the decoded trace already memoised, so the measured time is
  the replay core alone (the steady state of a grid run).

Reference points on the development machine (1-core container):

* pre-optimisation seed: ~17.4k cycles/s
* PR 1 (incremental ready-set + batched writeback + deque front end):
  ~24.7k cycles/s (1.42x)
* PR 2 (trace pre-decode & replay, pre-compiled emulator specs, bitmask
  rename free-list, event-driven sampling, pooled ROB/IQ entries):
  ~58k cycles/s cold / ~69k cycles/s warm (2.3x / 2.8x over PR 1)
* PR 3 (windowed trace decode & streaming replay; the cold run streams
  the 12k budget through 4k-instruction windows): rates within noise of
  PR 2 — windowing bounds decode memory without giving back throughput.

The assertion below is a loose floor (about half the PR 2 cold rate,
**kept at ≥29k cycles/s with the windowed path on**) so the bench fails
only on a genuine hot-path regression, not on machine noise.  Each run
also appends both rates to ``BENCH_trace.json`` next to this file,
giving later PRs a machine-readable perf history.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.techniques import BaselinePolicy
from repro.uarch import simulate
from repro.uarch.trace import clear_trace_memo
from repro.workloads import build_benchmark

MAX_INSTRUCTIONS = 12_000
#: Cold runs stream through windows this size (3 windows for the 12k
#: budget), so the floor below is enforced with windowed replay on.
TRACE_WINDOW = 4_096
#: ~50% of the cold rate measured for PR 2 (~58k cycles/s); comfortably
#: above the PR 1 steady-state rate, so losing the replay speedup fails.
MIN_CYCLES_PER_SECOND = 29_000.0
#: PR 1 reference rate the ISSUE's 2x target is measured against.
PR1_REFERENCE_CYCLES_PER_SECOND = 24_700.0

TRAJECTORY_FILE = Path(__file__).with_name("BENCH_trace.json")
TRAJECTORY_LIMIT = 200


def _record_trajectory(entry: dict) -> None:
    """Append ``entry`` to the BENCH_trace.json perf history (bounded)."""
    history: list[dict] = []
    try:
        history = json.loads(TRAJECTORY_FILE.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            history = []
    except (FileNotFoundError, json.JSONDecodeError):
        history = []
    history.append(entry)
    TRAJECTORY_FILE.write_text(
        json.dumps(history[-TRAJECTORY_LIMIT:], indent=2) + "\n", encoding="utf-8"
    )


def _timed_simulate(**kwargs) -> tuple[int, float]:
    program = build_benchmark("gzip")
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        stats = simulate(
            program, BaselinePolicy(), max_instructions=MAX_INSTRUCTIONS, **kwargs
        )
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return stats.cycles, elapsed


def test_simulator_cycle_throughput(benchmark, tmp_path):
    # Warm the generator and module state so the bench isolates the
    # emulate+decode+replay pipeline, and spin the CPU up to steady state
    # (the container throttles hard from idle).
    build_benchmark("gzip")
    for _ in range(2):
        simulate(
            build_benchmark("gzip"),
            BaselinePolicy(),
            max_instructions=MAX_INSTRUCTIONS,
            live_emulation=True,
        )

    trace_dir = tmp_path / "trace-cache"
    cold_rates: list[float] = []
    cycles_holder: list[int] = []

    def _cold_run() -> tuple[int, float]:
        # A fresh memo and a fresh cache directory every round: the timed
        # region covers emulation, per-window pre-decode, the windowed
        # cache store and the streaming window-by-window replay.
        clear_trace_memo()
        round_dir = trace_dir / str(len(cold_rates))
        cycles, elapsed = _timed_simulate(
            trace_cache=str(round_dir), trace_window=TRACE_WINDOW
        )
        cold_rates.append(cycles / elapsed)
        cycles_holder.append(cycles)
        return cycles, elapsed

    benchmark.pedantic(_cold_run, rounds=5, iterations=1)
    cycles = cycles_holder[-1]
    cold_rate = max(cold_rates)

    # Steady state: the decoded trace is memoised, only the core replays.
    warm_rates = []
    for _ in range(5):
        warm_cycles, warm_elapsed = _timed_simulate()
        warm_rates.append(warm_cycles / warm_elapsed)
    warm_rate = max(warm_rates)

    benchmark.extra_info["cycles_simulated"] = cycles
    benchmark.extra_info["cycles_per_second"] = round(cold_rate)
    benchmark.extra_info["cycles_per_second_warm"] = round(warm_rate)
    benchmark.extra_info["speedup_vs_pr1_cold"] = round(
        cold_rate / PR1_REFERENCE_CYCLES_PER_SECOND, 2
    )
    _record_trajectory(
        {
            "timestamp": time.time(),
            "max_instructions": MAX_INSTRUCTIONS,
            "trace_window": TRACE_WINDOW,
            "cycles": cycles,
            "cycles_per_second_cold": round(cold_rate),
            "cycles_per_second_warm": round(warm_rate),
        }
    )
    print(
        f"\n  simulated {cycles} cycles at {cold_rate:,.0f}/s cold "
        f"(trace cache+emulation) and {warm_rate:,.0f}/s warm (replay only); "
        f"{cold_rate / PR1_REFERENCE_CYCLES_PER_SECOND:.2f}x the PR 1 reference"
    )
    assert cycles > 0
    assert cold_rate > MIN_CYCLES_PER_SECOND
    assert warm_rate > MIN_CYCLES_PER_SECOND
