"""Crash-path coverage for :mod:`repro.atomicio`.

The orphan contract every cache and the queue rely on: a writer killed
mid-store leaves only a ``.tmp-*`` temp file — never a partial final
file, and never clobbered old content — and the offline ``cache gc``
sweep removes that debris by age while leaving fresh in-flight temp
files alone.  The kill tests use a real subprocess SIGKILLed from
inside the write callback, so no ``finally`` block gets to clean up —
exactly the failure the gc sweeper exists for.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.atomicio import TMP_PREFIX, publish_atomically
from repro.harness.cache import collect_garbage, gc_cache_tree

KILLED_WRITER_SCRIPT = """
import os, signal, sys
from repro.atomicio import publish_atomically

def write(handle):
    handle.write("partial payload that must never become the final file")
    handle.flush()
    os.kill(os.getpid(), signal.SIGKILL)

publish_atomically(sys.argv[1], write)
"""


def run_killed_writer(destination: Path) -> subprocess.CompletedProcess:
    """Run a subprocess that dies via SIGKILL mid-``publish_atomically``."""
    src_root = str(Path(next(iter(repro.__path__))).parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    process = subprocess.run(
        [sys.executable, "-c", KILLED_WRITER_SCRIPT, str(destination)],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert process.returncode == -signal.SIGKILL, process.stderr
    return process


def tmp_orphans(directory: Path) -> list[Path]:
    return sorted(directory.glob(TMP_PREFIX + "*"))


def test_killed_writer_leaves_only_a_tmp_orphan(tmp_path):
    destination = tmp_path / "cell.json"
    run_killed_writer(destination)
    assert not destination.exists()  # never a partial final file
    orphans = tmp_orphans(tmp_path)
    assert len(orphans) == 1
    # The orphan holds whatever was flushed before death — debris, not
    # a readable cache entry, which is why it must carry TMP_PREFIX.
    assert "partial payload" in orphans[0].read_text(encoding="utf-8")


def test_killed_writer_never_clobbers_existing_destination(tmp_path):
    destination = tmp_path / "cell.json"
    destination.write_text("committed old content", encoding="utf-8")
    run_killed_writer(destination)
    assert destination.read_text(encoding="utf-8") == "committed old content"
    assert len(tmp_orphans(tmp_path)) == 1


def test_gc_sweeps_orphans_by_age_but_spares_fresh_writers(tmp_path):
    destination = tmp_path / "cell.json"
    run_killed_writer(destination)
    (orphan,) = tmp_orphans(tmp_path)

    # Default age guard: a fresh temp file may belong to a live writer.
    summary = collect_garbage(tmp_path)
    assert summary["tmp_removed"] == 0
    assert orphan.exists()

    # Age 0 treats everything as orphaned — the offline sweep's job.
    summary = collect_garbage(tmp_path, tmp_max_age_seconds=0.0)
    assert summary["tmp_removed"] == 1
    assert not orphan.exists()


def test_gc_cache_tree_sweeps_killed_writers_across_the_tree(tmp_path):
    # Orphans in the result cache root and the traces/ subdirectory,
    # exactly where killed store() / TraceCache writers leave them.
    run_killed_writer(tmp_path / "cell.json")
    (tmp_path / "traces").mkdir()
    run_killed_writer(tmp_path / "traces" / "abc.trace.bin")
    summaries = gc_cache_tree(tmp_path, tmp_max_age_seconds=0.0)
    assert sum(s["tmp_removed"] for s in summaries) == 2
    assert tmp_orphans(tmp_path) == []
    assert tmp_orphans(tmp_path / "traces") == []


def test_publish_failure_cleans_temp_and_reraises(tmp_path):
    destination = tmp_path / "cell.json"

    def explode(handle):
        handle.write("doomed")
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        publish_atomically(destination, explode)
    assert not destination.exists()
    assert tmp_orphans(tmp_path) == []


def test_publish_replaces_existing_content_atomically(tmp_path):
    destination = tmp_path / "cell.json"
    publish_atomically(destination, lambda handle: handle.write("one"))
    publish_atomically(destination, lambda handle: handle.write("two"))
    assert destination.read_text(encoding="utf-8") == "two"
    assert tmp_orphans(tmp_path) == []


# ----------------------------------------------------------------------
# The span writer (PR 9) lives under the same discipline
# ----------------------------------------------------------------------
KILLED_SPAN_WRITER_SCRIPT = """
import os, signal, sys
from repro.telemetry import spans

_real_publish = spans.publish_atomically

def dying_publish(destination, write):
    def write_then_die(handle):
        write(handle)
        handle.flush()
        os.kill(os.getpid(), signal.SIGKILL)
    _real_publish(destination, write_then_die)

# Die inside the recorder's publish call, after the payload is written
# to the temp file but before the rename commits it.
spans.enable(sys.argv[1])
spans.publish_atomically = dying_publish
with spans.span("queue.enqueue", trace="t1", fingerprint="f1"):
    pass
"""


def test_killed_span_writer_leaves_only_a_sweepable_tmp_orphan(tmp_path):
    """A worker SIGKILLed mid-span-publish obeys the orphan contract.

    The span recorder is a shared-cache-tree writer (it is listed in
    ``AtomicIoRule.SCOPED_MODULES``), so the same guarantee applies: no
    torn ``.jsonl`` ever becomes visible, and the debris is a
    ``.tmp-*`` file that ``cache gc`` sweeps by age.
    """
    from repro.telemetry.spans import spans_directory

    src_root = str(Path(next(iter(repro.__path__))).parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    process = subprocess.run(
        [sys.executable, "-c", KILLED_SPAN_WRITER_SCRIPT, str(tmp_path)],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert process.returncode == -signal.SIGKILL, process.stderr

    spans_dir = spans_directory(tmp_path)
    # Never a torn final file: the only .jsonl present is the TMP_PREFIX
    # debris (temp files keep the destination suffix for os.replace).
    finals = [
        path
        for path in spans_dir.glob("*.jsonl")
        if not path.name.startswith(TMP_PREFIX)
    ]
    assert finals == []
    from repro.telemetry.spans import read_spans

    assert read_spans(tmp_path) == []  # readers skip in-flight debris too
    (orphan,) = tmp_orphans(spans_dir)
    assert "queue.enqueue" in orphan.read_text(encoding="utf-8")

    # The sweep that covers consumed markers covers span debris too.
    summaries = gc_cache_tree(tmp_path, tmp_max_age_seconds=0.0)
    assert any(s["tmp_removed"] for s in summaries)
    assert tmp_orphans(spans_dir) == []


def test_span_writer_is_scoped_under_the_atomic_io_rule():
    from repro.analysis.rules import AtomicIoRule

    rule = AtomicIoRule()
    assert rule.applies_to("src/repro/telemetry/spans.py")
