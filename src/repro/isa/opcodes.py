"""Opcodes, functional-unit classes and latencies for the IR.

The operation mix mirrors the integer-dominated SPECint2000 workloads the
paper evaluates: integer ALU operations, integer multiplies, loads, stores,
conditional branches, unconditional jumps, calls and returns.  A small
floating-point subset exists for completeness (the paper's processor has FP
units, table 1) but the synthetic workloads use it sparingly, matching the
paper's observation that SPECint executes few FP instructions.

Latencies follow table 1 of the paper:

* integer ALU: 1 cycle (6 units)
* integer multiply: 3 cycles (3 units)
* FP ALU: 2 cycles (4 units)
* FP multiply: 4 cycles, FP divide: 12 cycles (2 units)
* loads: 1 cycle address generation plus the data-cache access time
  (2-cycle L1 hit in table 1), modelled by the memory hierarchy in
  :mod:`repro.uarch.cache`.
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Every operation the IR supports."""

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMP_LT = "cmplt"
    CMP_EQ = "cmpeq"
    MOV = "mov"
    LI = "li"  # load immediate

    # Integer multiply / divide (separate FU class).
    MUL = "mul"
    DIV = "div"

    # Memory.
    LOAD = "load"
    STORE = "store"

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"

    # Control flow.
    BEQZ = "beqz"  # branch if register == 0
    BNEZ = "bnez"  # branch if register != 0
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    HALT = "halt"

    # No-ops.
    NOP = "nop"
    HINT = "hint"  # the paper's special NOOP carrying an IQ-size payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


class FuClass(enum.Enum):
    """Functional-unit classes, matching table 1 of the paper."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP_ALU = "fp_alu"
    FP_MULDIV = "fp_muldiv"
    MEM_PORT = "mem_port"
    NONE = "none"  # control/no-op instructions needing no execution resource

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FuClass.{self.name}"


_INT_ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.CMP_LT,
        Opcode.CMP_EQ,
        Opcode.MOV,
        Opcode.LI,
    }
)

_BRANCH_OPS = frozenset({Opcode.BEQZ, Opcode.BNEZ})
_CONTROL_OPS = frozenset(
    {Opcode.BEQZ, Opcode.BNEZ, Opcode.JUMP, Opcode.CALL, Opcode.RET, Opcode.HALT}
)
_MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE})


#: Functional-unit class needed by each opcode.
OPCODE_FU_CLASS: dict[Opcode, FuClass] = {}
for _op in _INT_ALU_OPS:
    OPCODE_FU_CLASS[_op] = FuClass.INT_ALU
OPCODE_FU_CLASS[Opcode.MUL] = FuClass.INT_MUL
OPCODE_FU_CLASS[Opcode.DIV] = FuClass.INT_MUL
OPCODE_FU_CLASS[Opcode.LOAD] = FuClass.MEM_PORT
OPCODE_FU_CLASS[Opcode.STORE] = FuClass.MEM_PORT
OPCODE_FU_CLASS[Opcode.FADD] = FuClass.FP_ALU
OPCODE_FU_CLASS[Opcode.FSUB] = FuClass.FP_ALU
OPCODE_FU_CLASS[Opcode.FMUL] = FuClass.FP_MULDIV
OPCODE_FU_CLASS[Opcode.FDIV] = FuClass.FP_MULDIV
# Branches and compares execute on the integer ALUs, as in SimpleScalar.
OPCODE_FU_CLASS[Opcode.BEQZ] = FuClass.INT_ALU
OPCODE_FU_CLASS[Opcode.BNEZ] = FuClass.INT_ALU
OPCODE_FU_CLASS[Opcode.JUMP] = FuClass.NONE
OPCODE_FU_CLASS[Opcode.CALL] = FuClass.NONE
OPCODE_FU_CLASS[Opcode.RET] = FuClass.NONE
OPCODE_FU_CLASS[Opcode.HALT] = FuClass.NONE
OPCODE_FU_CLASS[Opcode.NOP] = FuClass.NONE
OPCODE_FU_CLASS[Opcode.HINT] = FuClass.NONE


#: Execution latency in cycles for each opcode (table 1).  Loads carry the
#: address-generation latency here; the cache adds the access time.
OPCODE_LATENCY: dict[Opcode, int] = {}
for _op in _INT_ALU_OPS:
    OPCODE_LATENCY[_op] = 1
OPCODE_LATENCY[Opcode.MUL] = 3
OPCODE_LATENCY[Opcode.DIV] = 12
OPCODE_LATENCY[Opcode.LOAD] = 1
OPCODE_LATENCY[Opcode.STORE] = 1
OPCODE_LATENCY[Opcode.FADD] = 2
OPCODE_LATENCY[Opcode.FSUB] = 2
OPCODE_LATENCY[Opcode.FMUL] = 4
OPCODE_LATENCY[Opcode.FDIV] = 12
OPCODE_LATENCY[Opcode.BEQZ] = 1
OPCODE_LATENCY[Opcode.BNEZ] = 1
OPCODE_LATENCY[Opcode.JUMP] = 1
OPCODE_LATENCY[Opcode.CALL] = 1
OPCODE_LATENCY[Opcode.RET] = 1
OPCODE_LATENCY[Opcode.HALT] = 1
OPCODE_LATENCY[Opcode.NOP] = 1
OPCODE_LATENCY[Opcode.HINT] = 1


def is_branch(opcode: Opcode) -> bool:
    """Return True for conditional branches."""
    return opcode in _BRANCH_OPS


def is_control(opcode: Opcode) -> bool:
    """Return True for any control-flow instruction (branch, jump, call, ret, halt)."""
    return opcode in _CONTROL_OPS


def is_memory(opcode: Opcode) -> bool:
    """Return True for loads and stores."""
    return opcode in _MEMORY_OPS


def is_int_alu(opcode: Opcode) -> bool:
    """Return True for single-cycle integer ALU operations."""
    return opcode in _INT_ALU_OPS


def default_latency(opcode: Opcode) -> int:
    """Return the execution latency of ``opcode`` in cycles."""
    return OPCODE_LATENCY[opcode]


def fu_class(opcode: Opcode) -> FuClass:
    """Return the functional-unit class ``opcode`` executes on."""
    return OPCODE_FU_CLASS[opcode]
