"""Register renaming and the banked physical register file.

Table 1: 112 integer and 112 floating-point physical registers organised as
14 banks of 8.  The paper's register-file power saving comes from a side
effect of issue-queue limiting: fewer instructions in flight means fewer
physical registers allocated simultaneously, and if allocation is clustered
(free registers handed out lowest-index-first) whole banks stay empty and
can be gated off.

The rename machinery here is the standard merged-register-file scheme: each
dispatched instruction with a destination takes a free physical register;
the *previous* mapping of that architectural register is released when the
instruction commits.  The simulator is trace-driven (no wrong-path state),
so no checkpoint/rollback is required.

The free list is a preallocated integer **bitmask** rather than a heap of
boxed indices: bit *i* set means physical register *i* is free.  Lowest-
first allocation (the clustering the paper's static savings rely on) is
``mask & -mask``; release is a single ``or``.  Nothing is allocated per
rename, and ``free_count`` is maintained incrementally so the dispatch
stage's availability check is one attribute read.
"""

from __future__ import annotations

from dataclasses import dataclass


class OutOfPhysicalRegisters(Exception):
    """Raised when rename needs a register and the free list is empty."""


@dataclass
class RenamedOperands:
    """Result of renaming one instruction.

    Attributes:
        source_tags: physical registers read by the instruction.
        dest_tags: physical registers allocated for its destinations.
        freed_on_commit: physical registers to release when it commits
            (the previous mappings of its destination architectural regs).
    """

    source_tags: list[int]
    dest_tags: list[int]
    freed_on_commit: list[int]


class PhysicalRegisterFile:
    """A banked physical register file with lowest-first allocation."""

    def __init__(self, num_physical: int, num_architectural: int, bank_size: int):
        if num_physical < num_architectural:
            raise ValueError("need at least one physical register per architectural register")
        self.num_physical = num_physical
        self.num_architectural = num_architectural
        self.bank_size = bank_size
        self.num_banks = (num_physical + bank_size - 1) // bank_size

        # Architectural register i starts mapped to physical register i;
        # the free mask holds every physical register above them.
        self.rename_map = list(range(num_architectural))
        self._free_mask = ((1 << num_physical) - 1) ^ ((1 << num_architectural) - 1)
        self.free_count = num_physical - num_architectural
        self.allocated = num_architectural
        self.bank_counts = [0] * self.num_banks
        for phys in range(num_architectural):
            self.bank_counts[phys // bank_size] += 1
        self.active_banks = sum(1 for count in self.bank_counts if count > 0)

        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def enabled_banks(self, bank_gating: bool) -> int:
        """Banks that must be powered (all of them without gating)."""
        if not bank_gating:
            return self.num_banks
        return self.active_banks

    # ------------------------------------------------------------------
    def lookup(self, arch_reg: int) -> int:
        """Current physical register holding architectural register ``arch_reg``."""
        return self.rename_map[arch_reg]

    def allocate(self, arch_reg: int) -> tuple[int, int]:
        """Allocate a new physical register for ``arch_reg``.

        Returns ``(new_physical, previous_physical)``; the previous mapping
        must be released when the renaming instruction commits.  The lowest
        free register is always chosen, clustering live registers into the
        low banks.
        """
        mask = self._free_mask
        if not mask:
            raise OutOfPhysicalRegisters(
                f"no free physical registers (all {self.num_physical} allocated)"
            )
        lowest = mask & -mask
        self._free_mask = mask ^ lowest
        new_phys = lowest.bit_length() - 1
        rename_map = self.rename_map
        previous = rename_map[arch_reg]
        rename_map[arch_reg] = new_phys
        self.allocated += 1
        self.free_count -= 1
        bank = new_phys // self.bank_size
        bank_counts = self.bank_counts
        if bank_counts[bank] == 0:
            self.active_banks += 1
        bank_counts[bank] += 1
        return new_phys, previous

    def release(self, phys_reg: int) -> None:
        """Return ``phys_reg`` to the free list (called at commit)."""
        self._free_mask |= 1 << phys_reg
        self.allocated -= 1
        self.free_count += 1
        bank = phys_reg // self.bank_size
        bank_counts = self.bank_counts
        bank_counts[bank] -= 1
        if bank_counts[bank] == 0:
            self.active_banks -= 1

    def record_reads(self, count: int) -> None:
        """Account for ``count`` operand reads (at issue)."""
        self.reads += count

    def record_writes(self, count: int) -> None:
        """Account for ``count`` result writes (at writeback)."""
        self.writes += count


class RenameUnit:
    """Renames integer and floating-point operands onto physical registers."""

    def __init__(
        self,
        int_physical: int,
        fp_physical: int,
        bank_size: int,
        num_int_arch: int = 32,
        num_fp_arch: int = 16,
    ):
        self.int_file = PhysicalRegisterFile(int_physical, num_int_arch, bank_size)
        self.fp_file = PhysicalRegisterFile(fp_physical, num_fp_arch, bank_size)

    def _file_for(self, reg) -> PhysicalRegisterFile:
        return self.fp_file if reg.is_fp else self.int_file

    def can_rename(self, instruction) -> bool:
        """True when enough free physical registers exist for the destinations."""
        int_needed = 0
        fp_needed = 0
        for reg in instruction.dests:
            if reg.is_fp:
                fp_needed += 1
            else:
                int_needed += 1
        return (
            self.int_file.free_count >= int_needed
            and self.fp_file.free_count >= fp_needed
        )

    def rename(self, instruction) -> RenamedOperands:
        """Rename ``instruction``'s operands; raises if registers run out.

        Source tags are offset so integer and FP tags never collide: FP tags
        occupy the range above the integer physical registers.  (The replay
        core renames from pre-decoded operand specs inline in its dispatch
        stage; this object-based form serves tests and external callers.)
        """
        fp_offset = self.int_file.num_physical
        source_tags: list[int] = []
        for reg in instruction.srcs:
            regfile = self._file_for(reg)
            tag = regfile.lookup(reg.index)
            source_tags.append(tag + (fp_offset if reg.is_fp else 0))

        dest_tags: list[int] = []
        freed: list[int] = []
        for reg in instruction.dests:
            regfile = self._file_for(reg)
            new_phys, previous = regfile.allocate(reg.index)
            offset = fp_offset if reg.is_fp else 0
            dest_tags.append(new_phys + offset)
            freed.append(previous + offset)
        return RenamedOperands(
            source_tags=source_tags, dest_tags=dest_tags, freed_on_commit=freed
        )

    def release(self, tag: int) -> None:
        """Release a physical register identified by its (offset) tag."""
        fp_offset = self.int_file.num_physical
        if tag >= fp_offset:
            self.fp_file.release(tag - fp_offset)
        else:
            self.int_file.release(tag)
