"""Tests for the compiler analysis and instrumentation (:mod:`repro.core`)."""

from __future__ import annotations

import pytest

from repro.core import CompilerConfig, compile_program
from repro.core.dag_analysis import PathSummary, analyse_block, analyse_dag_region
from repro.core.instrument import instrument_program
from repro.core.interprocedural import (
    apply_interprocedural_refinement,
    summarise_call_sites,
)
from repro.core.loop_analysis import analyse_loop_body
from repro.core.pipeline import analyse_program, compute_preheader_hints
from repro.core.pseudo_queue import PseudoIssueQueue
from repro.core.report import compare_compile_times, measure_baseline_compile
from repro.cfg import build_cfg, find_dag_regions, find_natural_loops
from repro.isa import Instruction, Opcode
from repro.isa.opcodes import FuClass
from repro.isa.registers import int_reg as r
from tests.conftest import make_call_program, make_counted_loop_program


class TestCompilerConfig:
    def test_load_latency_includes_cache_hit(self):
        config = CompilerConfig()
        load = Instruction.load(r(1), r(2), 0)
        assert config.instruction_latency(load) == 1 + config.assumed_l1_hit_latency

    def test_clamp_applies_margin_and_bounds(self):
        config = CompilerConfig(sizing_margin=1.0, sizing_slack=0)
        assert config.clamp_requirement(500) == config.max_iq_entries
        assert config.clamp_requirement(0) == config.min_hint_value
        assert config.clamp_requirement(20) == 20

    def test_margin_enlarges_requirements(self):
        tight = CompilerConfig(sizing_margin=1.0, sizing_slack=0)
        loose = CompilerConfig(sizing_margin=2.0, sizing_slack=0)
        assert loose.clamp_requirement(20) > tight.clamp_requirement(20)


class TestPseudoIssueQueue:
    def test_empty_sequence(self):
        schedule = PseudoIssueQueue(CompilerConfig()).schedule([])
        assert schedule.entries_needed == 0
        assert schedule.schedule_length == 0

    def test_serial_chain_needs_one_entry(self):
        instrs = [Instruction.alu(Opcode.ADD, r(1), [r(1)], imm=1) for _ in range(6)]
        schedule = PseudoIssueQueue(CompilerConfig()).schedule(instrs)
        assert schedule.entries_needed == 1

    def test_independent_instructions_limited_by_issue_width(self):
        instrs = [
            Instruction.alu(Opcode.ADD, r(i % 20 + 1), [r(21)], imm=i) for i in range(16)
        ]
        config = CompilerConfig()
        schedule = PseudoIssueQueue(config).schedule(instrs)
        # Six integer ALUs bound the per-cycle issue, not the width of 8.
        assert schedule.entries_needed >= config.fu_counts[FuClass.INT_ALU]

    def test_fu_contention_serialises_multiplies(self):
        config = CompilerConfig()
        muls = [Instruction.alu(Opcode.MUL, r(i + 1), [r(20)], imm=3) for i in range(6)]
        schedule = PseudoIssueQueue(config).schedule(muls)
        cycles_with_issue = {c for c in schedule.issue_cycle}
        assert len(cycles_with_issue) >= 2  # only 3 multipliers available

    def test_entry_latency_delays_dependent_issue(self):
        config = CompilerConfig()
        instrs = [Instruction.alu(Opcode.ADD, r(2), [r(1)])]
        delayed = PseudoIssueQueue(config).schedule(instrs, entry_latency={r(1): 5})
        immediate = PseudoIssueQueue(config).schedule(instrs)
        assert delayed.issue_cycle[0] > immediate.issue_cycle[0]

    def test_hints_are_ignored(self):
        instrs = [Instruction.hint(10), Instruction.alu(Opcode.ADD, r(1), [r(1)])]
        schedule = PseudoIssueQueue(CompilerConfig()).schedule(instrs)
        assert len(schedule.issue_cycle) == 1

    def test_exit_latency_reports_pending_writebacks(self):
        config = CompilerConfig()
        instrs = [
            Instruction.alu(Opcode.ADD, r(1), [r(5)]),
            Instruction.alu(Opcode.MUL, r(2), [r(1)], imm=3),
        ]
        schedule = PseudoIssueQueue(config).schedule(instrs)
        assert r(2) in schedule.exit_latency


class TestDagAnalysis:
    def test_single_block_requirement(self, counted_loop_program):
        block = counted_loop_program.procedures["main"].find_block("loop")
        requirement = analyse_block(block, CompilerConfig(), "main")
        assert requirement.raw_entries >= 1
        assert requirement.source == "dag"
        assert requirement.entries >= requirement.raw_entries  # margin applied

    def test_region_analysis_covers_all_blocks(self):
        program = make_call_program()
        procedure = program.procedures["main"]
        cfg = build_cfg(procedure)
        loops = find_natural_loops(cfg)
        regions = find_dag_regions(cfg, loops)
        config = CompilerConfig()
        analysed: set[str] = set()
        for region in regions:
            analysed |= set(analyse_dag_region(cfg, region, config))
        loop_blocks = {label for loop in loops for label in loop.body}
        expected = {b.label for b in procedure.blocks} - loop_blocks
        assert analysed == expected

    def test_path_summary_merging(self):
        a = PathSummary(latency={r(1): 3})
        b = PathSummary(latency={r(1): 5, r(2): 1})
        merged = a.merged_with(b, "max")
        assert merged.latency[r(1)] == 5 and merged.latency[r(2)] == 1
        assert a.merged_with(b, "ready").latency == {}


class TestLoopAnalysis:
    def test_no_recurrence_requests_full_queue(self):
        config = CompilerConfig()
        body = [Instruction.alu(Opcode.ADD, r(i + 1), [r(20)], imm=1) for i in range(4)]
        requirement = analyse_loop_body(body, config)
        assert requirement.raw_entries == config.max_iq_entries
        assert requirement.initiation_interval == 0.0

    def test_empty_body(self):
        config = CompilerConfig()
        requirement = analyse_loop_body([], config)
        assert requirement.entries == config.min_hint_value

    def test_counter_loop_has_unit_recurrence(self):
        config = CompilerConfig()
        body = [
            Instruction.alu(Opcode.SUB, r(1), [r(1)], imm=1),
            Instruction.branch_nez(r(1), "loop"),
        ]
        requirement = analyse_loop_body(body, config)
        assert requirement.initiation_interval == pytest.approx(1.0, abs=1e-6)

    def test_requirement_clamped_to_queue_size(self):
        config = CompilerConfig()
        body = [Instruction.alu(Opcode.ADD, r(1), [r(1)], imm=1)]
        body += [
            Instruction.alu(Opcode.ADD, r(2 + i % 18), [r(20)], imm=1) for i in range(200)
        ]
        requirement = analyse_loop_body(body, config)
        assert requirement.entries <= config.max_iq_entries

    def test_resource_bound_raises_initiation_interval(self):
        config = CompilerConfig()
        # One-cycle recurrence but 40 instructions per iteration: the 8-wide
        # issue bounds the achievable rate at 5 cycles per iteration.
        body = [Instruction.alu(Opcode.ADD, r(1), [r(1)], imm=1)]
        body += [Instruction.alu(Opcode.ADD, r(2 + i % 18), [r(2 + i % 18)], imm=1) for i in range(39)]
        requirement = analyse_loop_body(body, config)
        assert requirement.initiation_interval >= 40 / config.issue_width - 1e-6


class TestInstrumentation:
    def test_noop_mode_inserts_hints(self, counted_loop_program):
        config = CompilerConfig()
        result = compile_program(counted_loop_program, config, mode="noop")
        stats = result.instrumentation
        assert stats.hints_inserted > 0
        assert stats.instructions_tagged == 0
        hints = result.instrumented_program.count_opcode(Opcode.HINT)
        assert hints == stats.hints_inserted

    def test_extension_mode_tags_instead(self, counted_loop_program):
        result = compile_program(counted_loop_program, CompilerConfig(), mode="extension")
        stats = result.instrumentation
        assert stats.instructions_tagged > 0
        assert stats.hints_inserted == 0
        assert result.instrumented_program.count_opcode(Opcode.HINT) == 0

    def test_original_program_is_untouched(self, counted_loop_program):
        before = counted_loop_program.num_instructions
        compile_program(counted_loop_program, CompilerConfig(), mode="noop")
        assert counted_loop_program.num_instructions == before
        assert counted_loop_program.count_opcode(Opcode.HINT) == 0

    def test_loop_hint_is_in_preheader_not_header(self, counted_loop_program):
        result = compile_program(counted_loop_program, CompilerConfig(), mode="noop")
        instrumented_main = result.instrumented_program.procedures["main"]
        loop_block = instrumented_main.find_block("loop")
        init_block = instrumented_main.find_block("init")
        assert not any(i.is_hint for i in loop_block.instructions)
        assert any(i.is_hint for i in init_block.instructions)
        assert ("main", "init") in result.preheader_hints

    def test_library_call_requests_maximum_size(self, call_program):
        config = CompilerConfig()
        result = compile_program(call_program, config, mode="noop")
        tail = result.instrumented_program.procedures["main"].find_block("tail")
        hints = [i for i in tail.instructions if i.is_hint]
        assert any(h.hint_value == config.max_iq_entries for h in hints)

    def test_library_procedures_not_analysed(self, call_program):
        result = compile_program(call_program, CompilerConfig(), mode="noop")
        assert not any(key[0] == "libfn" for key in result.block_requirements)
        lib_body = result.instrumented_program.procedures["libfn"].blocks[0]
        assert not any(i.is_hint for i in lib_body.instructions)

    def test_unknown_mode_rejected(self, counted_loop_program):
        with pytest.raises(ValueError):
            compile_program(counted_loop_program, CompilerConfig(), mode="bogus")
        with pytest.raises(ValueError):
            instrument_program(counted_loop_program, {}, CompilerConfig(), mode="bogus")

    def test_redundant_hints_skipped(self, gzip_compiled):
        assert gzip_compiled.instrumentation.hints_skipped_redundant >= 0
        # Every analysed DAG block either emitted a hint or was skipped as
        # redundant; never silently dropped.
        emitted = gzip_compiled.instrumentation.hints_inserted
        assert emitted > 0


class TestPipeline:
    def test_analysis_covers_all_analysable_procedures(self, gzip_program):
        requirements, loops, proc_stats = analyse_program(gzip_program, CompilerConfig())
        analysed_procs = {key[0] for key in requirements}
        expected = {p.name for p in gzip_program.analysable_procedures()}
        assert analysed_procs == expected
        assert len(proc_stats) == len(expected)
        assert loops  # synthetic benchmarks always contain loops

    def test_preheader_hints_reference_real_blocks(self, gzip_compiled):
        program = gzip_compiled.program
        for (proc_name, label), value in gzip_compiled.preheader_hints.items():
            assert program.procedures[proc_name].find_block(label) is not None
            assert value >= 1

    def test_requirements_within_physical_bounds(self, gzip_compiled):
        config = CompilerConfig()
        for requirement in gzip_compiled.block_requirements.values():
            assert config.min_hint_value <= requirement.entries <= config.max_iq_entries

    def test_mean_requirement_positive(self, gzip_compiled):
        assert gzip_compiled.mean_requirement > 0

    def test_improved_mode_never_shrinks_requirements(self, gzip_program):
        config = CompilerConfig()
        extension = compile_program(gzip_program, config, mode="extension")
        improved = compile_program(gzip_program, config, mode="improved")
        for key, requirement in extension.block_requirements.items():
            refined = improved.block_requirements.get(key)
            if refined is not None:
                assert refined.entries >= requirement.entries


class TestInterprocedural:
    def test_call_sites_found(self, call_program):
        summary = summarise_call_sites(call_program, CompilerConfig())
        callees = {site.callee for site in summary.call_sites}
        assert callees == {"leaf", "libfn"}
        leaf_sites = [s for s in summary.call_sites if s.callee == "leaf"]
        assert leaf_sites[0].in_loop
        assert leaf_sites[0].loop_header == "loop"

    def test_library_callee_never_hot(self, call_program):
        summary = summarise_call_sites(call_program, CompilerConfig())
        assert "libfn" not in summary.hot_procedures
        assert "leaf" in summary.hot_procedures

    def test_refinement_enlarges_call_site_requirements(self, call_program):
        config = CompilerConfig()
        requirements, loop_requirements, _ = analyse_program(call_program, config)
        refined = apply_interprocedural_refinement(
            call_program, requirements, config, loop_requirements
        )
        key = ("main", "loop")
        assert refined[key].entries >= requirements[key].entries


class TestCompileTimeReport:
    def test_baseline_time_positive(self, gzip_program):
        assert measure_baseline_compile(gzip_program) > 0

    def test_report_row_contents(self, counted_loop_program):
        report = compare_compile_times(counted_loop_program, CompilerConfig())
        assert report.program_name == "counted-loop"
        assert report.limited_seconds > 0
        assert report.hints_emitted > 0
        assert report.num_blocks == counted_loop_program.num_basic_blocks
