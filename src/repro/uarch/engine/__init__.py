"""Pluggable replay engines for the per-cycle timing loop.

The simulator separates *what* a cycle does from *how* a kernel executes
it: :class:`~repro.uarch.engine.base.ReplayEngine` is the contract
(``run`` over a trace window stream, plus the ``run_span``
freeze-at-commit entry window sharding stitches), and two kernels
implement it —

* :class:`~repro.uarch.engine.scalar.ScalarEngine` (``"scalar"``): the
  pure-Python reference loop, behaviour frozen;
* :class:`~repro.uarch.engine.columnar.ColumnarEngine` (``"columnar"``):
  trace windows lowered into numpy structured arrays with batched
  tag-vector writeback and mask-based ready-set updates.

Statistics are **bit-identical** between kernels for every technique at
every window size, so the engine choice is pure transport: it is
selectable per call (``engine=``), per process (``REPRO_REPLAY_KERNEL``)
and per run (``figure_report.py --engine``, ``pytest --engine``), and it
never participates in result-cache fingerprints.
"""

from repro.uarch.engine.base import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ReplayEngine,
    available_engines,
    get_engine,
    register_engine,
    resolve_engine_name,
)
from repro.uarch.engine.scalar import OutOfOrderCore, ScalarEngine
from repro.uarch.engine.columnar import (
    ColumnarCore,
    ColumnarEngine,
    ColumnarUnavailableError,
    numpy_available,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "ReplayEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "resolve_engine_name",
    "OutOfOrderCore",
    "ScalarEngine",
    "ColumnarCore",
    "ColumnarEngine",
    "ColumnarUnavailableError",
    "numpy_available",
]
