"""The full compiler pass (figure 5 of the paper).

For every analysable procedure:

1. find natural loops (inner loops analysed separately from the blocks that
   belong only to the outer loop);
2. form DAG regions from the remaining blocks, starting at the procedure
   entry and after every procedure call;
3. build dependence graphs and analyse each DAG block with the pseudo issue
   queue, and each loop with the cyclic-dependence-set equations;
4. (Improved mode only) refine requirements at hot call sites with
   inter-procedural functional-unit-contention information;
5. emit the requirements as special NOOPs or instruction tags.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.cfg.dag_regions import find_dag_regions
from repro.cfg.graph import build_cfg
from repro.cfg.natural_loops import find_natural_loops
from repro.core.config import CompilerConfig
from repro.core.dag_analysis import BlockRequirement, analyse_dag_region
from repro.core.instrument import ALL_MODES, InstrumentationStats, instrument_program
from repro.core.interprocedural import apply_interprocedural_refinement
from repro.core.loop_analysis import LoopRequirement, analyse_loop
from repro.isa.program import Program


@dataclass
class ProcedureAnalysis:
    """Per-procedure analysis artefacts (for reporting and tests)."""

    name: str
    num_blocks: int = 0
    num_loops: int = 0
    num_dag_regions: int = 0
    analysis_seconds: float = 0.0


@dataclass
class CompilationResult:
    """Everything the compiler pass produces for one program.

    Attributes:
        program: the original, unmodified program.
        instrumented_program: the copy carrying hints (NOOPs or tags).
        mode: the hint encoding used.
        block_requirements: (procedure, block) -> requirement for every
            analysed block (DAG blocks and loop headers).
        loop_requirements: per-loop analysis results.
        preheader_hints: (procedure, block) -> value emitted at the end of
            that block, i.e. immediately before a loop is entered.
        instrumentation: emission statistics.
        procedures: per-procedure analysis bookkeeping.
        analysis_seconds: wall-clock time spent in analysis (excludes
            instrumentation), the quantity table 2 of the paper reports.
    """

    program: Program
    instrumented_program: Program
    mode: str
    block_requirements: dict[tuple[str, str], BlockRequirement] = field(default_factory=dict)
    loop_requirements: list[LoopRequirement] = field(default_factory=list)
    preheader_hints: dict[tuple[str, str], int] = field(default_factory=dict)
    instrumentation: Optional[InstrumentationStats] = None
    procedures: list[ProcedureAnalysis] = field(default_factory=list)
    analysis_seconds: float = 0.0

    def requirement_for(self, procedure: str, block: str) -> Optional[BlockRequirement]:
        """Convenience lookup of a block's requirement."""
        return self.block_requirements.get((procedure, block))

    @property
    def mean_requirement(self) -> float:
        """Mean emitted requirement across all hinted blocks."""
        if not self.block_requirements:
            return 0.0
        values = [req.entries for req in self.block_requirements.values()]
        return sum(values) / len(values)


def analyse_program(
    program: Program, config: CompilerConfig
) -> tuple[dict[tuple[str, str], BlockRequirement], list[LoopRequirement], list[ProcedureAnalysis]]:
    """Run the intra-procedural analysis of figure 5 over every procedure."""
    block_requirements: dict[tuple[str, str], BlockRequirement] = {}
    loop_requirements: list[LoopRequirement] = []
    procedure_stats: list[ProcedureAnalysis] = []

    for procedure in program.analysable_procedures():
        start = time.perf_counter()
        cfg = build_cfg(procedure)
        loops = find_natural_loops(cfg)
        regions = find_dag_regions(cfg, loops)

        for region in regions:
            region_requirements = analyse_dag_region(cfg, region, config)
            for label, requirement in region_requirements.items():
                block_requirements[(procedure.name, label)] = requirement

        for loop in loops:
            ordered_labels = [
                block.label
                for block in procedure.blocks
                if block.label in loop.exclusive_body
            ]
            blocks = [cfg.block(label) for label in ordered_labels]
            loop_requirement = analyse_loop(
                blocks,
                config,
                procedure_name=procedure.name,
                header_label=loop.header,
            )
            loop_requirements.append(loop_requirement)
            block_requirements[(procedure.name, loop.header)] = (
                loop_requirement.as_block_requirement()
            )

        elapsed = time.perf_counter() - start
        procedure_stats.append(
            ProcedureAnalysis(
                name=procedure.name,
                num_blocks=len(procedure.blocks),
                num_loops=len(loops),
                num_dag_regions=len(regions),
                analysis_seconds=elapsed,
            )
        )

    return block_requirements, loop_requirements, procedure_stats


def compute_postcall_requirements(
    program: Program,
    block_requirements: dict[tuple[str, str], BlockRequirement],
) -> dict[tuple[str, str], BlockRequirement]:
    """Re-issue region sizes after procedure calls inside loops.

    Section 4.4: "On returning from a function call, we restart analysing
    the IQ requirements for the remainder of the callee procedure."  For
    call sites inside loops the remainder is governed by the enclosing
    loop's requirement, so the block that receives control after the call
    gets a hint carrying the loop's value; without it the callee's (small)
    last region would keep throttling every subsequent iteration.
    """
    additions: dict[tuple[str, str], BlockRequirement] = {}
    for procedure in program.analysable_procedures():
        cfg = build_cfg(procedure)
        loops = find_natural_loops(cfg)
        for loop in loops:
            header_req = block_requirements.get((procedure.name, loop.header))
            if header_req is None or header_req.source != "loop":
                continue
            for label in loop.body:
                if label == loop.header:
                    continue
                key = (procedure.name, label)
                if key in block_requirements or key in additions:
                    continue
                preds = [p for p in cfg.pred(label) if p in loop.body]
                follows_call = any(
                    any(instr.is_call for instr in cfg.block(pred).instructions)
                    for pred in preds
                )
                if follows_call:
                    additions[key] = BlockRequirement(
                        procedure=procedure.name,
                        label=label,
                        entries=header_req.entries,
                        raw_entries=header_req.raw_entries,
                        schedule=None,
                        source="postcall",
                    )
    return additions


def compute_preheader_hints(
    program: Program,
    block_requirements: dict[tuple[str, str], BlockRequirement],
) -> dict[tuple[str, str], int]:
    """Decide where loop requirements are emitted.

    A loop's requirement must be in force *before* the loop is entered and
    must not be re-issued every iteration, so it is attached to the end of
    every predecessor of the loop header that lies outside the loop.  If a
    loop header has no such predecessor (the header is the procedure entry)
    the value falls back to the header itself.
    """
    preheader_hints: dict[tuple[str, str], int] = {}

    for procedure in program.analysable_procedures():
        cfg = build_cfg(procedure)
        loops = find_natural_loops(cfg)
        for loop in loops:
            key = (procedure.name, loop.header)
            requirement = block_requirements.get(key)
            if requirement is None or requirement.source != "loop":
                continue
            outside_preds = [
                pred for pred in cfg.pred(loop.header) if pred not in loop.body
            ]
            targets = outside_preds or [loop.header]
            for pred in targets:
                pred_key = (procedure.name, pred)
                preheader_hints[pred_key] = max(
                    preheader_hints.get(pred_key, 0), requirement.entries
                )
    return preheader_hints


def compile_program(
    program: Program,
    config: Optional[CompilerConfig] = None,
    mode: str = "noop",
) -> CompilationResult:
    """Run the whole compiler pass on ``program`` and return its results.

    Args:
        program: the program to analyse (validated before analysis).
        config: analysis parameters; defaults mirror table 1.
        mode: ``"noop"``, ``"extension"`` or ``"improved"``.
    """
    if mode not in ALL_MODES:
        raise ValueError(f"unknown compilation mode {mode!r}")
    config = config or CompilerConfig()
    program.validate()

    start = time.perf_counter()
    block_requirements, loop_requirements, procedure_stats = analyse_program(program, config)
    if mode == "improved":
        block_requirements = apply_interprocedural_refinement(
            program, block_requirements, config, loop_requirements=loop_requirements
        )
    block_requirements.update(
        compute_postcall_requirements(program, block_requirements)
    )
    preheader_hints = compute_preheader_hints(program, block_requirements)
    analysis_seconds = time.perf_counter() - start

    instrumented, stats = instrument_program(
        program,
        block_requirements,
        config,
        mode=mode,
        preheader_hints=preheader_hints,
    )
    instrumented.validate()

    return CompilationResult(
        program=program,
        instrumented_program=instrumented,
        mode=mode,
        block_requirements=block_requirements,
        loop_requirements=loop_requirements,
        preheader_hints=preheader_hints,
        instrumentation=stats,
        procedures=procedure_stats,
        analysis_seconds=analysis_seconds,
    )
