"""Ablation: hardware-adaptive reaction delay across program phase changes.

The ``phaseflip`` workload alternates between an ILP-rich loop phase and
a serial pointer-chasing phase every couple of driver iterations (~5-6k
dynamic instructions), so whatever the abella interval heuristic learned
about the previous phase is wrong by the time it acts on it — the
reaction-delay weakness of purely hardware schemes the paper argues in
section 1.  This bench sweeps the evaluation interval across the flips
and reports the loss/savings/decision-count trade-off; the budget spans
roughly eight phase changes.
"""

from repro.power import build_power_report, power_savings
from repro.techniques import AbellaPolicy, BaselinePolicy
from repro.uarch import simulate
from repro.workloads import build_benchmark


BUDGET = dict(max_instructions=24_000, warmup_instructions=4_000)


def run_phase_change_sweep():
    program = build_benchmark("phaseflip")
    baseline_policy = BaselinePolicy()
    baseline = simulate(program, baseline_policy, **BUDGET)
    baseline_power = build_power_report(baseline, baseline_policy)
    results = {}
    for interval in (256, 768, 2048):
        policy = AbellaPolicy(interval_cycles=interval)
        stats = simulate(program, policy, **BUDGET)
        savings = power_savings(baseline_power, build_power_report(stats, policy))
        results[interval] = (
            100 * (1 - stats.ipc / baseline.ipc),
            100 * savings.iq_dynamic,
            100 * (1 - stats.avg_iq_occupancy / baseline.avg_iq_occupancy),
            len(policy.decisions),
        )
    return baseline, results


def test_abella_across_phase_changes(benchmark):
    baseline, results = benchmark.pedantic(
        run_phase_change_sweep, rounds=1, iterations=1
    )
    print(f"\n  phaseflip baseline: IPC {baseline.ipc:.3f}, "
          f"IQ occupancy {baseline.avg_iq_occupancy:.1f}")
    for interval, (loss, saving, occ_red, decisions) in results.items():
        print(f"  interval {interval:5d} cycles: loss {loss:5.1f}%  "
              f"IQ dyn saving {saving:5.1f}%  occupancy -{occ_red:4.1f}%  "
              f"decisions {decisions}")
    # A shorter interval reacts to each flip with less delay, so it must
    # make strictly more resize decisions over the same run.
    assert results[256][3] > results[2048][3]
    # Even across hostile phase changes the heuristic still trims the
    # queue: occupancy reduction stays positive at every interval.
    for interval, (_, _, occ_red, _) in results.items():
        assert occ_red > 0.0, f"interval {interval} saved no occupancy"
