"""The scalar replay kernel: the out-of-order pipeline driver.

A trace-driven, cycle-level model of the processor in table 1: the
functional emulator supplies the committed dynamic instruction stream and
this core times it through fetch, decode, rename/dispatch, issue, execute,
writeback and commit, modelling the issue queue, reorder buffer, physical
register files, functional units, caches and branch prediction.

:class:`OutOfOrderCore` is the reference implementation of the
:class:`~repro.uarch.engine.base.ReplayEngine` contract — the pure-Python
per-cycle loop, moved here verbatim from ``repro.uarch.core`` (which
remains the import-compatible front door).  The columnar kernel
(:mod:`repro.uarch.engine.columnar`) subclasses it, overriding only the
stages it lowers onto numpy, so the machine semantics are defined exactly
once.

The core is a **replay engine**: it consumes the committed stream lowered
into flat, pre-decoded arrays and walks it by index.  Functional
emulation happens exactly once per (program, budget) in
:mod:`repro.uarch.trace` (memoised in-process and optionally cached on
disk), so the per-cycle hot path performs no interpreter dispatch, no
``DynamicInstruction`` attribute chains and no per-instruction object
allocation.  The feed is a
:class:`~repro.uarch.trace.TraceWindowStream` — consecutive
:class:`~repro.uarch.trace.DecodedTrace` windows consumed forward-only.
Only the fetch and dispatch stages index trace arrays (issue and later
stages read timing attributes copied onto the ROB entry at dispatch), so
the core holds exactly the windows spanning its fetch queue: fetch pulls
the next window in as it crosses a boundary, dispatch releases a window
once every entry in it has been consumed, and
``max_resident_windows`` records the high-water count.  Statistics are
bit-identical for every window size, including a monolithic single
window.  Passing a ``DecodedTrace`` (single window) or a plain iterable
of ``DynamicInstruction`` (lowered on construction) still works.

Deviation from an execute-driven simulator (documented in DESIGN.md): the
wrong path after a branch misprediction is not fetched; instead the front
end stalls until the mispredicted branch resolves and then pays a redirect
penalty.  All quantities the paper reports (IPC deltas, queue occupancy,
wakeup activity, bank usage, register lifetime) are preserved by this
simplification because wrong-path instructions never commit and the stall
time equals the resolution delay either way.

Statistics whose per-cycle sums feed time averages (queue occupancy,
waiting operands, enabled banks, live registers, in-flight count) are
accumulated **event-driven**: the six sampled quantities only change when
a pipeline stage dispatches, issues, writes back or commits, so the core
folds ``value × elapsed_cycles`` into the sums at those boundaries (and
once at the end of the run) instead of re-reading every structure every
cycle.  End-of-run statistics are identical to per-cycle sampling.

Maintenance note: the stage loops hand-inline the bodies of
``BankedIssueQueue.allocate/remove/broadcast/can_dispatch``,
``PhysicalRegisterFile.allocate/release``, ``ReorderBuffer.allocate`` /
``pop_completed`` and ``FunctionalUnitPool.try_acquire_index`` (each
marked with an ``# Inlined ...`` comment).  A semantic change to any of
those component methods must be mirrored here — the equivalence tests in
``tests/test_trace_replay.py`` compare replay paths against each other,
not against the object-based component API.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Union

from repro.techniques.base import ResizingPolicy
from repro.uarch.engine.base import ReplayEngine, register_engine
from repro.uarch.branch import HybridBranchPredictor
from repro.uarch.cache import MemoryHierarchy
from repro.uarch.config import ProcessorConfig
from repro.uarch.emulator import DynamicInstruction
from repro.uarch.functional_units import FunctionalUnitPool
from repro.uarch.issue_queue import BankedIssueQueue, IssueQueueEntry
from repro.uarch.regfile import RenameUnit
from repro.uarch.rob import COMPLETED, DISPATCHED, ISSUED, ReorderBuffer, RobEntry
from repro.uarch.stats import SimulationStats
from repro.uarch.trace import (
    DecodedTrace,
    F_BRANCH,
    F_CALL,
    F_CONTROL,
    F_HINT,
    F_LOAD,
    F_NOP,
    F_RET,
    F_STORE,
    TraceCache,
    TraceWindowStream,
    get_trace_span_stream,
    get_trace_stream,
)


class OutOfOrderCore:
    """Cycle-level timing model replaying a pre-decoded dynamic stream."""

    def __init__(
        self,
        trace: Union[
            TraceWindowStream, DecodedTrace, Iterable[DynamicInstruction]
        ],
        config: Optional[ProcessorConfig] = None,
        policy=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
        measure_instructions: Optional[int] = None,
    ):
        self.config = config or ProcessorConfig.hpca2005()
        self.config.validate()
        if policy is None:
            from repro.techniques.fixed import BaselinePolicy

            policy = BaselinePolicy()
        self.policy = policy
        self.warmup_instructions = warmup_instructions
        self.max_cycles = max_cycles
        # Measure-span support (window sharding): with
        # ``measure_instructions`` set, statistics freeze at the commit
        # of the N-th *measured* instruction — the simulation stops at
        # exactly the point where the next shard's measurement begins
        # (its warm-up flip happens at the same commit, in the same
        # stage order), so per-shard statistics partition a sequential
        # run's without double counting.  None: run to the trace's end.
        self.measure_instructions = measure_instructions
        # A zero-length measure span contributes nothing: it freezes at
        # the warm-up flip itself, before counting any commit or event
        # (the flip-equivalent point where the next span starts counting).
        self._measure_frozen = (
            measure_instructions is not None
            and measure_instructions <= 0
            and warmup_instructions == 0
        )

        if isinstance(trace, TraceWindowStream):
            stream = trace
        elif isinstance(trace, DecodedTrace):
            stream = TraceWindowStream.single(trace)
        else:
            stream = TraceWindowStream.single(
                DecodedTrace.from_dynamic_stream(trace)
            )
        self._stream = stream
        first = stream.next_window()
        if first is None:
            first = DecodedTrace()
        # Window state.  Dispatch trails fetch, so the resident windows
        # are exactly [dispatch window .. fetch window]; ``_win_queue``
        # holds those strictly ahead of dispatch, in trace order.  Fetch
        # appends as it crosses a boundary; dispatch pops (releasing the
        # window it just drained) — peak decoded-trace memory is bounded
        # by the fetch-queue span, recorded in ``max_resident_windows``.
        self._win_queue: deque[DecodedTrace] = deque()
        self._f_trace = first
        self._f_base = 0
        self._f_limit = first.length
        self._d_trace = first
        self._d_base = 0
        self._d_limit = first.length
        self.max_resident_windows = 1
        self._trace_pos = 0
        self._trace_exhausted = False

        cfg = self.config
        self.stats = SimulationStats(
            iq_banks_total=cfg.iq_banks, rf_banks_total=cfg.int_regfile_banks
        )
        self.iq = BankedIssueQueue(cfg.iq_entries, cfg.iq_bank_size)
        self.rob = ReorderBuffer(cfg.rob_entries)
        self.rename = RenameUnit(cfg.int_phys_regs, cfg.fp_phys_regs, cfg.regfile_bank_size)
        self.fus = FunctionalUnitPool(cfg.fu_counts)
        self.memory = MemoryHierarchy(cfg)
        self.predictor = HybridBranchPredictor(cfg.branch)

        total_tags = cfg.int_phys_regs + cfg.fp_phys_regs
        self._tag_ready = bytearray([1] * total_tags)

        self.cycle = 0
        # Fetch/decode queue of (trace index, decode-ready cycle) pairs.
        self._fetch_queue: deque[tuple[int, int]] = deque()
        self._completion_events: dict[int, list] = {}
        self._iq_entry_by_rob: dict[int, IssueQueueEntry] = {}

        # Front-end stall state.
        self._fetch_blocked_on_seq: Optional[int] = None
        self._fetch_resume_cycle = 0
        self._last_fetch_line: Optional[int] = None

        self._warmup_done = warmup_instructions == 0
        self._committed_total = 0

        # Event-driven sampling state: the snapshot of the six sampled
        # quantities, the cycle it was taken at, and whether any stage
        # has invalidated it this cycle.
        self._sample_snapshot = (0, 0, 0, 0, 0, 0)
        self._sample_anchor = 0
        self._sample_dirty = True

        # ``on_cycle_end`` is pure overhead for policies that don't
        # override it (baseline, nonempty, software); skip the call.
        self._on_cycle_end = (
            None
            if type(policy).on_cycle_end is ResizingPolicy.on_cycle_end
            else policy.on_cycle_end
        )

        self.policy.on_simulation_start(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Simulate until the trace drains (or ``max_cycles`` is hit)."""
        safety_limit = self.max_cycles
        step = self.step
        while not self._finished():
            step()
            if self._measure_frozen:
                break
            if safety_limit is not None and self.cycle >= safety_limit:
                break
        self._finalize_sample()
        return self.stats

    def step(self) -> None:
        """Advance the machine by one cycle (back-to-front stage order)."""
        if self._measure_frozen:
            return
        fus = self.fus
        fus._used[:] = fus._zeros  # inlined FunctionalUnitPool.new_cycle
        self._commit()
        if self._measure_frozen:
            # The measure span ended at a commit earlier in this cycle.
            # The remaining stages of the cycle belong to the *next*
            # shard's measurement (its warm-up flips during commit too,
            # so it counts this cycle's writeback/issue/dispatch/fetch
            # events), and the cycle itself is likewise the next shard's:
            # stop before the cycle counter advances.
            return
        self._writeback()
        self._issue()
        self._dispatch()
        self._fetch()
        if self._warmup_done and self._sample_dirty:
            self._flush_sample()
        on_cycle_end = self._on_cycle_end
        if on_cycle_end is not None:
            on_cycle_end(self)
        self.cycle += 1
        self.stats.cycles = self.cycle if self._warmup_done else 0

    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        return (
            self._trace_exhausted
            and not self._fetch_queue
            and self.rob.count == 0
        )

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        # Inlined ReorderBuffer.pop_completed: this loop runs every cycle
        # and retires up to commit_width instructions.
        rob = self.rob
        count = rob.count
        if count == 0:
            return
        entries = rob.entries
        head = rob.head
        entry = entries[head]
        if entry is None or entry.state != COMPLETED:
            return
        capacity = rob.capacity
        rename = self.rename
        int_file = rename.int_file
        fp_file = rename.fp_file
        fp_offset = int_file.num_physical
        int_bank_size = int_file.bank_size
        int_bank_counts = int_file.bank_counts
        committed = 0
        width = self.config.commit_width
        measure_limit = self.measure_instructions
        while True:
            head = (head + 1) % capacity
            count -= 1
            for tag in entry.freed_on_commit:
                # Inlined RenameUnit.release (integer registers dominate).
                if tag >= fp_offset:
                    fp_file.release(tag - fp_offset)
                else:
                    int_file._free_mask |= 1 << tag
                    int_file.allocated -= 1
                    int_file.free_count += 1
                    bank = tag // int_bank_size
                    int_bank_counts[bank] -= 1
                    if int_bank_counts[bank] == 0:
                        int_file.active_banks -= 1
            committed += 1
            self._committed_total += 1
            if self._warmup_done:
                stats = self.stats
                stats.committed_instructions += 1
                stats.committed_micro_ops += 1
                if (
                    measure_limit is not None
                    and stats.committed_instructions >= measure_limit
                ):
                    # Freeze mid-commit: later commits in this cycle (and
                    # the rest of the cycle's stages) belong to the next
                    # measure span, mirroring the warm-up flip exactly.
                    self._measure_frozen = True
                    break
            elif self._committed_total >= self.warmup_instructions:
                self._end_warmup()
                if measure_limit is not None and measure_limit <= 0:
                    # Zero-length span: freeze at the flip, measuring
                    # nothing — the next span counts from this very point.
                    self._measure_frozen = True
                    break
            if committed >= width or count == 0:
                break
            entry = entries[head]
            if entry is None or entry.state != COMPLETED:
                break
        rob.head = head
        rob.count = count
        self._sample_dirty = True

    def _end_warmup(self) -> None:
        """Reset measurement counters at the end of the warm-up period.

        The measurement clock restarts at zero, so every piece of in-flight
        timing state expressed in absolute cycles — pending completion
        events, issue-queue ready cycles, fetch-queue decode times and the
        front-end resume cycle — is rebased into the new time base.
        Without the rebase, instructions in flight at the warm-up boundary
        would complete only when the new clock caught up with their old
        absolute completion cycles, stalling the machine for roughly the
        whole warm-up duration.
        """
        self._warmup_done = True
        preserved = SimulationStats(
            iq_banks_total=self.stats.iq_banks_total,
            rf_banks_total=self.stats.rf_banks_total,
        )
        self.stats = preserved
        shift = self.cycle
        self.cycle = 0
        self._sample_anchor = 0
        self._sample_dirty = True
        if shift:
            self._completion_events = {
                cycle - shift: entries
                for cycle, entries in self._completion_events.items()
            }
            for iq_entry in self._iq_entry_by_rob.values():
                iq_entry.ready_cycle -= shift
            self._fetch_queue = deque(
                (index, ready - shift) for index, ready in self._fetch_queue
            )
            self._fetch_resume_cycle -= shift
        self.policy.on_measurement_start(self, shift)

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------
    def _writeback(self) -> None:
        finishing = self._completion_events.pop(self.cycle, None)
        if not finishing:
            return
        iq = self.iq
        iq_slots = iq.slots
        iq_consumers = iq._consumers
        iq_ready_by_age = iq._ready_by_age
        tag_ready = self._tag_ready
        int_phys = self.config.int_phys_regs
        blocked_seq = self._fetch_blocked_on_seq
        cycle = self.cycle
        broadcasts = 0
        cmp_gated = 0
        rf_writes = 0
        for entry in finishing:
            # Inlined ReorderBuffer.mark_completed.
            entry.state = COMPLETED
            entry.completion_cycle = cycle
            for tag in entry.dest_tags:
                if tag < int_phys:
                    rf_writes += 1
                tag_ready[tag] = 1
                broadcasts += 1
                # The gated comparator count is the number of waiting
                # operands at the instant of this broadcast, so it must be
                # sampled before each wakeup, not once per writeback group.
                cmp_gated += iq.waiting_operand_count
                # Inlined BankedIssueQueue.broadcast.
                consumers = iq_consumers.pop(tag, None)
                if consumers:
                    for waiter in consumers:
                        waiting = waiter.waiting_tags
                        if iq_slots[waiter.slot] is waiter and tag in waiting:
                            waiting.discard(tag)
                            iq.waiting_operand_count -= 1
                            if not waiting:
                                iq_ready_by_age[waiter.age] = waiter
            # Resolve a front-end block if this was the mispredicted branch.
            if blocked_seq is not None and entry.dyn == blocked_seq:
                blocked_seq = None
                self._fetch_blocked_on_seq = None
                # An I-miss on the blocked line may already hold fetch past
                # the redirect: the front end resumes at the later of the
                # two, never earlier.
                self._fetch_resume_cycle = max(
                    self._fetch_resume_cycle,
                    cycle + self.config.branch_mispredict_penalty,
                )
        self._sample_dirty = True
        if self._warmup_done and broadcasts:
            self.rename.int_file.record_writes(rf_writes)
            stats = self.stats
            stats.rf_writes += rf_writes
            stats.iq_broadcasts += broadcasts
            stats.iq_cmp_full += broadcasts * iq.cmp_full_per_broadcast
            stats.iq_cmp_gated += cmp_gated

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------
    def _issue(self) -> None:
        ready_map = self.iq._ready_by_age
        if not ready_map:
            return
        issued = 0
        cycle = self.cycle
        width = self.config.issue_width
        int_phys = self.config.int_phys_regs
        fus = self.fus
        fu_used = fus._used
        fu_limits = fus._limits
        fu_issues = fus._issues
        fu_stalls = 0
        iq = self.iq
        iq_slots = iq.slots
        iq_bank_size = iq.bank_size
        iq_bank_counts = iq.bank_counts
        iq_advance = iq._advance_pointers
        iq_entry_by_rob = self._iq_entry_by_rob
        rob_entries = self.rob.entries
        completion_events = self._completion_events
        rf_reads = 0
        for age in sorted(ready_map):
            if issued >= width:
                break
            entry = ready_map[age]
            if entry.ready_cycle > cycle:
                continue
            # Inlined FunctionalUnitPool.try_acquire_index (hot: once per
            # ready entry per cycle).
            fu = entry.fu_class
            used = fu_used[fu]
            if used >= fu_limits[fu]:
                fu_stalls += 1
                continue
            fu_used[fu] = used + 1
            fu_issues[fu] += 1
            rob_index = entry.rob_index
            rob_entry = rob_entries[rob_index]
            # Inlined BankedIssueQueue.remove: the entry is ready, so it
            # holds no waiting operands to deduct.
            slot = entry.slot
            iq_slots[slot] = None
            iq.count -= 1
            bank = slot // iq_bank_size
            iq_bank_counts[bank] -= 1
            if iq_bank_counts[bank] == 0:
                iq.active_banks -= 1
            del ready_map[age]
            # Pointer advance is only needed when the removal opened a
            # hole at ``head`` or ``new_head``.
            if iq_slots[iq.head] is None or iq_slots[iq.new_head] is None:
                iq_advance()
            del iq_entry_by_rob[rob_index]
            rob_entry.state = ISSUED
            issued += 1
            for tag in rob_entry.source_tags:
                if tag < int_phys:
                    rf_reads += 1
            # Timing attributes were copied onto the ROB entry at
            # dispatch, so issue never indexes the (possibly released)
            # trace window.
            flags = rob_entry.flags
            if flags & (F_LOAD | F_STORE):
                latency = self._memory_latency(
                    rob_entry.mem_addr, flags, rob_entry.latency
                )
            else:
                latency = rob_entry.latency
            finish = cycle + (latency if latency > 1 else 1)
            events = completion_events.get(finish)
            if events is None:
                completion_events[finish] = [rob_entry]
            else:
                events.append(rob_entry)
        if fu_stalls:
            fus.structural_stalls += fu_stalls
        if issued:
            self._sample_dirty = True
            if self._warmup_done:
                self.rename.int_file.record_reads(rf_reads)
                stats = self.stats
                stats.issued_instructions += issued
                stats.iq_issue_reads += issued
                stats.rf_reads += rf_reads

    def _memory_latency(self, mem_addr: int, flags: int, base_latency: int) -> int:
        """Data-cache access latency for a load/store at ``mem_addr``."""
        latency, l1_hit, l2_hit = self.memory.data_access_fast(mem_addr)
        if flags & F_LOAD:
            if self._warmup_done:
                stats = self.stats
                stats.l1d_accesses += 1
                if not l1_hit:
                    stats.l1d_misses += 1
                    stats.l2_accesses += 1
                if not l2_hit:
                    stats.l2_misses += 1
            return base_latency + latency
        if self._warmup_done:
            self.stats.l1d_accesses += 1
        return base_latency

    # ------------------------------------------------------------------
    # Dispatch (rename + issue-queue/ROB allocation)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        fetch_queue = self._fetch_queue
        if not fetch_queue:
            return
        cycle = self.cycle
        if fetch_queue[0][1] > cycle:
            return
        trace = self._d_trace
        d_base = self._d_base
        d_limit = self._d_limit
        flags_arr = trace.flags
        fu_arr = trace.fu_idx
        specs = trace.rename_specs
        iq_tags = trace.iq_tag
        lat_arr = trace.latency
        mem_arr = trace.mem_addr
        dispatched = 0
        stalled_on_region = False
        stalled_on_physical = False
        width = self.config.dispatch_width
        policy = self.policy
        uses_hints = policy.uses_hints
        tag_ready = self._tag_ready
        stats = self.stats if self._warmup_done else None
        rename = self.rename
        int_file = rename.int_file
        fp_file = rename.fp_file
        int_map = int_file.rename_map
        fp_allocate = fp_file.allocate
        fp_offset = int_file.num_physical
        rf_bank_size = int_file.bank_size
        rf_bank_counts = int_file.bank_counts
        rob = self.rob
        rob_limit = rob.limit
        rob_effective = rob.capacity if rob_limit is None else rob_limit
        rob_entries = rob.entries
        rob_capacity = rob.capacity
        iq = self.iq
        iq_capacity = iq.capacity
        iq_slots = iq.slots
        iq_pool = iq._pool
        iq_bank_size = iq.bank_size
        iq_bank_counts = iq.bank_counts
        iq_consumers = iq._consumers
        iq_ready_by_age = iq._ready_by_age
        iq_entry_by_rob = self._iq_entry_by_rob
        ready_cycle = cycle + 1
        # Structure counters touched once per dispatched instruction are
        # kept in locals and written back after the loop; policy hooks
        # (``on_hint``) only read ``iq.tail``, which is kept in sync just
        # before each hook call.
        rob_count = rob.count
        rob_tail = rob.tail
        iq_count = iq.count
        iq_span = iq.span
        iq_tail = iq.tail
        iq_age = iq._next_age
        int_free_mask = int_file._free_mask
        int_free_count = int_file.free_count
        int_allocated = int_file.allocated
        while dispatched < width and fetch_queue:
            index, decode_ready = fetch_queue[0]
            if decode_ready > cycle:
                break
            while index >= d_limit:
                # Dispatch drained its window: step to the next one fetch
                # already pulled in, releasing the old window — the
                # windowed replay's decode-memory bound.
                trace = self._win_queue.popleft()
                d_base = d_limit
                d_limit += trace.length
                self._d_trace = trace
                self._d_base = d_base
                self._d_limit = d_limit
                flags_arr = trace.flags
                fu_arr = trace.fu_idx
                specs = trace.rename_specs
                iq_tags = trace.iq_tag
                lat_arr = trace.latency
                mem_arr = trace.mem_addr
            rel = index - d_base
            flags = flags_arr[rel]

            # The paper's special NOOP: stripped in the last decode stage.
            # It consumes a dispatch slot (the source of the NOOP scheme's
            # small IPC cost) but never reaches the issue queue.
            if flags & (F_HINT | F_NOP):
                if flags & F_HINT:
                    if uses_hints:
                        iq.tail = iq_tail
                        policy.on_hint(
                            self,
                            trace.statics[trace.static_idx[rel]].hint_value,
                        )
                    if stats is not None:
                        stats.hint_noops_stripped += 1
                fetch_queue.popleft()
                dispatched += 1
                continue

            # Tag-carried hints (Extension/Improved) cost no dispatch slot.
            if uses_hints:
                tag_value = iq_tags[rel]
                if tag_value is not None:
                    iq.tail = iq_tail
                    policy.on_hint(self, tag_value)
                    if stats is not None:
                        stats.tagged_instructions_seen += 1
                    # Policy hooks may toggle warm-up-independent state
                    # only, so the cached stats reference stays valid
                    # across the call.

            if rob_count >= rob_effective:
                break
            int_srcs, fp_srcs, int_dests, fp_dests = specs[rel]
            if int_free_count < len(int_dests) or (
                fp_dests and fp_file.free_count < len(fp_dests)
            ):
                break
            # Inlined BankedIssueQueue.can_dispatch (hot: once per
            # dispatched instruction).
            if iq_span >= iq_capacity:
                stalled_on_physical = True
                break
            global_limit = iq.global_limit
            if global_limit is not None and iq_span >= global_limit:
                stalled_on_region = True
                break
            max_new_range = iq.max_new_range
            if (
                max_new_range is not None
                and iq_span
                and (iq_tail - iq.new_head) % iq_capacity >= max_new_range
            ):
                stalled_on_region = True
                break

            fetch_queue.popleft()
            if fp_srcs:
                fp_map = fp_file.rename_map
                source_tags = [int_map[arch] for arch in int_srcs] + [
                    fp_map[arch] + fp_offset for arch in fp_srcs
                ]
            else:
                source_tags = [int_map[arch] for arch in int_srcs]
            dest_tags = []
            freed = []
            for arch in int_dests:
                # Inlined PhysicalRegisterFile.allocate: the free_count
                # check above guarantees the mask is non-empty.
                lowest = int_free_mask & -int_free_mask
                int_free_mask ^= lowest
                new_phys = lowest.bit_length() - 1
                previous = int_map[arch]
                int_map[arch] = new_phys
                int_allocated += 1
                int_free_count -= 1
                bank = new_phys // rf_bank_size
                if rf_bank_counts[bank] == 0:
                    int_file.active_banks += 1
                rf_bank_counts[bank] += 1
                dest_tags.append(new_phys)
                freed.append(previous)
                tag_ready[new_phys] = 0
            for arch in fp_dests:
                new_phys, previous = fp_allocate(arch)
                dest_tags.append(new_phys + fp_offset)
                freed.append(previous + fp_offset)
                tag_ready[new_phys + fp_offset] = 0

            # Inlined ReorderBuffer.allocate (pooled entries; the checks
            # above already guaranteed space).
            rob_entry = rob_entries[rob_tail]
            if rob_entry is None:
                rob_entry = RobEntry(index=rob_tail)
                rob_entries[rob_tail] = rob_entry
            rob_index = rob_tail
            rob_entry.dyn = index
            rob_entry.state = DISPATCHED
            rob_entry.completion_cycle = 0
            rob_entry.dest_tags = dest_tags
            rob_entry.freed_on_commit = freed
            rob_entry.source_tags = source_tags
            rob_entry.flags = flags
            rob_entry.latency = lat_arr[rel]
            rob_entry.mem_addr = mem_arr[rel]
            rob_tail = (rob_tail + 1) % rob_capacity
            rob_count += 1

            # Inlined BankedIssueQueue.allocate (pooled entries; dispatch
            # admission was checked above).
            waiting = {tag for tag in source_tags if not tag_ready[tag]}
            slot = iq_tail
            iq_entry = iq_pool[slot]
            if iq_entry is None:
                iq_entry = IssueQueueEntry(rob_index=rob_index, slot=slot)
                iq_pool[slot] = iq_entry
            iq_entry.rob_index = rob_index
            iq_entry.waiting_tags = waiting
            iq_entry.num_source_operands = len(source_tags)
            iq_entry.fu_class = fu_arr[rel]
            iq_entry.ready_cycle = ready_cycle
            iq_entry.age = iq_age
            iq_slots[slot] = iq_entry
            iq_tail = (slot + 1) % iq_capacity
            iq_count += 1
            iq_span += 1
            bank = slot // iq_bank_size
            if iq_bank_counts[bank] == 0:
                iq.active_banks += 1
            iq_bank_counts[bank] += 1
            if waiting:
                iq.waiting_operand_count += len(waiting)
                for tag in waiting:
                    existing = iq_consumers.get(tag)
                    if existing is None:
                        iq_consumers[tag] = [iq_entry]
                    else:
                        existing.append(iq_entry)
            else:
                iq_ready_by_age[iq_age] = iq_entry
            iq_age += 1

            iq_entry_by_rob[rob_index] = iq_entry
            dispatched += 1
            if stats is not None:
                stats.dispatched_instructions += 1
                stats.iq_dispatch_writes += 1

        rob.count = rob_count
        rob.tail = rob_tail
        iq.count = iq_count
        iq.span = iq_span
        iq.tail = iq_tail
        iq._next_age = iq_age
        int_file._free_mask = int_free_mask
        int_file.free_count = int_free_count
        int_file.allocated = int_allocated
        if dispatched:
            self._sample_dirty = True
        if stats is not None:
            if stalled_on_region:
                stats.iq_dispatch_stall_cycles += 1
            if stalled_on_physical:
                stats.iq_full_stall_cycles += 1

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    def _fetch(self) -> None:
        if self._trace_exhausted:
            return
        if self._fetch_blocked_on_seq is not None:
            return
        cycle = self.cycle
        if cycle < self._fetch_resume_cycle:
            return

        config = self.config
        fetch_queue = self._fetch_queue
        queue_cap = config.fetch_queue_entries
        if len(fetch_queue) >= queue_cap:
            return
        trace = self._f_trace
        f_base = self._f_base
        f_limit = self._f_limit
        index = self._trace_pos
        pcs = trace.pc
        flags_arr = trace.flags
        append = fetch_queue.append
        warm = self._warmup_done
        stats = self.stats
        line_bytes = config.l1i.line_bytes
        decode_ready = cycle + config.decode_latency
        width = config.fetch_width
        last_line = self._last_fetch_line
        fetched = 0
        hints_fetched = 0
        while fetched < width and len(fetch_queue) < queue_cap:
            if index >= f_limit:
                if not self._advance_fetch_window():
                    self._trace_exhausted = True
                    break
                trace = self._f_trace
                f_base = self._f_base
                f_limit = self._f_limit
                pcs = trace.pc
                flags_arr = trace.flags
            rel = index - f_base
            pc = pcs[rel]
            flags = flags_arr[rel]
            if flags & F_HINT:
                hints_fetched += 1

            # Instruction-cache access per new line.
            line = pc // line_bytes
            if line != last_line:
                last_line = line
                latency, l1_hit, _ = self.memory.instruction_fetch_fast(pc)
                if warm:
                    stats.l1i_accesses += 1
                    if not l1_hit:
                        stats.l1i_misses += 1
                if not l1_hit:
                    self._fetch_resume_cycle = cycle + latency
                    append((index, decode_ready))
                    fetched += 1
                    # The missed line still delivers this instruction, so it
                    # must run branch prediction like any other: a branch
                    # fetched on a missed line can mispredict and block the
                    # front end past the miss itself.
                    if flags & F_CONTROL:
                        self._handle_control_flow(index, flags)
                    index += 1
                    break

            append((index, decode_ready))
            fetched += 1

            if flags & F_CONTROL and self._handle_control_flow(index, flags):
                index += 1
                break  # mispredicted: stop fetching this cycle
            index += 1
        self._trace_pos = index
        self._last_fetch_line = last_line
        if warm and fetched:
            stats.fetched_instructions += fetched
            stats.hint_noops_fetched += hints_fetched

    def _advance_fetch_window(self) -> bool:
        """Pull the next trace window in behind fetch; False at trace end."""
        window = self._stream.next_window()
        while window is not None and window.length == 0:
            window = self._stream.next_window()
        if window is None:
            return False
        self._win_queue.append(window)
        resident = len(self._win_queue) + 1
        if resident > self.max_resident_windows:
            self.max_resident_windows = resident
        self._f_trace = window
        self._f_base = self._f_limit
        self._f_limit += window.length
        return True

    def _handle_control_flow(self, index: int, flags: int) -> bool:
        """Run branch prediction for the instruction at ``index``.

        Returns True if fetch must stop (the transfer mispredicted).
        ``index`` is the global trace position; it always lies in the
        current fetch window (control flow is resolved at fetch).
        """
        trace = self._f_trace
        rel = index - self._f_base
        mispredicted = False
        if flags & F_BRANCH:
            if self._warmup_done:
                self.stats.branches += 1
            outcome = self.predictor.predict_and_update(
                trace.pc[rel], trace.taken[rel] != 0, trace.next_pc[rel]
            )
            mispredicted = not outcome.correct
            if mispredicted and self._warmup_done:
                self.stats.branch_mispredicts += 1
        elif flags & F_CALL:
            self.predictor.push_return_address(trace.pc[rel] + 4)
        elif flags & F_RET:
            correct = self.predictor.predict_return(trace.next_pc[rel])
            mispredicted = not correct
            if mispredicted and self._warmup_done:
                self.stats.ras_mispredicts += 1

        if mispredicted:
            self._fetch_blocked_on_seq = index
        return mispredicted

    # ------------------------------------------------------------------
    # Event-driven sampling
    # ------------------------------------------------------------------
    def _flush_sample(self) -> None:
        """Fold the previous snapshot over the cycles it stayed valid.

        Called at the end of any cycle in which a stage changed one of the
        six sampled quantities; cycles in between carried the unchanged
        snapshot, so the accumulated sums equal per-cycle sampling exactly.
        """
        cycle = self.cycle
        pending = cycle - self._sample_anchor
        if pending:
            stats = self.stats
            snap = self._sample_snapshot
            stats.sampled_cycles += pending
            stats.iq_occupancy_sum += snap[0] * pending
            stats.iq_waiting_operand_sum += snap[1] * pending
            stats.iq_banks_on_sum += snap[2] * pending
            stats.rf_banks_on_sum += snap[3] * pending
            stats.rf_live_regs_sum += snap[4] * pending
            stats.rf_inflight_sum += snap[5] * pending
        iq = self.iq
        int_file = self.rename.int_file
        policy = self.policy
        self._sample_snapshot = (
            iq.count,
            iq.waiting_operand_count,
            iq.active_banks if policy.iq_bank_gating else iq.num_banks,
            int_file.active_banks if policy.rf_bank_gating else int_file.num_banks,
            int_file.allocated,
            self.rob.count,
        )
        self._sample_anchor = cycle
        self._sample_dirty = False

    def _finalize_sample(self) -> None:
        """Account the trailing unchanged cycles at the end of the run.

        A flush folds ``[anchor, cycle)`` with the standing snapshot and
        re-anchors at the current cycle, which is exactly the trailing
        correction needed here (and also covers a dirty snapshot left by
        a caller driving stages manually).
        """
        if self._warmup_done:
            self._flush_sample()



@register_engine
class ScalarEngine(ReplayEngine):
    """The pure-Python reference kernel (``engine="scalar"``).

    A mechanical extraction of the pre-existing replay loop behind the
    engine interface: behaviour is frozen, and every other kernel is
    validated bit-for-bit against it.
    """

    name = "scalar"

    def build_core(
        self,
        trace,
        *,
        config=None,
        policy=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
        measure_instructions: Optional[int] = None,
    ) -> OutOfOrderCore:
        return OutOfOrderCore(
            trace,
            config=config,
            policy=policy,
            warmup_instructions=warmup_instructions,
            max_cycles=max_cycles,
            measure_instructions=measure_instructions,
        )
