"""Cycle-level out-of-order superscalar simulator.

This package is the reproduction's stand-in for SimpleScalar/Wattch: a
trace-driven, event-accurate timing model of the processor in table 1 of
the paper, extended with the small issue-queue changes of section 3
(``new_head`` pointer, ``max_new_range`` register, hint-NOOP stripping and
instruction tags).

Trace-replay architecture
-------------------------

Functional emulation is decoupled from the timing loop.  The committed
dynamic instruction stream of a (program, instruction-budget) pair is a
pure function of its inputs, so :mod:`repro.uarch.trace` runs the
:class:`~repro.uarch.emulator.FunctionalEmulator` **once**, lowers the
stream into a :class:`~repro.uarch.trace.DecodedTrace` — flat parallel
arrays of pc, next-pc, branch outcome, memory address and pre-decoded
timing attributes (classification flags, latency, functional-unit
ordinal, rename operand specs) — and the
:class:`~repro.uarch.core.OutOfOrderCore` *replays* those arrays by
index.  Decoded traces are memoised in-process and may be cached on disk
(:class:`~repro.uarch.trace.TraceCache`, content-addressed by program
text + budget + emulator source digest), so a (benchmark × technique)
grid emulates each benchmark once, not once per technique.

Instruction budgets above the decoded-trace window size (default
:data:`~repro.uarch.config.DEFAULT_TRACE_WINDOW_ENTRIES`, ~16k) stream:
the emulator's output is lowered into fixed-size windows
(:class:`~repro.uarch.trace.TraceWindowStream`), the disk cache stores
them independently addressable under one fingerprint, and the core
replays window by window with microarchitectural state carried across
boundaries — statistics are bit-identical to a monolithic replay while
peak decoded-trace memory stays bounded by the window size, which is
what makes 100k+ instruction budgets practical.

To force live emulation (bypassing the memo and the disk cache) pass
``live_emulation=True`` to :func:`~repro.uarch.core.simulate`, or set the
``REPRO_LIVE_EMULATION`` environment variable; the result is statistically
identical, just slower.  Feeding :class:`OutOfOrderCore` a plain iterable
of :class:`~repro.uarch.emulator.DynamicInstruction` also still works —
it is lowered into a ``DecodedTrace`` on construction.

Main entry points:

* :class:`~repro.uarch.config.ProcessorConfig` -- the machine description
  (``ProcessorConfig.hpca2005()`` is table 1).
* :class:`~repro.uarch.emulator.FunctionalEmulator` -- architectural
  execution of an IR program, producing the committed instruction stream.
* :class:`~repro.uarch.trace.DecodedTrace` / ``get_decoded_trace`` -- the
  pre-decoded replay arrays and their memo/cache front door.
* :class:`~repro.uarch.core.OutOfOrderCore` -- the timing model; pair it
  with a resizing policy from :mod:`repro.techniques` and run.
* :mod:`repro.uarch.engine` -- the pluggable replay kernels behind the
  timing loop: ``scalar`` (the reference) and ``columnar`` (numpy
  structured arrays, batched tag-vector writeback), bit-identical and
  selectable via ``engine=`` / ``REPRO_REPLAY_KERNEL``.
* :func:`~repro.uarch.core.simulate` -- convenience wrapper that wires the
  decoded trace, a replay engine, a policy and the statistics together.
"""

from repro.uarch.config import DEFAULT_TRACE_WINDOW_ENTRIES, ProcessorConfig
from repro.uarch.emulator import DynamicInstruction, EmulationLimitExceeded, FunctionalEmulator
from repro.uarch.stats import SimulationStats, merge_stats
from repro.uarch.trace import (
    DecodedTrace,
    TraceCache,
    TraceWindowStream,
    get_decoded_trace,
    get_trace_columns,
    get_trace_span_stream,
    get_trace_stream,
    trace_events,
)
from repro.uarch.core import OutOfOrderCore, simulate, simulate_span
from repro.uarch.engine import (
    ColumnarEngine,
    ReplayEngine,
    ScalarEngine,
    available_engines,
    get_engine,
    resolve_engine_name,
)

__all__ = [
    "DEFAULT_TRACE_WINDOW_ENTRIES",
    "ProcessorConfig",
    "DynamicInstruction",
    "EmulationLimitExceeded",
    "FunctionalEmulator",
    "SimulationStats",
    "merge_stats",
    "DecodedTrace",
    "TraceCache",
    "TraceWindowStream",
    "get_decoded_trace",
    "get_trace_columns",
    "get_trace_span_stream",
    "get_trace_stream",
    "trace_events",
    "OutOfOrderCore",
    "simulate",
    "simulate_span",
    "ReplayEngine",
    "ScalarEngine",
    "ColumnarEngine",
    "available_engines",
    "get_engine",
    "resolve_engine_name",
]
