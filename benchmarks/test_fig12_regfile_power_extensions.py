"""Figure 12: register-file power savings for Extension and Improved."""

from figure_report import report
from repro.harness.figures import figure12


def test_figure12_regfile_power_extensions(benchmark, runner):
    figure = benchmark.pedantic(figure12, args=(runner,), rounds=1, iterations=1)
    report(
        "Figure 12 - register-file power savings, Extension & Improved "
        "(paper: ~21-22% dyn / ~20-21% static, essentially unchanged vs. NOOP)",
        figure,
    )
    for series_name, values in figure.series.items():
        assert values["SPECINT"] > 0.0, series_name
    # Extension and Improved stay close to each other (the paper reports a
    # one-point spread).
    ext = figure.series["extension dynamic"]["SPECINT"]
    imp = figure.series["improved dynamic"]["SPECINT"]
    assert abs(ext - imp) < 10.0
