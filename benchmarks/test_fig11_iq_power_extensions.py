"""Figure 11: IQ power savings for the Extension and Improved techniques."""

from figure_report import report
from repro.harness.figures import figure11


def test_figure11_iq_power_extensions(benchmark, runner):
    figure = benchmark.pedantic(figure11, args=(runner,), rounds=1, iterations=1)
    report(
        "Figure 11 - IQ power savings, Extension & Improved (paper: 45% dyn / 30% "
        "static, only slightly below the NOOP scheme's 47%/31%)",
        figure,
    )
    noop_dynamic = runner.average("noop", "iq_dynamic_saving_pct")
    for series_name in ("extension dynamic", "improved dynamic"):
        value = figure.series[series_name]["SPECINT"]
        assert value > 20.0
        # The savings fall only slightly relative to the NOOP scheme.
        assert value > noop_dynamic - 10.0
    for series_name in ("extension static", "improved static"):
        assert figure.series[series_name]["SPECINT"] > 10.0
