"""The compiler's pseudo issue queue (section 4.2, figure 3).

"In the compiler we maintain a structure similar to the processor's issue
queue.  We place the first few instructions in this pseudo issue queue and
then iterate over it several times, removing instructions that are able to
issue, recording their writeback times and placing new ones at the tail."

The scheduler below reproduces that procedure: instructions issue as early
as their dependences, the issue width and the functional-unit counts allow;
each simulated cycle the oldest not-yet-issued instruction and the youngest
issuing instruction are identified and the distance between them (inclusive)
is the number of issue-queue entries that cycle needs.  The block's
requirement is the maximum over all cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cfg.ddg import DataDependenceGraph, build_ddg
from repro.core.config import CompilerConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass
from repro.isa.registers import Reg


@dataclass
class ScheduleResult:
    """Outcome of scheduling one instruction sequence on the pseudo queue.

    Attributes:
        entries_needed: maximum issue-queue entries required on any cycle so
            that no instruction is delayed beyond its dependence/resource
            constrained issue time.
        issue_cycle: per-instruction issue cycle.
        writeback_cycle: per-instruction writeback cycle (issue + latency).
        schedule_length: first cycle at which every instruction has issued.
        per_cycle_need: entries required on each cycle (diagnostics/tests).
        exit_latency: for each register written in the sequence, how many
            cycles after the schedule finishes its value becomes available
            (0 when already written back).  Used as the path summary
            threaded to successor blocks.
    """

    entries_needed: int
    issue_cycle: list[int]
    writeback_cycle: list[int]
    schedule_length: int
    per_cycle_need: list[int] = field(default_factory=list)
    exit_latency: dict[Reg, int] = field(default_factory=dict)


class PseudoIssueQueue:
    """Dependence- and resource-constrained scheduler for compiler analysis."""

    def __init__(self, config: CompilerConfig):
        self.config = config

    # ------------------------------------------------------------------
    def schedule(
        self,
        instructions: Sequence[Instruction],
        ddg: Optional[DataDependenceGraph] = None,
        entry_latency: Optional[dict[Reg, int]] = None,
    ) -> ScheduleResult:
        """Schedule ``instructions`` and compute the IQ entries they need.

        Args:
            instructions: the sequence in program order.  Hint NOOPs are
                ignored (they never occupy an IQ entry).
            ddg: a pre-built dependence graph over exactly these
                instructions; built on demand when omitted.
            entry_latency: availability delay of registers defined before
                the sequence starts (the conservative path summary).
        """
        work = [instr for instr in instructions if instr.occupies_iq]
        if not work:
            return ScheduleResult(
                entries_needed=0,
                issue_cycle=[],
                writeback_cycle=[],
                schedule_length=0,
            )

        if ddg is None or len(ddg.instructions) != len(work):
            ddg = build_ddg(work, include_loop_carried=False)
        entry_latency = dict(entry_latency or {})

        config = self.config
        count = len(work)
        issue_cycle = [-1] * count
        writeback_cycle = [0] * count
        issued = [False] * count
        remaining = count

        per_cycle_need: list[int] = []
        entries_needed = 0
        cycle = 0
        # Generous upper bound: every instruction serialised at max latency.
        cycle_limit = sum(config.instruction_latency(instr) for instr in work) + count + 16

        while remaining and cycle <= cycle_limit:
            oldest_remaining = next(i for i in range(count) if not issued[i])
            ready = self._ready_instructions(
                work, ddg, entry_latency, issued, writeback_cycle, cycle
            )
            selected = self._select(work, ready)
            if selected:
                youngest = max(selected)
                need = youngest - oldest_remaining + 1
                per_cycle_need.append(need)
                entries_needed = max(entries_needed, need)
                for index in selected:
                    issued[index] = True
                    issue_cycle[index] = cycle
                    writeback_cycle[index] = cycle + config.instruction_latency(work[index])
                    remaining -= 1
            else:
                per_cycle_need.append(0)
            cycle += 1

        schedule_length = cycle
        exit_latency = self._exit_latency(work, writeback_cycle, schedule_length)
        return ScheduleResult(
            entries_needed=entries_needed,
            issue_cycle=issue_cycle,
            writeback_cycle=writeback_cycle,
            schedule_length=schedule_length,
            per_cycle_need=per_cycle_need,
            exit_latency=exit_latency,
        )

    # ------------------------------------------------------------------
    def _ready_instructions(
        self,
        work: list[Instruction],
        ddg: DataDependenceGraph,
        entry_latency: dict[Reg, int],
        issued: list[bool],
        writeback_cycle: list[int],
        cycle: int,
    ) -> list[int]:
        """Indices of unissued instructions whose dependences are satisfied."""
        ready: list[int] = []
        for index, instr in enumerate(work):
            if issued[index]:
                continue
            # Values defined before the region must have arrived.
            if any(entry_latency.get(reg, 0) > cycle for reg in instr.srcs):
                continue
            ok = True
            for edge in ddg.preds[index]:
                if edge.distance != 0:
                    continue
                if not issued[edge.src] or writeback_cycle[edge.src] > cycle:
                    ok = False
                    break
            if ok:
                ready.append(index)
        return ready

    def _select(self, work: list[Instruction], ready: list[int]) -> list[int]:
        """Apply issue-width and functional-unit constraints, oldest first."""
        config = self.config
        selected: list[int] = []
        fu_used: dict[FuClass, int] = {}
        for index in ready:
            if len(selected) >= config.issue_width:
                break
            fu = work[index].fu_class
            limit = config.fu_counts.get(fu, config.issue_width)
            if fu_used.get(fu, 0) >= limit:
                continue
            fu_used[fu] = fu_used.get(fu, 0) + 1
            selected.append(index)
        return selected

    def _exit_latency(
        self,
        work: list[Instruction],
        writeback_cycle: list[int],
        schedule_length: int,
    ) -> dict[Reg, int]:
        """Availability delay of each written register relative to block exit."""
        exit_latency: dict[Reg, int] = {}
        for index, instr in enumerate(work):
            for reg in instr.dests:
                exit_latency[reg] = max(0, writeback_cycle[index] - schedule_length)
        return exit_latency
