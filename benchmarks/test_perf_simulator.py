"""Micro-benchmark: simulator hot-path throughput in cycles per second.

Records how many machine cycles the timing model simulates per wall-clock
second on the gzip baseline run, so successive PRs have a performance
trajectory for the per-cycle hot path (issue select, wakeup broadcast,
dispatch, fetch).  Since PR 5 the trajectory is **per replay engine**
(:mod:`repro.uarch.engine`): each kernel gets its own cold/warm entry in
``BENCH_trace.json`` and its own floor.  Two rates are measured per
engine:

* **cold** — a fresh in-process trace memo and an empty on-disk trace
  cache, with the **windowed streaming path on** (the budget is split
  across several trace windows), so the measured time includes one
  functional emulation, the per-window pre-decode, the windowed cache
  store and the timed window-by-window replay;
* **warm** — the decoded trace already memoised, so the measured time is
  the replay core alone (the steady state of a grid run).

Reference points on the development machine (1-core container):

* pre-optimisation seed: ~17.4k cycles/s
* PR 1 (incremental ready-set + batched writeback + deque front end):
  ~24.7k cycles/s (1.42x)
* PR 2 (trace pre-decode & replay, pre-compiled emulator specs, bitmask
  rename free-list, event-driven sampling, pooled ROB/IQ entries):
  ~58k cycles/s cold / ~69k cycles/s warm (2.3x / 2.8x over PR 1)
* PR 3 (windowed trace decode & streaming replay; the cold run streams
  the 12k budget through 4k-instruction windows): rates within noise of
  PR 2 — windowing bounds decode memory without giving back throughput.
* PR 5 (replay-engine architecture): the scalar kernel is the extracted
  PR 3 loop, rates unchanged; the new columnar (numpy structured-array)
  kernel measures ~33k cycles/s cold / ~37k warm on this container
  (exact values in the trajectory file's per-engine entries) — at
  table-1 machine sizes (80-entry IQ, ≤8 wakeups/cycle) the per-cycle
  fixed cost of the batched tag-vector pass outweighs what it saves
  over the consumer-list scalar path, an honestly-recorded finding the
  ROADMAP tracks for wider-machine configurations.
* PR 10 (native compiled kernel): the lazily-compiled C replay kernel
  (:mod:`repro.uarch.engine.native`) measures ~280k cycles/s cold /
  ~2.2M warm on this container — ~5.4x / ~35x the scalar rates.  The
  warm (replay-only) multiple clears the ROADMAP's 10x "Python
  ceiling" target more than threefold; the cold multiple is smaller
  because a cold run still pays the Python-side functional emulation
  and per-window pre-decode, which the C loop turns from a minor cost
  into the dominant one (Amdahl, as expected — the ROADMAP tracks
  decode as the next ceiling).

The assertions below are loose floors (about half the measured cold
rate per kernel) so the bench fails only on a genuine hot-path
regression, not on machine noise.  The scalar floor stays at the
≥29k cycles/s the earlier PRs established.  Each run appends both
rates for each engine to ``BENCH_trace.json`` next to this file,
giving later PRs a machine-readable perf history.  The wide-machine
cross-over study (where columnar's batched CAM pass beats the scalar
consumer-list walk) lives in ``test_perf_crossover.py``.
"""

from __future__ import annotations

import gc
import json
import socket
import time
from pathlib import Path

import pytest

from repro.techniques import BaselinePolicy
from repro.telemetry import trend
from repro.uarch import simulate
from repro.uarch.engine import (
    native_available,
    numpy_available,
    resolve_engine_name,
)
from repro.uarch.trace import clear_trace_memo
from repro.workloads import build_benchmark

MAX_INSTRUCTIONS = 12_000
#: Cold runs stream through windows this size (3 windows for the 12k
#: budget), so the floors below are enforced with windowed replay on.
TRACE_WINDOW = 4_096
#: Per-engine floors, ~50% of the cold rate measured on the 1-core dev
#: container so only a genuine regression (not noise) trips them.  The
#: scalar floor is the long-standing ≥29k (comfortably above the PR 1
#: steady state, so losing the replay speedup still fails).
MIN_CYCLES_PER_SECOND = {
    "scalar": 29_000.0,
    "columnar": 15_000.0,
    # The native C kernel measures ~280k cold / ~2.2M warm here; the
    # floor is ~half the cold rate (and well above any Python kernel)
    # so it trips on "the C fast path silently fell back to something
    # interpreted", not on container noise.
    "native": 150_000.0,
}
#: PR 1 reference rate the ISSUE's 2x target is measured against.
PR1_REFERENCE_CYCLES_PER_SECOND = 24_700.0

ENGINES = (
    ("scalar",)
    + (("columnar",) if numpy_available() else ())
    + (("native",) if native_available() else ())
)

TRAJECTORY_FILE = Path(__file__).with_name("BENCH_trace.json")
TRAJECTORY_LIMIT = 200
#: Schema version of trajectory entries stamped since PR 9; older
#: unstamped entries still parse (``repro.telemetry.trend`` defaults
#: their engine/kind) — the stamp just makes provenance explicit.
TRAJECTORY_FORMAT = 1


def _record_trajectory(entry: dict) -> None:
    """Append ``entry`` to the BENCH_trace.json perf history (bounded).

    Every entry is stamped with the schema ``format``, the recording
    ``host`` and (unless the caller set one) the engine label, so a
    trajectory merged across machines stays attributable.
    """
    entry.setdefault("format", TRAJECTORY_FORMAT)
    entry.setdefault("host", socket.gethostname())
    entry.setdefault("engine", resolve_engine_name(None))
    history: list[dict] = []
    try:
        history = json.loads(TRAJECTORY_FILE.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            history = []
    except (FileNotFoundError, json.JSONDecodeError):
        history = []
    history.append(entry)
    TRAJECTORY_FILE.write_text(
        json.dumps(history[-TRAJECTORY_LIMIT:], indent=2) + "\n", encoding="utf-8"
    )


def _timed_simulate(engine: str, **kwargs) -> tuple[int, float]:
    program = build_benchmark("gzip")
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        stats = simulate(
            program,
            BaselinePolicy(),
            max_instructions=MAX_INSTRUCTIONS,
            engine=engine,
            **kwargs,
        )
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return stats.cycles, elapsed


@pytest.mark.parametrize("engine", ENGINES)
def test_simulator_cycle_throughput(benchmark, tmp_path, engine):
    # Warm the generator and module state so the bench isolates the
    # emulate+decode+replay pipeline, and spin the CPU up to steady state
    # (the container throttles hard from idle).
    build_benchmark("gzip")
    for _ in range(2):
        simulate(
            build_benchmark("gzip"),
            BaselinePolicy(),
            max_instructions=MAX_INSTRUCTIONS,
            live_emulation=True,
            engine=engine,
        )

    trace_dir = tmp_path / "trace-cache"
    cold_rates: list[float] = []
    cycles_holder: list[int] = []

    def _cold_run() -> tuple[int, float]:
        # A fresh memo and a fresh cache directory every round: the timed
        # region covers emulation, per-window pre-decode, the windowed
        # cache store and the streaming window-by-window replay.
        clear_trace_memo()
        round_dir = trace_dir / str(len(cold_rates))
        cycles, elapsed = _timed_simulate(
            engine, trace_cache=str(round_dir), trace_window=TRACE_WINDOW
        )
        cold_rates.append(cycles / elapsed)
        cycles_holder.append(cycles)
        return cycles, elapsed

    benchmark.pedantic(_cold_run, rounds=5, iterations=1)
    cycles = cycles_holder[-1]
    cold_rate = max(cold_rates)

    # Steady state: the decoded trace is memoised, only the core replays.
    warm_rates = []
    for _ in range(5):
        warm_cycles, warm_elapsed = _timed_simulate(engine)
        warm_rates.append(warm_cycles / warm_elapsed)
    warm_rate = max(warm_rates)

    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["cycles_simulated"] = cycles
    benchmark.extra_info["cycles_per_second"] = round(cold_rate)
    benchmark.extra_info["cycles_per_second_warm"] = round(warm_rate)
    benchmark.extra_info["speedup_vs_pr1_cold"] = round(
        cold_rate / PR1_REFERENCE_CYCLES_PER_SECOND, 2
    )
    _record_trajectory(
        {
            "timestamp": time.time(),
            "engine": engine,
            "max_instructions": MAX_INSTRUCTIONS,
            "trace_window": TRACE_WINDOW,
            "cycles": cycles,
            "cycles_per_second_cold": round(cold_rate),
            "cycles_per_second_warm": round(warm_rate),
        }
    )
    print(
        f"\n  [{engine}] simulated {cycles} cycles at {cold_rate:,.0f}/s cold "
        f"(trace cache+emulation) and {warm_rate:,.0f}/s warm (replay only); "
        f"{cold_rate / PR1_REFERENCE_CYCLES_PER_SECOND:.2f}x the PR 1 reference"
    )
    floor = MIN_CYCLES_PER_SECOND[engine]
    assert cycles > 0
    assert cold_rate > floor
    assert warm_rate > floor

    # Perf-trajectory gate (PR 9): beyond the absolute floors above, the
    # sample just recorded must sit inside the MAD noise band of this
    # engine's own history.  A too-short history gates as None, not fail.
    for series_key in (f"engine/{engine}/cold", f"engine/{engine}/warm"):
        evaluation = trend.gate_series(series_key, TRAJECTORY_FILE)
        assert evaluation is None or evaluation["regressed"] is not True, (
            f"perf trajectory regression on {series_key}: "
            f"latest {evaluation['latest']:,.1f} vs median "
            f"{evaluation['median']:,.1f} "
            f"(tolerance {evaluation['tolerance']:,.1f}); see "
            f"python -m repro.telemetry.trend"
        )
