"""The out-of-order pipeline driver.

A trace-driven, cycle-level model of the processor in table 1: the
functional emulator supplies the committed dynamic instruction stream and
this core times it through fetch, decode, rename/dispatch, issue, execute,
writeback and commit, modelling the issue queue, reorder buffer, physical
register files, functional units, caches and branch prediction.

Deviation from an execute-driven simulator (documented in DESIGN.md): the
wrong path after a branch misprediction is not fetched; instead the front
end stalls until the mispredicted branch resolves and then pays a redirect
penalty.  All quantities the paper reports (IPC deltas, queue occupancy,
wakeup activity, bank usage, register lifetime) are preserved by this
simplification because wrong-path instructions never commit and the stall
time equals the resolution delay either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.isa.opcodes import FuClass, Opcode
from repro.uarch.branch import HybridBranchPredictor
from repro.uarch.cache import MemoryHierarchy
from repro.uarch.config import ProcessorConfig
from repro.uarch.emulator import DynamicInstruction, FunctionalEmulator
from repro.uarch.functional_units import FunctionalUnitPool
from repro.uarch.issue_queue import BankedIssueQueue, IssueQueueEntry
from repro.uarch.regfile import RenameUnit
from repro.uarch.rob import ReorderBuffer, RobEntry
from repro.uarch.stats import SimulationStats


@dataclass
class _FetchQueueEntry:
    """An instruction sitting in the fetch/decode queue."""

    dyn: DynamicInstruction
    decode_ready_cycle: int


class OutOfOrderCore:
    """Cycle-level timing model driven by a dynamic instruction stream."""

    def __init__(
        self,
        trace: Iterable[DynamicInstruction],
        config: Optional[ProcessorConfig] = None,
        policy=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
    ):
        self.config = config or ProcessorConfig.hpca2005()
        self.config.validate()
        if policy is None:
            from repro.techniques.fixed import BaselinePolicy

            policy = BaselinePolicy()
        self.policy = policy
        self.warmup_instructions = warmup_instructions
        self.max_cycles = max_cycles

        self._trace: Iterator[DynamicInstruction] = iter(trace)
        self._trace_exhausted = False

        cfg = self.config
        self.stats = SimulationStats(
            iq_banks_total=cfg.iq_banks, rf_banks_total=cfg.int_regfile_banks
        )
        self.iq = BankedIssueQueue(cfg.iq_entries, cfg.iq_bank_size)
        self.rob = ReorderBuffer(cfg.rob_entries)
        self.rename = RenameUnit(cfg.int_phys_regs, cfg.fp_phys_regs, cfg.regfile_bank_size)
        self.fus = FunctionalUnitPool(cfg.fu_counts)
        self.memory = MemoryHierarchy(cfg)
        self.predictor = HybridBranchPredictor(cfg.branch)

        total_tags = cfg.int_phys_regs + cfg.fp_phys_regs
        self._tag_ready = bytearray([1] * total_tags)

        self.cycle = 0
        self._fetch_queue: deque[_FetchQueueEntry] = deque()
        self._completion_events: dict[int, list[RobEntry]] = {}
        self._iq_entry_by_rob: dict[int, IssueQueueEntry] = {}

        # Front-end stall state.
        self._fetch_blocked_on_seq: Optional[int] = None
        self._fetch_resume_cycle = 0
        self._last_fetch_line: Optional[int] = None

        self._warmup_done = warmup_instructions == 0
        self._committed_total = 0

        self.policy.on_simulation_start(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Simulate until the trace drains (or ``max_cycles`` is hit)."""
        safety_limit = self.max_cycles
        while not self._finished():
            self.step()
            if safety_limit is not None and self.cycle >= safety_limit:
                break
        return self.stats

    def step(self) -> None:
        """Advance the machine by one cycle (back-to-front stage order)."""
        self.fus.new_cycle()
        self._commit()
        self._writeback()
        self._issue()
        self._dispatch()
        self._fetch()
        self._sample()
        self.policy.on_cycle_end(self)
        self.cycle += 1
        self.stats.cycles = self.cycle if self._warmup_done else 0

    # ------------------------------------------------------------------
    def _finished(self) -> bool:
        return (
            self._trace_exhausted
            and not self._fetch_queue
            and self.rob.is_empty
        )

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        committed = 0
        while committed < self.config.commit_width:
            entry = self.rob.commit_ready()
            if entry is None:
                break
            self.rob.commit()
            for tag in entry.freed_on_commit:
                self.rename.release(tag)
            committed += 1
            self._committed_total += 1
            if self._warmup_done:
                self.stats.committed_instructions += 1
                self.stats.committed_micro_ops += 1
            elif self._committed_total >= self.warmup_instructions:
                self._end_warmup()

    def _end_warmup(self) -> None:
        """Reset measurement counters at the end of the warm-up period.

        The measurement clock restarts at zero, so every piece of in-flight
        timing state expressed in absolute cycles — pending completion
        events, issue-queue ready cycles, fetch-queue decode times and the
        front-end resume cycle — is rebased into the new time base.
        Without the rebase, instructions in flight at the warm-up boundary
        would complete only when the new clock caught up with their old
        absolute completion cycles, stalling the machine for roughly the
        whole warm-up duration.
        """
        self._warmup_done = True
        preserved = SimulationStats(
            iq_banks_total=self.stats.iq_banks_total,
            rf_banks_total=self.stats.rf_banks_total,
        )
        self.stats = preserved
        shift = self.cycle
        self.cycle = 0
        if shift:
            self._completion_events = {
                cycle - shift: entries
                for cycle, entries in self._completion_events.items()
            }
            for iq_entry in self._iq_entry_by_rob.values():
                iq_entry.ready_cycle -= shift
            for fetch_entry in self._fetch_queue:
                fetch_entry.decode_ready_cycle -= shift
            self._fetch_resume_cycle -= shift
        self.policy.on_measurement_start(self, shift)

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------
    def _writeback(self) -> None:
        finishing = self._completion_events.pop(self.cycle, None)
        if not finishing:
            return
        iq = self.iq
        tag_ready = self._tag_ready
        int_phys = self.config.int_phys_regs
        broadcasts = 0
        cmp_gated = 0
        rf_writes = 0
        for entry in finishing:
            self.rob.mark_completed(entry, self.cycle)
            for tag in entry.dest_tags:
                if tag < int_phys:
                    rf_writes += 1
                tag_ready[tag] = 1
                broadcasts += 1
                # The gated comparator count is the number of waiting
                # operands at the instant of this broadcast, so it must be
                # sampled before each wakeup, not once per writeback group.
                cmp_gated += iq.waiting_operand_count
                iq.broadcast(tag)
            # Resolve a front-end block if this was the mispredicted branch.
            if (
                self._fetch_blocked_on_seq is not None
                and entry.dyn is not None
                and entry.dyn.seq == self._fetch_blocked_on_seq
            ):
                self._fetch_blocked_on_seq = None
                # An I-miss on the blocked line may already hold fetch past
                # the redirect: the front end resumes at the later of the
                # two, never earlier.
                self._fetch_resume_cycle = max(
                    self._fetch_resume_cycle,
                    self.cycle + self.config.branch_mispredict_penalty,
                )
        if self._warmup_done and broadcasts:
            self.rename.int_file.record_writes(rf_writes)
            stats = self.stats
            stats.rf_writes += rf_writes
            stats.iq_broadcasts += broadcasts
            stats.iq_cmp_full += broadcasts * iq.cmp_full_per_broadcast
            stats.iq_cmp_gated += cmp_gated

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------
    def _issue(self) -> None:
        ready = self.iq.ready_entries_in_age_order()
        if not ready:
            return
        issued = 0
        cycle = self.cycle
        width = self.config.issue_width
        int_phys = self.config.int_phys_regs
        fus = self.fus
        rob_entries = self.rob.entries
        completion_events = self._completion_events
        rf_reads = 0
        for entry in ready:
            if issued >= width:
                break
            if entry.ready_cycle > cycle:
                continue
            if not fus.try_acquire(entry.fu_class):
                continue
            rob_entry = rob_entries[entry.rob_index]
            self.iq.remove(entry)
            del self._iq_entry_by_rob[entry.rob_index]
            self.rob.mark_issued(rob_entry)
            issued += 1
            for tag in rob_entry.source_tags:
                if tag < int_phys:
                    rf_reads += 1
            latency = self._execution_latency(rob_entry.dyn)
            finish = cycle + (latency if latency > 1 else 1)
            completion_events.setdefault(finish, []).append(rob_entry)
        if issued and self._warmup_done:
            self.rename.int_file.record_reads(rf_reads)
            stats = self.stats
            stats.issued_instructions += issued
            stats.iq_issue_reads += issued
            stats.rf_reads += rf_reads

    def _execution_latency(self, dyn: DynamicInstruction) -> int:
        instr = dyn.static
        if instr.is_load:
            result = self.memory.data_access(dyn.mem_address or 0)
            if self._warmup_done:
                self.stats.l1d_accesses += 1
                if not result.l1_hit:
                    self.stats.l1d_misses += 1
                self.stats.l2_accesses += 0 if result.l1_hit else 1
                if not result.l2_hit:
                    self.stats.l2_misses += 1
            return instr.latency + result.latency
        if instr.is_store:
            self.memory.data_access(dyn.mem_address or 0)
            if self._warmup_done:
                self.stats.l1d_accesses += 1
            return instr.latency
        return instr.latency

    # ------------------------------------------------------------------
    # Dispatch (rename + issue-queue/ROB allocation)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        fetch_queue = self._fetch_queue
        if not fetch_queue:
            return
        dispatched = 0
        stalled_on_region = False
        stalled_on_physical = False
        cycle = self.cycle
        width = self.config.dispatch_width
        policy = self.policy
        uses_hints = policy.uses_hints
        tag_ready = self._tag_ready
        stats = self.stats if self._warmup_done else None
        while dispatched < width and fetch_queue:
            head = fetch_queue[0]
            if head.decode_ready_cycle > cycle:
                break
            instr = head.dyn.static

            # The paper's special NOOP: stripped in the last decode stage.
            # It consumes a dispatch slot (the source of the NOOP scheme's
            # small IPC cost) but never reaches the issue queue.
            if instr.is_hint:
                if uses_hints:
                    policy.on_hint(self, instr.hint_value)
                fetch_queue.popleft()
                dispatched += 1
                if stats is not None:
                    stats.hint_noops_stripped += 1
                continue
            if instr.opcode is Opcode.NOP:
                fetch_queue.popleft()
                dispatched += 1
                continue

            # Tag-carried hints (Extension/Improved) cost no dispatch slot.
            if uses_hints and instr.iq_tag is not None:
                policy.on_hint(self, instr.iq_tag)
                if stats is not None:
                    stats.tagged_instructions_seen += 1
                # Policy hooks may toggle warm-up-independent state only, so
                # the cached stats reference stays valid across the call.

            if not self.rob.can_allocate():
                break
            if not self.rename.can_rename(instr):
                break
            ok, reason = self.iq.can_dispatch()
            if not ok:
                if reason in ("region_limit", "global_limit"):
                    stalled_on_region = True
                else:
                    stalled_on_physical = True
                break

            fetch_queue.popleft()
            renamed = self.rename.rename(instr)
            for tag in renamed.dest_tags:
                tag_ready[tag] = 0

            rob_entry = self.rob.allocate(head.dyn)
            rob_entry.dest_tags = renamed.dest_tags
            rob_entry.freed_on_commit = renamed.freed_on_commit
            rob_entry.source_tags = renamed.source_tags

            waiting = {tag for tag in renamed.source_tags if not tag_ready[tag]}
            iq_entry = self.iq.allocate(
                rob_index=rob_entry.index,
                waiting_tags=waiting,
                num_source_operands=len(renamed.source_tags),
                fu_class=instr.fu_class,
                ready_cycle=cycle + 1,
            )
            self._iq_entry_by_rob[rob_entry.index] = iq_entry
            dispatched += 1
            if stats is not None:
                stats.dispatched_instructions += 1
                stats.iq_dispatch_writes += 1

        if stats is not None:
            if stalled_on_region:
                stats.iq_dispatch_stall_cycles += 1
            if stalled_on_physical:
                stats.iq_full_stall_cycles += 1

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    def _fetch(self) -> None:
        if self._trace_exhausted:
            return
        if self._fetch_blocked_on_seq is not None:
            return
        if self.cycle < self._fetch_resume_cycle:
            return

        fetched = 0
        line_bytes = self.config.l1i.line_bytes
        while (
            fetched < self.config.fetch_width
            and len(self._fetch_queue) < self.config.fetch_queue_entries
        ):
            dyn = self._next_trace_entry()
            if dyn is None:
                break
            if self._warmup_done:
                self.stats.fetched_instructions += 1
                if dyn.is_hint:
                    self.stats.hint_noops_fetched += 1

            # Instruction-cache access per new line.
            line = dyn.pc // line_bytes
            if line != self._last_fetch_line:
                self._last_fetch_line = line
                result = self.memory.instruction_fetch(dyn.pc)
                if self._warmup_done:
                    self.stats.l1i_accesses += 1
                    if not result.l1_hit:
                        self.stats.l1i_misses += 1
                if not result.l1_hit:
                    self._fetch_resume_cycle = self.cycle + result.latency
                    self._fetch_queue.append(
                        _FetchQueueEntry(dyn, self.cycle + self.config.decode_latency)
                    )
                    fetched += 1
                    # The missed line still delivers this instruction, so it
                    # must run branch prediction like any other: a branch
                    # fetched on a missed line can mispredict and block the
                    # front end past the miss itself.
                    self._handle_control_flow(dyn)
                    break

            self._fetch_queue.append(
                _FetchQueueEntry(dyn, self.cycle + self.config.decode_latency)
            )
            fetched += 1

            if self._handle_control_flow(dyn):
                break  # mispredicted: stop fetching this cycle

    def _next_trace_entry(self) -> Optional[DynamicInstruction]:
        try:
            return next(self._trace)
        except StopIteration:
            self._trace_exhausted = True
            return None

    def _handle_control_flow(self, dyn: DynamicInstruction) -> bool:
        """Run branch prediction for ``dyn``; return True if fetch must stop."""
        instr = dyn.static
        mispredicted = False
        if instr.is_branch:
            if self._warmup_done:
                self.stats.branches += 1
            outcome = self.predictor.predict_and_update(dyn.pc, dyn.taken, dyn.next_pc)
            mispredicted = not outcome.correct
            if mispredicted and self._warmup_done:
                self.stats.branch_mispredicts += 1
        elif instr.is_call:
            self.predictor.push_return_address(dyn.pc + 4)
        elif instr.is_return:
            correct = self.predictor.predict_return(dyn.next_pc)
            mispredicted = not correct
            if mispredicted and self._warmup_done:
                self.stats.ras_mispredicts += 1

        if mispredicted:
            self._fetch_blocked_on_seq = dyn.seq
        return mispredicted

    # ------------------------------------------------------------------
    # Per-cycle sampling
    # ------------------------------------------------------------------
    def _sample(self) -> None:
        if not self._warmup_done:
            return
        stats = self.stats
        stats.sampled_cycles += 1
        stats.iq_occupancy_sum += self.iq.occupancy
        stats.iq_waiting_operand_sum += self.iq.waiting_operand_count
        stats.iq_banks_on_sum += self.iq.enabled_banks(self.policy.iq_bank_gating)
        stats.rf_banks_on_sum += self.rename.int_file.enabled_banks(
            self.policy.rf_bank_gating
        )
        stats.rf_live_regs_sum += self.rename.int_file.allocated
        stats.rf_inflight_sum += self.rob.occupancy


def simulate(
    program,
    policy=None,
    config: Optional[ProcessorConfig] = None,
    max_instructions: int = 20_000,
    warmup_instructions: int = 0,
    max_cycles: Optional[int] = None,
) -> SimulationStats:
    """Convenience wrapper: emulate ``program`` and time it under ``policy``.

    Args:
        program: an IR :class:`~repro.isa.program.Program`.
        policy: a resizing policy from :mod:`repro.techniques`
            (baseline full-size queue when omitted).
        config: processor configuration (table 1 when omitted).
        max_instructions: dynamic instruction budget for the emulator.
        warmup_instructions: committed instructions to run before statistics
            start accumulating (cache/predictor warm-up).
        max_cycles: optional safety cap on simulated cycles.

    Returns:
        The populated :class:`~repro.uarch.stats.SimulationStats`.
    """
    emulator = FunctionalEmulator(program)
    trace = emulator.run(max_instructions=max_instructions)
    core = OutOfOrderCore(
        trace,
        config=config,
        policy=policy,
        warmup_instructions=warmup_instructions,
        max_cycles=max_cycles,
    )
    return core.run()
