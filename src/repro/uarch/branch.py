"""Branch prediction: hybrid gshare/bimodal predictor, BTB and return stack.

Table 1: "Hybrid 2K gshare, 2K bimodal, 1K selector" with a 2048-entry
4-way BTB.  The simulator is trace-driven, so prediction is consulted for
its *accuracy* (a mispredicted branch blocks fetch until it resolves); the
wrong path itself is not executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import BranchPredictorConfig


def _counter_update(counter: int, taken: bool) -> int:
    """Saturating 2-bit counter update."""
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


@dataclass
class PredictionOutcome:
    """Result of one branch prediction.

    Attributes:
        predicted_taken: the hybrid predictor's direction guess.
        btb_hit: True when the BTB knew the target.
        correct: True when direction (and target, for taken branches) were right.
    """

    predicted_taken: bool
    btb_hit: bool
    correct: bool


class HybridBranchPredictor:
    """gshare + bimodal with a selector table, plus BTB and return-address stack."""

    def __init__(self, config: BranchPredictorConfig | None = None):
        self.config = config or BranchPredictorConfig()
        cfg = self.config
        self._gshare = [1] * cfg.gshare_entries
        self._bimodal = [1] * cfg.bimodal_entries
        self._selector = [1] * cfg.selector_entries  # >=2 prefers gshare
        self._history = 0
        self._history_mask = (1 << cfg.history_bits) - 1
        # BTB: maps set index to a list of (tag, target) with LRU order.
        self._btb_sets = max(1, cfg.btb_entries // cfg.btb_assoc)
        self._btb: list[list[tuple[int, int]]] = [[] for _ in range(self._btb_sets)]
        self._ras: list[int] = []

        self.lookups = 0
        self.mispredicts = 0

    # ------------------------------------------------------------------
    def predict_and_update(self, pc: int, taken: bool, target: int) -> PredictionOutcome:
        """Predict the branch at ``pc`` and immediately train on the outcome.

        Trace-driven use: the actual outcome is known, so prediction and
        update happen together.  Returns whether the prediction was correct.
        """
        cfg = self.config
        self.lookups += 1

        gshare_index = (pc ^ self._history) % cfg.gshare_entries
        bimodal_index = pc % cfg.bimodal_entries
        selector_index = pc % cfg.selector_entries

        gshare_taken = self._gshare[gshare_index] >= 2
        bimodal_taken = self._bimodal[bimodal_index] >= 2
        use_gshare = self._selector[selector_index] >= 2
        predicted_taken = gshare_taken if use_gshare else bimodal_taken

        btb_hit = self._btb_lookup(pc) == target if taken else True
        correct = predicted_taken == taken and (not taken or btb_hit or predicted_taken is False)
        # A taken branch predicted taken but with an unknown/incorrect target
        # still redirects the front end: count it as incorrect.
        if taken and predicted_taken and not btb_hit:
            correct = False

        # Train.
        self._gshare[gshare_index] = _counter_update(self._gshare[gshare_index], taken)
        self._bimodal[bimodal_index] = _counter_update(self._bimodal[bimodal_index], taken)
        if gshare_taken != bimodal_taken:
            self._selector[selector_index] = _counter_update(
                self._selector[selector_index], gshare_taken == taken
            )
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        if taken:
            self._btb_insert(pc, target)
        if not correct:
            self.mispredicts += 1
        return PredictionOutcome(predicted_taken=predicted_taken, btb_hit=btb_hit, correct=correct)

    # ------------------------------------------------------------------
    # Return-address stack
    # ------------------------------------------------------------------
    def push_return_address(self, return_pc: int) -> None:
        """Record the return address of a call."""
        self._ras.append(return_pc)
        if len(self._ras) > self.config.ras_entries:
            self._ras.pop(0)

    def predict_return(self, actual_return_pc: int) -> bool:
        """Pop the RAS and report whether it matched the actual return target."""
        self.lookups += 1
        if not self._ras:
            self.mispredicts += 1
            return False
        predicted = self._ras.pop()
        correct = predicted == actual_return_pc
        if not correct:
            self.mispredicts += 1
        return correct

    # ------------------------------------------------------------------
    # BTB helpers
    # ------------------------------------------------------------------
    def _btb_lookup(self, pc: int) -> int | None:
        entry_set = self._btb[pc % self._btb_sets]
        for tag, target in entry_set:
            if tag == pc:
                return target
        return None

    def _btb_insert(self, pc: int, target: int) -> None:
        entry_set = self._btb[pc % self._btb_sets]
        for position, (tag, _) in enumerate(entry_set):
            if tag == pc:
                entry_set.pop(position)
                break
        entry_set.insert(0, (pc, target))
        if len(entry_set) > self.config.btb_assoc:
            entry_set.pop()
