"""Processor configuration (table 1 of the paper).

Every structure the timing simulator models is parameterised here so that
ablation studies (bank size, queue capacity, cache sizes, abella interval)
only touch configuration, never simulator code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import FuClass

#: Default decoded-trace window size, in dynamic instructions, for the
#: streaming replay path (:mod:`repro.uarch.trace`).  Budgets at or below
#: this size replay monolithically; larger budgets are lowered window by
#: window so peak decoded-trace memory is bounded by the window, not the
#: instruction budget.  A transport/memory knob only: simulation
#: statistics are bit-identical for every window size (including 1), so it
#: never participates in cache fingerprints.  Override per run via the
#: ``trace_window`` arguments or the ``REPRO_TRACE_WINDOW`` environment
#: variable.
DEFAULT_TRACE_WINDOW_ENTRIES = 16_384


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes:
        name: label used in statistics.
        size_bytes: total capacity.
        assoc: set associativity.
        line_bytes: line size.
        hit_latency: access time in cycles on a hit.
    """

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the geometry."""
        return max(1, self.size_bytes // (self.line_bytes * self.assoc))


@dataclass
class BranchPredictorConfig:
    """Hybrid predictor configuration (table 1)."""

    gshare_entries: int = 2048
    bimodal_entries: int = 2048
    selector_entries: int = 1024
    history_bits: int = 11
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_entries: int = 16


@dataclass
class ProcessorConfig:
    """The full machine description.

    The defaults are the paper's table 1 plus the handful of parameters the
    paper inherits from SimpleScalar without restating (memory ports, fetch
    queue depth, decode depth, memory latency beyond L2).
    """

    # Widths.
    fetch_width: int = 8
    decode_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8

    # Front end.
    fetch_queue_entries: int = 32
    decode_latency: int = 3
    branch_mispredict_penalty: int = 2  # redirect cycles after resolution

    # Windows.
    rob_entries: int = 128
    iq_entries: int = 80
    iq_bank_size: int = 8

    # Register files: 112 integer and 112 FP physical registers, 14 banks of 8.
    int_phys_regs: int = 112
    fp_phys_regs: int = 112
    regfile_bank_size: int = 8

    # Functional units (table 1) plus 2 memory ports (SimpleScalar default).
    fu_counts: dict[FuClass, int] = field(
        default_factory=lambda: {
            FuClass.INT_ALU: 6,
            FuClass.INT_MUL: 3,
            FuClass.FP_ALU: 4,
            FuClass.FP_MULDIV: 2,
            FuClass.MEM_PORT: 2,
            FuClass.NONE: 64,
        }
    )

    # Memory hierarchy.
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("l1i", 64 * 1024, 2, 32, 1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("l1d", 64 * 1024, 4, 32, 2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("l2", 512 * 1024, 8, 64, 10)
    )
    l2_miss_latency: int = 50

    # Branch prediction.
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)

    @classmethod
    def hpca2005(cls) -> "ProcessorConfig":
        """The configuration of table 1 of the paper."""
        return cls()

    @property
    def iq_banks(self) -> int:
        """Number of issue-queue banks."""
        return (self.iq_entries + self.iq_bank_size - 1) // self.iq_bank_size

    @property
    def int_regfile_banks(self) -> int:
        """Number of integer register-file banks."""
        return (self.int_phys_regs + self.regfile_bank_size - 1) // self.regfile_bank_size

    def validate(self) -> None:
        """Sanity-check structural parameters."""
        if self.iq_entries <= 0 or self.iq_bank_size <= 0:
            raise ValueError("issue queue must have positive capacity and bank size")
        if self.int_phys_regs < 32 + self.dispatch_width:
            raise ValueError("too few integer physical registers to rename")
        if self.rob_entries < self.dispatch_width:
            raise ValueError("ROB must hold at least one dispatch group")
        for width_name in ("fetch_width", "dispatch_width", "issue_width", "commit_width"):
            if getattr(self, width_name) <= 0:
                raise ValueError(f"{width_name} must be positive")
