"""The IR instruction.

An :class:`Instruction` carries everything both halves of the system need:

* the compiler (:mod:`repro.core`) reads opcodes, register operands and
  latencies to build dependence graphs and writes the ``iq_tag`` field when
  the Extension/Improved encoding is used;
* the simulator (:mod:`repro.uarch`) executes the instruction functionally
  (registers, memory, control flow) and times it (functional unit class,
  latency, cache behaviour).

The special hint NOOP of the paper (section 3) is represented by
``Opcode.HINT`` with the requested issue-queue size in ``hint_value``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.isa.opcodes import (
    FuClass,
    Opcode,
    default_latency,
    fu_class,
    is_branch,
    is_control,
    is_memory,
)
from repro.isa.registers import Reg


_instruction_ids = itertools.count()


class InstructionKind(enum.Enum):
    """Coarse classification used by statistics and the workload generator."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    NOP = "nop"
    HINT = "hint"
    HALT = "halt"


_KIND_BY_OPCODE = {
    Opcode.MUL: InstructionKind.INT_MUL,
    Opcode.DIV: InstructionKind.INT_MUL,
    Opcode.LOAD: InstructionKind.LOAD,
    Opcode.STORE: InstructionKind.STORE,
    Opcode.BEQZ: InstructionKind.BRANCH,
    Opcode.BNEZ: InstructionKind.BRANCH,
    Opcode.JUMP: InstructionKind.JUMP,
    Opcode.CALL: InstructionKind.CALL,
    Opcode.RET: InstructionKind.RET,
    Opcode.NOP: InstructionKind.NOP,
    Opcode.HINT: InstructionKind.HINT,
    Opcode.HALT: InstructionKind.HALT,
    Opcode.FADD: InstructionKind.FP,
    Opcode.FSUB: InstructionKind.FP,
    Opcode.FMUL: InstructionKind.FP,
    Opcode.FDIV: InstructionKind.FP,
}


@dataclass
class Instruction:
    """A single static IR instruction.

    Attributes:
        opcode: the operation performed.
        dests: destination registers written by the instruction.
        srcs: source registers read by the instruction.
        imm: immediate operand.  For memory operations this is the address
            offset added to the base register; for ``LI`` it is the value
            loaded; for shifts it is the shift amount when no register
            source is supplied.
        target: label of the branch/jump target basic block (within the
            enclosing procedure) for control transfers, or ``None``.
        call_target: name of the called procedure for ``CALL``.
        hint_value: issue-queue size carried by a ``HINT`` NOOP.
        iq_tag: issue-queue size attached to a regular instruction by the
            Extension/Improved encodings (``None`` when untagged).
        uid: globally unique static instruction id, assigned at creation.
        comment: free-form annotation used by examples and debug dumps.
    """

    opcode: Opcode
    dests: tuple[Reg, ...] = ()
    srcs: tuple[Reg, ...] = ()
    imm: int = 0
    target: Optional[str] = None
    call_target: Optional[str] = None
    hint_value: Optional[int] = None
    iq_tag: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_instruction_ids))
    comment: str = ""

    def __post_init__(self) -> None:
        self.dests = tuple(self.dests)
        self.srcs = tuple(self.srcs)
        if self.opcode is Opcode.HINT and self.hint_value is None:
            raise ValueError("HINT instructions must carry a hint_value")
        if self.opcode is Opcode.CALL and not self.call_target:
            raise ValueError("CALL instructions must name a call_target")
        if is_branch(self.opcode) and self.target is None:
            raise ValueError("conditional branches must name a target block")

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def kind(self) -> InstructionKind:
        """Coarse instruction class."""
        return _KIND_BY_OPCODE.get(self.opcode, InstructionKind.INT_ALU)

    @property
    def fu_class(self) -> FuClass:
        """Functional-unit class the instruction executes on."""
        return fu_class(self.opcode)

    @property
    def latency(self) -> int:
        """Execution latency in cycles, excluding cache effects."""
        return default_latency(self.opcode)

    @property
    def is_branch(self) -> bool:
        """True for conditional branches."""
        return is_branch(self.opcode)

    @property
    def is_control(self) -> bool:
        """True for any control-flow instruction."""
        return is_control(self.opcode)

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return is_memory(self.opcode)

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_hint(self) -> bool:
        """True for the paper's special NOOP."""
        return self.opcode is Opcode.HINT

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_halt(self) -> bool:
        return self.opcode is Opcode.HALT

    @property
    def occupies_iq(self) -> bool:
        """True when the instruction is dispatched into the issue queue.

        Hint NOOPs are stripped in the final decode stage (section 3) and
        plain NOPs are squashed at decode, so neither occupies an IQ entry.
        """
        return self.opcode not in (Opcode.HINT, Opcode.NOP)

    # ------------------------------------------------------------------
    # Pretty-printing
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands: list[str] = [str(reg) for reg in self.dests]
        operands.extend(str(reg) for reg in self.srcs)
        if self.opcode is Opcode.LI or (self.imm and not self.is_memory):
            operands.append(str(self.imm))
        if self.is_memory:
            base = self.srcs[0] if self.srcs else "?"
            operands = [str(reg) for reg in self.dests]
            if self.is_store:
                operands = [str(reg) for reg in self.srcs[1:]]
            operands.append(f"[{base}+{self.imm}]")
        if self.target is not None:
            operands.append(self.target)
        if self.call_target is not None:
            operands.append(self.call_target)
        if self.hint_value is not None:
            operands.append(f"iq={self.hint_value}")
        text = f"{parts[0]} " + ", ".join(operands)
        if self.iq_tag is not None:
            text += f"  ; tag iq={self.iq_tag}"
        return text.strip()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Instruction #{self.uid} {self}>"

    # ------------------------------------------------------------------
    # Construction helpers used by the workload generator and tests
    # ------------------------------------------------------------------
    @classmethod
    def alu(
        cls,
        opcode: Opcode,
        dest: Reg,
        srcs: Sequence[Reg],
        imm: int = 0,
        comment: str = "",
    ) -> "Instruction":
        """Build an ALU-style instruction (``dest = op(srcs, imm)``)."""
        return cls(opcode=opcode, dests=(dest,), srcs=tuple(srcs), imm=imm, comment=comment)

    @classmethod
    def load_imm(cls, dest: Reg, value: int, comment: str = "") -> "Instruction":
        """Build ``dest = value``."""
        return cls(opcode=Opcode.LI, dests=(dest,), imm=value, comment=comment)

    @classmethod
    def load(cls, dest: Reg, base: Reg, offset: int = 0, comment: str = "") -> "Instruction":
        """Build ``dest = memory[base + offset]``."""
        return cls(opcode=Opcode.LOAD, dests=(dest,), srcs=(base,), imm=offset, comment=comment)

    @classmethod
    def store(cls, value: Reg, base: Reg, offset: int = 0, comment: str = "") -> "Instruction":
        """Build ``memory[base + offset] = value``."""
        return cls(opcode=Opcode.STORE, srcs=(base, value), imm=offset, comment=comment)

    @classmethod
    def branch_eqz(cls, src: Reg, target: str, comment: str = "") -> "Instruction":
        """Build ``if src == 0 goto target``."""
        return cls(opcode=Opcode.BEQZ, srcs=(src,), target=target, comment=comment)

    @classmethod
    def branch_nez(cls, src: Reg, target: str, comment: str = "") -> "Instruction":
        """Build ``if src != 0 goto target``."""
        return cls(opcode=Opcode.BNEZ, srcs=(src,), target=target, comment=comment)

    @classmethod
    def jump(cls, target: str, comment: str = "") -> "Instruction":
        """Build an unconditional jump to ``target``."""
        return cls(opcode=Opcode.JUMP, target=target, comment=comment)

    @classmethod
    def call(cls, proc_name: str, comment: str = "") -> "Instruction":
        """Build a call to procedure ``proc_name``."""
        return cls(opcode=Opcode.CALL, call_target=proc_name, comment=comment)

    @classmethod
    def ret(cls, comment: str = "") -> "Instruction":
        """Build a procedure return."""
        return cls(opcode=Opcode.RET, comment=comment)

    @classmethod
    def halt(cls) -> "Instruction":
        """Build the program-terminating instruction."""
        return cls(opcode=Opcode.HALT)

    @classmethod
    def hint(cls, iq_entries: int) -> "Instruction":
        """Build the paper's special NOOP carrying an IQ-size request."""
        return cls(opcode=Opcode.HINT, hint_value=iq_entries)
