"""The replay-engine architecture: selection, equivalence, invariance.

The contract under test (see :mod:`repro.uarch.engine`):

* **Bit-identity** — the columnar kernel's statistics are byte-identical
  to the scalar reference for all six techniques, at every trace window
  size including 1, across warm-up boundaries, and through the
  freeze-at-commit measure-span entry the shard stitcher uses.
* **Fingerprint neutrality** — the engine never changes result-cache
  keys: a grid simulated under one kernel is a pure cache hit under the
  other.
* **Guarded availability** — selecting the columnar kernel without
  numpy fails with one clear error naming the install extra, not an
  ``ImportError`` from callsite depth.
"""

from __future__ import annotations

import json

import pytest

from repro.core import compile_program
from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.cache import stats_to_dict
from repro.harness.experiment import SOFTWARE_TECHNIQUES, TECHNIQUES, make_policy
from repro.harness.parallel import SimulationJob
from repro.harness.shard import ShardJob, ShardSpan, run_sharded
from repro.uarch import available_engines, get_engine, resolve_engine_name, simulate
from repro.uarch.core import simulate_span
from repro.uarch.engine import base as engine_base
from repro.uarch.engine import columnar as columnar_module
from repro.uarch.engine import native as native_module
from repro.uarch.engine.base import EngineUnavailableError
from repro.uarch.engine.columnar import ColumnarUnavailableError
from repro.uarch.engine.native import NativeUnavailableError
from repro.uarch.engine.scalar import OutOfOrderCore
from repro.workloads import build_benchmark

#: The native kernel needs a C toolchain; hosts without one skip its
#: equivalence matrix but still run the availability-guard tests.
needs_native = pytest.mark.skipif(
    not native_module.native_available(),
    reason=f"native kernel unavailable: {native_module.native_unavailable_reason()}",
)

BENCHMARK = "gzip"
BUDGET = 2_500
WARMUP = 400

_CONFIG = RunConfig(max_instructions=BUDGET, warmup_instructions=WARMUP)
_PROGRAMS: dict[str, object] = {}


def _program_for(technique: str):
    """The (possibly instrumented) program for ``technique``, memoised."""
    key = technique if technique in SOFTWARE_TECHNIQUES else "plain"
    program = _PROGRAMS.get(key)
    if program is None:
        if technique in SOFTWARE_TECHNIQUES:
            program = compile_program(
                build_benchmark(BENCHMARK),
                _CONFIG.compiler_config,
                mode=technique,
            ).instrumented_program
        else:
            program = build_benchmark(BENCHMARK)
        _PROGRAMS[key] = program
    return program


def _stats_bytes(stats) -> bytes:
    return json.dumps(stats_to_dict(stats), sort_keys=True).encode()


def _run(technique: str, engine: str, window: int, warmup: int = WARMUP):
    return simulate(
        _program_for(technique),
        make_policy(technique, _CONFIG),
        max_instructions=BUDGET,
        warmup_instructions=warmup,
        trace_window=window,
        engine=engine,
    )


class TestEngineSelection:
    def test_all_kernels_are_registered(self):
        # Registration is unconditional; availability is a separate,
        # per-host question answered at build_core time.
        assert set(available_engines()) >= {"scalar", "columnar", "native"}

    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(engine_base.ENGINE_ENV_VAR, raising=False)
        assert resolve_engine_name() == "scalar"

    def test_environment_supplies_the_default(self, monkeypatch):
        monkeypatch.setenv(engine_base.ENGINE_ENV_VAR, "columnar")
        assert resolve_engine_name() == "columnar"
        # An explicit argument still wins over the environment.
        assert resolve_engine_name("scalar") == "scalar"

    def test_unknown_engine_fails_naming_the_choices(self):
        with pytest.raises(ValueError, match="scalar"):
            resolve_engine_name("vector9000")

    def test_unknown_engine_is_rejected_at_runner_construction(self):
        with pytest.raises(ValueError, match="vector9000"):
            ParallelSuiteRunner(_CONFIG, workers=1, engine="vector9000")

    def test_engine_instances_are_shared(self):
        assert get_engine("scalar") is get_engine("scalar")
        assert get_engine("scalar").build_core([]) .__class__ is OutOfOrderCore


class TestEngineEquivalence:
    """Scalar vs columnar bit-identity, the tentpole invariant."""

    @pytest.mark.parametrize("technique", TECHNIQUES)
    @pytest.mark.parametrize("window", (1, 7, 4096))
    def test_bit_identical_across_techniques_and_windows(self, technique, window):
        """All six techniques × window sizes {1, 7, 4096} (4096 exceeds
        the budget, covering the monolithic single-window path)."""
        scalar = _run(technique, "scalar", window)
        columnar = _run(technique, "columnar", window)
        assert _stats_bytes(scalar) == _stats_bytes(columnar)

    @pytest.mark.parametrize("warmup", (0, 1, WARMUP, BUDGET // 2))
    def test_bit_identical_across_warmup_boundaries(self, warmup):
        """The warm-up clock rebase (completion events, ready cycles,
        fetch queue) must behave identically under the columnar mirrors,
        wherever the boundary falls."""
        scalar = _run("abella", "scalar", 640, warmup=warmup)
        columnar = _run("abella", "columnar", 640, warmup=warmup)
        assert _stats_bytes(scalar) == _stats_bytes(columnar)

    @pytest.mark.parametrize("technique", ("baseline", "abella", "improved"))
    def test_measure_span_freeze_is_bit_identical(self, technique):
        """The freeze-at-commit entry (``simulate_span``) the shard
        stitcher depends on: statistics frozen mid-commit must match."""
        kwargs = dict(
            max_instructions=BUDGET,
            first_entry=0,
            last_entry=2_000,
            warmup_commits=300,
            measure_commits=700,
            trace_window=512,
        )
        program = _program_for(technique)
        scalar = simulate_span(
            program, make_policy(technique, _CONFIG), engine="scalar", **kwargs
        )
        columnar = simulate_span(
            program, make_policy(technique, _CONFIG), engine="columnar", **kwargs
        )
        assert _stats_bytes(scalar) == _stats_bytes(columnar)

    def test_columnar_shard_stitch_matches_sequential(self):
        """``merge_stats`` over full-overlap shards replayed by the
        columnar kernel is bit-identical to one sequential run — and to
        the scalar kernel's stitch of the same plan."""
        sequential = _run("abella", "columnar", 640)
        for engine in ("scalar", "columnar"):
            stitched = run_sharded(
                BENCHMARK,
                "abella",
                _CONFIG,
                span_entries=800,
                overlap="full",
                trace_window=640,
                engine=engine,
            )
            assert _stats_bytes(stitched) == _stats_bytes(sequential)


@needs_native
class TestNativeEquivalence:
    """Scalar vs native (compiled C) bit-identity — the same matrix the
    columnar kernel passes, plus the C loop's own boundary cases."""

    @pytest.mark.parametrize("technique", TECHNIQUES)
    @pytest.mark.parametrize("window", (1, 7, 4096))
    def test_bit_identical_across_techniques_and_windows(self, technique, window):
        scalar = _run(technique, "scalar", window)
        native = _run(technique, "native", window)
        assert _stats_bytes(scalar) == _stats_bytes(native)

    @pytest.mark.parametrize("warmup", (0, 1, WARMUP, BUDGET // 2))
    def test_bit_identical_across_warmup_boundaries(self, warmup):
        """The C kernel replaces the scalar rebase walk with an absolute
        clock and a base flip; every reported cycle and every in-flight
        event must still agree wherever the boundary falls."""
        scalar = _run("abella", "scalar", 640, warmup=warmup)
        native = _run("abella", "native", 640, warmup=warmup)
        assert _stats_bytes(scalar) == _stats_bytes(native)

    @pytest.mark.parametrize("technique", ("baseline", "abella", "improved"))
    def test_measure_span_freeze_is_bit_identical(self, technique):
        kwargs = dict(
            max_instructions=BUDGET,
            first_entry=0,
            last_entry=2_000,
            warmup_commits=300,
            measure_commits=700,
            trace_window=512,
        )
        program = _program_for(technique)
        scalar = simulate_span(
            program, make_policy(technique, _CONFIG), engine="scalar", **kwargs
        )
        native = simulate_span(
            program, make_policy(technique, _CONFIG), engine="native", **kwargs
        )
        assert _stats_bytes(scalar) == _stats_bytes(native)

    def test_native_shard_stitch_matches_sequential(self):
        sequential = _run("abella", "native", 640)
        stitched = run_sharded(
            BENCHMARK,
            "abella",
            _CONFIG,
            span_entries=800,
            overlap="full",
            trace_window=640,
            engine="native",
        )
        assert _stats_bytes(stitched) == _stats_bytes(sequential)

    def test_empty_trace_runs(self):
        from repro.uarch.trace import DecodedTrace

        scalar = get_engine("scalar").run(DecodedTrace())
        native = get_engine("native").run(DecodedTrace())
        assert _stats_bytes(scalar) == _stats_bytes(native)

    def test_max_cycles_budget_is_respected(self):
        from repro.uarch.trace import get_decoded_trace

        trace = get_decoded_trace(_program_for("baseline"), 2_000)
        scalar = get_engine("scalar").run(trace, max_cycles=123)
        native = get_engine("native").run(trace, max_cycles=123)
        assert _stats_bytes(scalar) == _stats_bytes(native)


class TestColumnarWindowLowering:
    def test_structured_array_round_trips_the_window(self):
        """The lazy record-array lowering must agree with the source
        window column for column (it is the batch interchange form any
        future vectorized stage will consume)."""
        from repro.uarch.engine.columnar import ColumnarWindow
        from repro.uarch.trace import get_decoded_trace

        trace = get_decoded_trace(_program_for("baseline"), 500)
        window = ColumnarWindow(trace)
        assert window._columns is None  # built on demand, not eagerly
        columns = window.columns
        assert len(columns) == trace.length == len(window)
        assert columns["pc"].tolist() == list(trace.pc)
        assert columns["next_pc"].tolist() == list(trace.next_pc)
        assert columns["mem_addr"].tolist() == list(trace.mem_addr)
        assert columns["taken"].tolist() == list(trace.taken)
        assert columns["flags"].tolist() == list(trace.flags)
        assert columns["latency"].tolist() == list(trace.latency)
        assert columns["fu_idx"].tolist() == list(trace.fu_idx)
        assert window.columns is columns  # memoised


class TestFingerprintInvariance:
    """Engines are transport: cache keys must not see them."""

    def test_simulation_job_fingerprint_ignores_the_engine(self):
        jobs = [
            SimulationJob(BENCHMARK, "baseline", _CONFIG, engine=engine)
            for engine in (None, "scalar", "columnar", "native")
        ]
        assert len({job.fingerprint() for job in jobs}) == 1

    def test_shard_job_fingerprint_ignores_the_engine(self):
        span = ShardSpan(
            index=0,
            start=0,
            stop=1_000,
            warm_start=0,
            feed_stop=1_500,
            warmup_commits=0,
            measure_commits=800,
        )
        jobs = [
            ShardJob(
                BENCHMARK,
                "baseline",
                _CONFIG,
                span,
                cell_fingerprint="cell",
                engine=engine,
            )
            for engine in (None, "scalar", "columnar", "native")
        ]
        assert len({job.fingerprint() for job in jobs}) == 1

    @needs_native
    def test_grid_cached_under_scalar_is_pure_hit_under_native(self, tmp_path):
        """The ISSUE's acceptance criterion verbatim: a grid simulated
        and cached under the scalar kernel replays as a pure cache hit
        under the native one — zero simulations run."""
        config = RunConfig(
            max_instructions=1_500, warmup_instructions=200, benchmarks=(BENCHMARK,)
        )
        first = ParallelSuiteRunner(
            config, workers=1, cache_dir=str(tmp_path), engine="scalar"
        )
        first.run_suite(techniques=("baseline", "abella"))
        assert first.simulations_run == 2
        second = ParallelSuiteRunner(
            config, workers=1, cache_dir=str(tmp_path), engine="native"
        )
        results = second.run_suite(techniques=("baseline", "abella"))
        assert second.simulations_run == 0  # engine-invariant fingerprints
        assert set(results) == {(BENCHMARK, "baseline"), (BENCHMARK, "abella")}

    def test_grid_cached_under_one_kernel_is_hit_under_the_other(self, tmp_path):
        config = RunConfig(
            max_instructions=1_500, warmup_instructions=200, benchmarks=(BENCHMARK,)
        )
        first = ParallelSuiteRunner(
            config, workers=1, cache_dir=str(tmp_path), engine="scalar"
        )
        first.run_suite(techniques=("baseline", "abella"))
        assert first.simulations_run == 2
        second = ParallelSuiteRunner(
            config, workers=1, cache_dir=str(tmp_path), engine="columnar"
        )
        results = second.run_suite(techniques=("baseline", "abella"))
        assert second.simulations_run == 0  # engine-invariant fingerprints
        assert set(results) == {(BENCHMARK, "baseline"), (BENCHMARK, "abella")}


class TestColumnarAvailabilityGuard:
    def test_missing_numpy_raises_a_clear_error(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        assert not columnar_module.numpy_available()
        with pytest.raises(ColumnarUnavailableError) as excinfo:
            get_engine("columnar").build_core([])
        message = str(excinfo.value)
        assert "columnar" in message  # names the install extra
        assert "scalar" in message  # and the fallback kernel

    def test_simulate_surfaces_the_guard_not_an_import_error(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        with pytest.raises(ColumnarUnavailableError):
            simulate(
                _program_for("baseline"),
                make_policy("baseline", _CONFIG),
                max_instructions=200,
                engine="columnar",
            )

    def test_scalar_engine_never_needs_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        stats = simulate(
            _program_for("baseline"),
            make_policy("baseline", _CONFIG),
            max_instructions=200,
            engine="scalar",
        )
        assert stats.committed_instructions > 0


class TestNativeAvailabilityGuard:
    """The degraded path: no C toolchain must mean one named error."""

    @pytest.fixture()
    def no_toolchain(self, monkeypatch):
        """Simulate a host without a C compiler, whatever this one has."""
        monkeypatch.setattr(native_module, "_MODULE", None)
        monkeypatch.setattr(
            native_module._COMPILER,
            "unavailable_reason",
            lambda: "no C compiler (cc/gcc/$CC) on PATH",
        )

    def test_missing_toolchain_raises_a_clear_error(self, no_toolchain):
        assert not native_module.native_available()
        with pytest.raises(NativeUnavailableError) as excinfo:
            get_engine("native").build_core([])
        message = str(excinfo.value)
        assert "native" in message  # names the install extra
        assert "scalar" in message  # and the fallback kernel
        assert "C compiler" in message  # and the actual missing piece

    def test_simulate_surfaces_the_guard_not_a_build_error(self, no_toolchain):
        with pytest.raises(NativeUnavailableError):
            simulate(
                _program_for("baseline"),
                make_policy("baseline", _CONFIG),
                max_instructions=200,
                engine="native",
            )

    def test_unavailable_errors_share_the_engine_base_class(self):
        """Fleet plumbing (probes, worker calibration) degrades on one
        exception type instead of enumerating kernels."""
        assert issubclass(NativeUnavailableError, EngineUnavailableError)
        assert issubclass(ColumnarUnavailableError, EngineUnavailableError)

    def test_compile_failure_is_wrapped_into_the_named_error(self, monkeypatch, tmp_path):
        """A *broken* toolchain (compile error), not a missing one, must
        surface as the same named error — never a raw build traceback."""
        from repro.uarch.engine.build import ExtensionCompiler

        bad_source = tmp_path / "broken.c"
        bad_source.write_text("this is not C\n")
        compiler = ExtensionCompiler(str(bad_source), "_native_replay")
        monkeypatch.setattr(native_module, "_MODULE", None)
        monkeypatch.setattr(native_module, "_COMPILER", compiler)
        if compiler.unavailable_reason() is not None:
            pytest.skip("no toolchain on this host to fail the compile with")
        with pytest.raises(NativeUnavailableError, match="native"):
            native_module.load_native_module()
