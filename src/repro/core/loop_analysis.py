"""Loop analysis via cyclic dependence sets (section 4.3, figure 4).

Out-of-order execution overlaps loop iterations, so a loop needs enough
issue-queue entries for the instructions of several iterations to be
resident simultaneously.  The paper:

1. finds the *cyclic dependence set* (CDS) with the greatest latency -- the
   dependence recurrence that dictates how fast iterations can start;
2. writes an equation for every instruction expressing when it issues
   relative to an instruction of the CDS, eliminating constants so each
   equation reads "instruction X of iteration *i* issues together with CDS
   representative *a* of iteration *i+k*";
3. from the largest iteration offset *k* derives how many entries are needed
   for the oldest and youngest simultaneously-issuing instructions to be in
   the queue at once.

The implementation computes the recurrence's initiation interval (maximum
cycle ratio over the dependence graph with loop-carried edges), solves for
steady-state issue times by longest-path relaxation, converts them into
iteration offsets, and applies the entry-count formula of the paper's
worked example (figure 4: 15 entries for the 6-instruction loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro.cfg.ddg import DataDependenceGraph, build_ddg
from repro.core.config import CompilerConfig
from repro.core.dag_analysis import BlockRequirement
from repro.core.pseudo_queue import PseudoIssueQueue
from repro.isa.instruction import Instruction


@dataclass
class LoopRequirement:
    """The analysis result for one natural loop.

    Attributes:
        procedure: enclosing procedure name.
        header: label of the loop header block.
        entries: issue-queue entries needed for pipelined execution of the
            loop (clamped to the physical queue size).
        raw_entries: unclamped requirement.
        initiation_interval: cycles between successive iterations of the
            critical recurrence (0 when the loop has no recurrence).
        iteration_offsets: per-instruction iteration offset *k* relative to
            the CDS representative, in body order.
        cds: indices (into the analysed body) of the critical cycle's
            instructions.
        body_size: number of IQ-occupying instructions in the analysed body.
    """

    procedure: str
    header: str
    entries: int
    raw_entries: int
    initiation_interval: float = 0.0
    iteration_offsets: list[int] = field(default_factory=list)
    cds: list[int] = field(default_factory=list)
    body_size: int = 0

    def as_block_requirement(self) -> BlockRequirement:
        """View the loop requirement as the requirement of its header block."""
        return BlockRequirement(
            procedure=self.procedure,
            label=self.header,
            entries=self.entries,
            raw_entries=self.raw_entries,
            schedule=None,
            source="loop",
        )


def _recurrence_nodes(ddg: DataDependenceGraph, config: CompilerConfig) -> list[int]:
    """Nodes that participate in some dependence recurrence (the CDS candidates).

    A node is part of a recurrence when it belongs to a strongly connected
    component of the dependence graph (with loop-carried edges included)
    that contains at least one carried edge.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(ddg.instructions)))
    for edge in ddg.edges:
        graph.add_edge(edge.src, edge.dst)
    recurrence: list[int] = []
    for component in nx.strongly_connected_components(graph):
        if len(component) == 1:
            node = next(iter(component))
            has_self_carried = any(
                edge.src == node and edge.dst == node and edge.distance >= 1
                for edge in ddg.succs[node]
            )
            if not has_self_carried:
                continue
        recurrence.extend(component)
    return sorted(recurrence)


def _has_positive_cycle(ddg: DataDependenceGraph, config: CompilerConfig, ii: float) -> bool:
    """True when some dependence cycle has positive slack at initiation interval ``ii``.

    Edge weight is ``latency - distance * ii``; a positive-weight cycle means
    ``ii`` is too small to sustain the recurrence.
    """
    count = len(ddg.instructions)
    distance = [0.0] * count
    for _ in range(count):
        changed = False
        for edge in ddg.edges:
            latency = config.instruction_latency(ddg.instructions[edge.src])
            weight = latency - edge.distance * ii
            candidate = distance[edge.src] + weight
            if candidate > distance[edge.dst] + 1e-9:
                distance[edge.dst] = candidate
                changed = True
        if not changed:
            return False
    return True


def _recurrence_initiation_interval(
    ddg: DataDependenceGraph, config: CompilerConfig
) -> float:
    """Maximum cycle ratio (latency per iteration distance) of the dependence graph.

    Computed by binary search on the candidate initiation interval with a
    positive-cycle test, which is robust for arbitrary dependence graphs
    (enumerating simple cycles can blow up combinatorially).
    Returns 0.0 when no recurrence exists.
    """
    if not any(edge.distance >= 1 for edge in ddg.edges):
        return 0.0
    upper = float(
        sum(config.instruction_latency(instr) for instr in ddg.instructions)
    )
    if not _has_positive_cycle(ddg, config, 0.0):
        return 0.0
    low, high = 0.0, upper
    for _ in range(40):
        mid = (low + high) / 2.0
        if _has_positive_cycle(ddg, config, mid):
            low = mid
        else:
            high = mid
    return high


def _resource_initiation_interval(
    ddg: DataDependenceGraph, config: CompilerConfig
) -> float:
    """Resource-constrained lower bound on the initiation interval.

    The issue width and the functional-unit counts bound how fast iterations
    can be started regardless of dependences (the paper's analysis considers
    resources as well as data dependences, section 4).
    """
    work = ddg.instructions
    if not work:
        return 0.0
    width_bound = len(work) / max(1, config.issue_width)
    fu_bound = 0.0
    usage: dict = {}
    for instr in work:
        usage[instr.fu_class] = usage.get(instr.fu_class, 0) + 1
    for fu, count in usage.items():
        units = config.fu_counts.get(fu, config.issue_width)
        if units > 0:
            fu_bound = max(fu_bound, count / units)
    return max(width_bound, fu_bound)


def _steady_state_times(
    ddg: DataDependenceGraph,
    config: CompilerConfig,
    representative: int,
    initiation_interval: float,
) -> list[float]:
    """Longest-path issue times relative to the CDS representative.

    Loop-carried edges contribute ``latency - distance * II`` so the
    relaxation converges (with the critical cycle summing to zero).
    """
    count = len(ddg.instructions)
    times = [0.0] * count
    times[representative] = 0.0
    # |V| rounds of relaxation suffice because non-critical cycles have
    # negative adjusted weight; a couple of extra rounds guard against
    # floating-point ties.
    for _ in range(count + 2):
        changed = False
        for edge in ddg.edges:
            latency = config.instruction_latency(ddg.instructions[edge.src])
            weight = latency - edge.distance * initiation_interval
            candidate = times[edge.src] + weight
            if candidate > times[edge.dst] + 1e-9:
                times[edge.dst] = candidate
                changed = True
        if not changed:
            break
    return times


def analyse_loop_body(
    body_instructions: Sequence[Instruction],
    config: CompilerConfig,
    procedure_name: str = "",
    header_label: str = "",
) -> LoopRequirement:
    """Analyse a loop whose body is the given instruction sequence."""
    work = [instr for instr in body_instructions if instr.occupies_iq]
    body_size = len(work)
    if body_size == 0:
        return LoopRequirement(
            procedure=procedure_name,
            header=header_label,
            entries=config.min_hint_value,
            raw_entries=0,
            body_size=0,
        )

    ddg = build_ddg(work, include_loop_carried=True)
    recurrence_ii = _recurrence_initiation_interval(ddg, config)
    cds_nodes = _recurrence_nodes(ddg, config)

    scheduler = PseudoIssueQueue(config)
    single_iteration = scheduler.schedule(work, ddg=None).entries_needed

    if not cds_nodes or recurrence_ii <= 0:
        # No recurrence: iterations are independent, so the more entries the
        # better; request the full queue (the paper's library-call treatment
        # applies the same "maximum size" escape hatch).
        raw = config.max_iq_entries
        return LoopRequirement(
            procedure=procedure_name,
            header=header_label,
            entries=config.clamp_requirement(raw),
            raw_entries=raw,
            initiation_interval=0.0,
            iteration_offsets=[],
            cds=[],
            body_size=body_size,
        )

    # The achievable initiation interval is bounded below by both the
    # critical recurrence and the machine's issue resources.
    initiation_interval = max(
        recurrence_ii, _resource_initiation_interval(ddg, config)
    )
    representative = min(cds_nodes)
    times = _steady_state_times(ddg, config, representative, initiation_interval)
    offsets = [int((t + 1e-9) // initiation_interval) for t in times]

    max_offset = max(offsets)
    if max_offset <= 0:
        raw = max(single_iteration, config.min_hint_value)
    else:
        latest_positions = [i for i, k in enumerate(offsets) if k == max_offset]
        earliest_latest = min(latest_positions)
        rep_position = representative
        raw = (
            (body_size - earliest_latest)
            + body_size * (max_offset - 1)
            + (rep_position + 1)
        )
        raw = max(raw, single_iteration)

    return LoopRequirement(
        procedure=procedure_name,
        header=header_label,
        entries=config.clamp_requirement(raw),
        raw_entries=raw,
        initiation_interval=initiation_interval,
        iteration_offsets=offsets,
        cds=cds_nodes,
        body_size=body_size,
    )


def analyse_loop(
    blocks: Sequence,
    config: CompilerConfig,
    procedure_name: str = "",
    header_label: Optional[str] = None,
) -> LoopRequirement:
    """Analyse a natural loop given its basic blocks in layout order.

    The bodies of the supplied blocks (typically the loop's *exclusive*
    blocks so inner loops are not analysed twice) are concatenated in layout
    order to form the iteration body.
    """
    instructions: list[Instruction] = []
    for block in blocks:
        instructions.extend(block.non_hint_instructions())
    header = header_label or (blocks[0].label if blocks else "")
    return analyse_loop_body(
        instructions, config, procedure_name=procedure_name, header_label=header
    )
