"""reprolint — AST-based static enforcement of the repo's contracts.

The framework lives in :mod:`repro.analysis.core` (rules, findings,
suppressions, file walking), the shipped rules in
:mod:`repro.analysis.rules`, and the CLI in :mod:`repro.analysis.cli`
(``python -m repro.analysis`` / the ``repro-lint`` console script).
``docs/static-analysis.md`` catalogues each rule and the contract it
encodes.

Suppress an acknowledged finding with ``# repro: allow[rule-id]`` on
the offending line (or alone on the line above), ideally followed by a
one-line justification.
"""

from repro.analysis.core import (
    Finding,
    LintResult,
    Rule,
    all_rules,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
)

# Importing the rules module registers the shipped rule set.
from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]
