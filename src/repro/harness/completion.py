"""The shared event-driven completion core over the work queue.

Before this module, every consumer of the file-backed work queue waited
its own way: the driver's ``_await_markers`` slept a fixed interval and
re-listed ``done/`` each tick, and a service front end would have needed
yet another loop to multiplex client sockets against the same markers.
This module is the single replacement: **one selector-based event loop
per process** that watches completion markers, poison records and lease
heartbeats for any number of subscribers at once, and — because the
wait is a real ``selector.select`` — can multiplex socket readiness
(the experiment service's client connections) into the very same wait.

Two consumers share it:

* :class:`~repro.harness.parallel.ParallelSuiteRunner` (``backend=
  "queue"``) calls :meth:`QueueEventCore.wait_for_markers`, which
  subscribes every outstanding fingerprint and runs the loop until all
  markers arrive — no fixed-interval sleep-poll remains in the driver.
* the experiment service daemon (:mod:`repro.service.daemon`) registers
  its listening/client sockets with :meth:`register` and its in-flight
  fingerprints with :meth:`watch`; one :meth:`step` call both services
  ready sockets and dispatches completion events to subscriptions.

Event-driven over a directory-backed queue
------------------------------------------

The queue's only completion signal is a marker file appearing in
``done/`` — there is no portable filesystem notification over NFS — so
the core *schedules scans* instead of sleeping between polls: each
:meth:`step` blocks in ``selector.select`` until either a registered
socket becomes ready (client traffic, the self-pipe wake) or the next
scan falls due.  The scan interval is **adaptive**: it collapses to
``poll_floor`` whenever a scan makes progress (marker arrived, assist
executed a job, a heartbeat moved) and doubles towards ``poll_ceiling``
while the queue is quiet, so one process multiplexing thousands of
outstanding requests pays directory listings proportional to activity,
not to subscriber count.  Scan work per tick is one ``done/`` listing
plus one ``leases/`` listing regardless of how many fingerprints are
watched.

Waiting discipline: the loop never calls ``time.sleep`` — its one wait
is the selector, whose timeout routes through
:func:`repro.harness.faults.scale_timeout` so an active chaos plan
compresses idle ticks exactly like it compresses the workers' poll
sleeps.  All queue filesystem touchpoints the scan drives
(listings, marker reads, requeue renames) already run under the
chaoskit hooks of :mod:`repro.harness.queue`.
"""

from __future__ import annotations

import os
import selectors
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.harness import faults
from repro.telemetry.metrics import MetricsRegistry, counter_property


@dataclass(frozen=True)
class CompletionEvent:
    """One terminal queue event for one watched fingerprint.

    ``kind`` is ``"done"`` (``record`` is the completion marker) or
    ``"poisoned"`` (``record`` is the poison record, possibly minimal).
    """

    fingerprint: str
    kind: str
    record: dict


class QueueEventCore:
    """Single-selector event loop over one :class:`WorkQueue`.

    Attributes:
        queue: the watched :class:`~repro.harness.queue.WorkQueue`.
        poll_floor: scan interval right after a productive scan (s).
        poll_ceiling: upper bound the idle interval backs off towards.
        assist: claim and execute one unclaimed job per scan while any
            watch is outstanding (the driver's pitch-in behaviour; a
            service daemon that must stay responsive leaves it off and
            lets worker processes execute).
        markers_seen / assists_run: this core's traffic counters —
            registry-backed (``metrics.snapshot()``) but readable as
            plain ints like every other fleet counter.
    """

    markers_seen = counter_property("markers_seen")
    assists_run = counter_property("assists_run")

    def __init__(
        self,
        queue,
        poll_floor: float = 0.05,
        poll_ceiling: float = 1.0,
        assist: bool = False,
        worker_id: Optional[str] = None,
        stall_timeout: Optional[float] = None,
    ):
        if poll_floor <= 0:
            raise ValueError("poll_floor must be a positive number of seconds")
        from repro.harness.queue import _default_worker_id

        self.queue = queue
        self.poll_floor = poll_floor
        self.poll_ceiling = max(poll_ceiling, poll_floor)
        self.assist = assist
        self.worker_id = worker_id or "driver-" + _default_worker_id()
        self.stall_timeout = stall_timeout
        self.metrics = MetricsRegistry("completion")
        for name in ("markers_seen", "assists_run"):
            self.metrics.counter(name)
        self._watches: dict[str, list[Callable[[CompletionEvent], None]]] = {}
        self._interval = poll_floor
        self._next_scan = time.monotonic()  # first step scans immediately
        self._last_progress = time.monotonic()
        self._last_beat: Optional[float] = None
        self._selector = selectors.DefaultSelector()
        # Self-pipe: guarantees select always has a waitable fd (the
        # driver registers no sockets) and lets other threads interrupt
        # an idle wait via wake() — the service's shutdown path.
        self._wake_recv, self._wake_send = os.pipe()
        os.set_blocking(self._wake_recv, False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, self._drain_wake)
        self._closed = False

    # ------------------------------------------------------------------
    # Socket multiplexing (the service daemon's half)
    # ------------------------------------------------------------------
    def register(self, fileobj, events: int, callback) -> None:
        """Register ``fileobj`` with the loop; ``callback(mask)`` on ready."""
        self._selector.register(fileobj, events, callback)

    def modify(self, fileobj, events: int, callback) -> None:
        self._selector.modify(fileobj, events, callback)

    def unregister(self, fileobj) -> None:
        self._selector.unregister(fileobj)

    def wake(self) -> None:
        """Interrupt a blocked :meth:`step` from another thread."""
        try:
            os.write(self._wake_send, b"\0")
        except OSError:  # pragma: no cover - closing race
            pass

    def _drain_wake(self, mask: int) -> None:
        try:
            while os.read(self._wake_recv, 4096):
                pass
        except BlockingIOError:
            pass

    # ------------------------------------------------------------------
    # Completion subscriptions
    # ------------------------------------------------------------------
    def watch(
        self, fingerprint: str, subscriber: Callable[[CompletionEvent], None]
    ) -> None:
        """Subscribe ``subscriber`` to ``fingerprint``'s terminal event.

        Many subscribers may watch one fingerprint — that is exactly the
        dedupe shape of the service front end (N clients, one job).  The
        subscription is one-shot: it is dropped after the event fires.
        A fingerprint whose marker already exists fires on the next
        scan, so subscribing after completion is never a lost wakeup.
        """
        self._watches.setdefault(fingerprint, []).append(subscriber)
        # A fresh watch must not inherit a backed-off idle interval.
        self._interval = self.poll_floor
        self._next_scan = min(self._next_scan, time.monotonic())

    def unwatch(self, fingerprint: str, subscriber=None) -> None:
        """Drop one subscriber (or with None, every subscriber)."""
        subscribers = self._watches.get(fingerprint)
        if subscribers is None:
            return
        if subscriber is not None and subscriber in subscribers:
            subscribers.remove(subscriber)
        elif subscriber is None:
            subscribers.clear()
        if not subscribers:
            self._watches.pop(fingerprint, None)

    def watched(self) -> set[str]:
        """The fingerprints currently subscribed."""
        return set(self._watches)

    def subscriber_count(self, fingerprint: Optional[str] = None) -> int:
        """Subscribers on one fingerprint, or across every watch."""
        if fingerprint is not None:
            return len(self._watches.get(fingerprint, ()))
        return sum(len(subs) for subs in self._watches.values())

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def step(self, max_wait: Optional[float] = None) -> bool:
        """One iteration: wait for sockets or the scan timer, dispatch.

        Returns True when the iteration made progress (socket activity,
        marker/poison dispatched, assist executed a job, or a heartbeat
        advanced) — the signal :meth:`wait_for_markers` feeds its stall
        clock.  Never raises on behalf of a watched fingerprint; poison
        records are dispatched as events and judged by the subscriber.
        """
        if self._closed:
            raise RuntimeError("QueueEventCore is closed")
        now = time.monotonic()
        timeout = max(0.0, self._next_scan - now)
        if max_wait is not None:
            timeout = min(timeout, max(0.0, max_wait))
        progressed = False
        ready = self._selector.select(faults.scale_timeout(timeout))
        for key, mask in ready:
            if key.fd == self._wake_recv:
                self._drain_wake(mask)
            else:
                key.data(mask)
                progressed = True
        if time.monotonic() >= self._next_scan:
            progressed |= self._scan()
        if progressed:
            self._last_progress = time.monotonic()
        return progressed

    def _scan(self) -> bool:
        """One marker/heartbeat/assist pass; True when it progressed."""
        queue = self.queue
        progressed = False
        queue.requeue_expired()
        if self._watches:
            done = queue.list_done() & set(self._watches)
            for fingerprint in sorted(done):
                marker = queue.done_marker(fingerprint)
                if marker is None:
                    continue  # torn/foreign marker: wait for a clean one
                self.markers_seen += 1
                progressed = True
                self._dispatch(
                    CompletionEvent(fingerprint, "done", marker)
                )
            poisoned = queue.list_poisoned() & set(self._watches)
            for fingerprint in sorted(poisoned):
                record = queue.poison_record(fingerprint) or {
                    "fingerprint": fingerprint,
                    "poison_reason": "unrecorded",
                }
                progressed = True
                self._dispatch(
                    CompletionEvent(fingerprint, "poisoned", record)
                )
            if self.assist and self._watches:
                claimed = queue.claim(self.worker_id)
                if claimed is not None:
                    from repro.harness.queue import process_claimed_job

                    process_claimed_job(queue, claimed, self.worker_id)
                    self.assists_run += 1
                    progressed = True
            # A live worker mid-simulation produces no markers for a
            # while, but its heartbeat moves the youngest-lease age.
            beat = queue.youngest_lease_age()
            if beat is not None and (
                self._last_beat is None or beat < self._last_beat
            ):
                progressed = True
            self._last_beat = beat
        self._interval = (
            self.poll_floor
            if progressed
            else min(self._interval * 2.0, self.poll_ceiling)
        )
        self._next_scan = time.monotonic() + self._interval
        return progressed

    def _dispatch(self, event: CompletionEvent) -> None:
        """Fire-and-drop the one-shot subscriptions for ``event``."""
        subscribers = self._watches.pop(event.fingerprint, [])
        for subscriber in subscribers:
            subscriber(event)

    def stalled_for(self) -> float:
        """Seconds since the loop last made progress."""
        return time.monotonic() - self._last_progress

    # ------------------------------------------------------------------
    # The driver's blocking entry point
    # ------------------------------------------------------------------
    def wait_for_markers(self, fingerprints: list[str]) -> dict[str, dict]:
        """Block until every fingerprint resolves; return the markers.

        Semantics match the driver contract the sleep-poll loop used to
        provide: a poisoned fingerprint raises ``RuntimeError`` with the
        recorded reason immediately, and ``stall_timeout`` bounds
        *inactivity* — it re-arms on every marker, heartbeat or assist,
        so slow-but-live fleets never trip it, only a wedged queue does.
        """
        markers: dict[str, dict] = {}
        poison: list[dict] = []

        def _collect(event: CompletionEvent) -> None:
            if event.kind == "done":
                markers[event.fingerprint] = event.record
            else:
                poison.append(event.record)

        remaining = set(fingerprints)
        for fingerprint in remaining:
            self.watch(fingerprint, _collect)
        self._last_progress = time.monotonic()
        while len(markers) < len(remaining):
            self.step()
            if poison:
                record = poison[0]
                raise RuntimeError(
                    f"queue job {record.get('benchmark')}/"
                    f"{record.get('technique')} was poisoned after "
                    f"{record.get('attempts', '?')} attempt(s) on worker "
                    f"{record.get('worker')!r}:\n"
                    f"{record.get('poison_reason', 'unrecorded')}"
                )
            if (
                self.stall_timeout is not None
                and self.stalled_for() > self.stall_timeout
            ):
                outstanding = remaining - set(markers)
                raise TimeoutError(
                    f"queue backend stalled for {self.stall_timeout:.0f}s "
                    f"awaiting {len(outstanding)} job(s); queue status: "
                    f"{self.queue.status()}"
                )
        return {fingerprint: markers[fingerprint] for fingerprint in fingerprints}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the selector and the wake pipe (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._selector.unregister(self._wake_recv)
        except (KeyError, ValueError):  # pragma: no cover - double close
            pass
        self._selector.close()
        for fd in (self._wake_recv, self._wake_send):
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - double close
                pass

    def __enter__(self) -> "QueueEventCore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
