"""Equivalence and caching tests for the parallel experiment engine.

The contract: :class:`ParallelSuiteRunner` is a drop-in replacement for
the serial :class:`SuiteRunner` — identical metrics for any worker count
— and a warm on-disk cache eliminates simulation entirely.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness import (
    ParallelSuiteRunner,
    RunConfig,
    SimulationJob,
    SuiteRunner,
)
from repro.harness.cache import (
    ResultCache,
    stats_from_dict,
    stats_to_dict,
)
from repro.harness.parallel import run_simulation_job
from repro.uarch import SimulationStats, TraceCache
from repro.uarch.trace import clear_trace_memo


#: A tiny grid that still crosses hardware-only and software techniques
#: and includes an extended-family benchmark.
TINY_CONFIG = RunConfig(
    benchmarks=("gzip", "ptrthrash"),
    max_instructions=2_500,
    warmup_instructions=500,
)
TINY_TECHNIQUES = ("baseline", "abella", "noop")


def _grid_metrics(runner) -> dict:
    return {
        (benchmark, technique): dataclasses.asdict(runner.metrics(benchmark, technique))
        for benchmark in TINY_CONFIG.benchmarks
        for technique in TINY_TECHNIQUES
    }


class TestSerialEquivalence:
    def test_single_worker_reproduces_serial_metrics_exactly(self, suite_workers):
        serial = SuiteRunner(TINY_CONFIG)
        parallel = ParallelSuiteRunner(TINY_CONFIG, workers=suite_workers)
        parallel.run_suite(techniques=TINY_TECHNIQUES)
        assert _grid_metrics(parallel) == _grid_metrics(serial)

    def test_lazy_result_path_matches_run_suite(self):
        eager = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        eager.run_suite(techniques=TINY_TECHNIQUES)
        lazy = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        assert _grid_metrics(lazy) == _grid_metrics(eager)

    def test_software_results_keep_their_compilation(self):
        runner = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        runner.run_suite(techniques=TINY_TECHNIQUES)
        assert runner.result("gzip", "noop").compilation is not None
        assert runner.result("gzip", "baseline").compilation is None


class TestDiskCache:
    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        cold = ParallelSuiteRunner(TINY_CONFIG, workers=1, cache_dir=str(tmp_path))
        cold.run_suite(techniques=TINY_TECHNIQUES)
        expected_cells = len(TINY_CONFIG.benchmarks) * len(TINY_TECHNIQUES)
        assert cold.simulations_run == expected_cells

        warm = ParallelSuiteRunner(TINY_CONFIG, workers=1, cache_dir=str(tmp_path))
        warm.run_suite(techniques=TINY_TECHNIQUES)
        assert warm.simulations_run == 0
        assert warm.cache.hits == expected_cells
        assert _grid_metrics(warm) == _grid_metrics(cold)

    def test_changed_configuration_misses_the_cache(self, tmp_path):
        base_job = SimulationJob("gzip", "baseline", TINY_CONFIG)
        changed = dataclasses.replace(TINY_CONFIG, warmup_instructions=501)
        changed_job = SimulationJob("gzip", "baseline", changed)
        assert base_job.fingerprint() != changed_job.fingerprint()
        # Same inputs, same key.
        assert base_job.fingerprint() == SimulationJob(
            "gzip", "baseline", TINY_CONFIG
        ).fingerprint()

    def test_different_techniques_use_different_keys(self):
        keys = {
            SimulationJob("gzip", technique, TINY_CONFIG).fingerprint()
            for technique in TINY_TECHNIQUES
        }
        assert len(keys) == len(TINY_TECHNIQUES)

    def test_cache_roundtrip_preserves_all_counters(self, tmp_path):
        stats = SimulationStats(
            cycles=123, committed_instructions=456, rf_writes=7, iq_cmp_gated=8
        )
        stats.extra["note"] = 1.5
        cache = ResultCache(tmp_path)
        key = "a" * 64
        cache.store(key, stats, benchmark="gzip", technique="baseline")
        loaded = cache.load(key)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(stats)
        assert cache.stores == 1 and cache.hits == 1

    def test_missing_entry_counts_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("b" * 64) is None
        assert cache.misses == 1
        assert len(cache) == 0

    def test_orphaned_writer_temp_files_are_not_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("c" * 64, SimulationStats(cycles=1))
        (tmp_path / ".tmp-orphan.json").write_text("{}")  # killed writer
        assert len(cache) == 1

    def test_malformed_payload_counts_as_miss(self, tmp_path):
        """Valid JSON without a ``"stats"`` counter mapping — a foreign
        file, or one truncated and rewritten by another tool — must count
        a miss and re-simulate, not raise ``KeyError`` mid-run."""
        from repro.harness.cache import CACHE_FORMAT_VERSION

        cache = ResultCache(tmp_path)
        fingerprint = "d" * 64
        tmp_path.mkdir(parents=True, exist_ok=True)
        version = CACHE_FORMAT_VERSION
        for payload in (
            '{"benchmark": "gzip"}',  # no format marker, no stats
            '{"stats": 42}',  # no format marker
            f'{{"format": {version}}}',  # our format, stats missing
            f'{{"format": {version}, "stats": 42}}',  # stats not a mapping
            f'{{"format": {version}, "stats": ["cycles", 1]}}',
            '{"format": 999, "stats": {"cycles": 1}}',  # foreign format
            '["not", "an", "object"]',
        ):
            cache.path_for(fingerprint).write_text(payload)
            assert cache.load(fingerprint) is None, payload
        assert cache.misses == 7
        assert cache.hits == 0


class TestWorkerTraceCounters:
    """Trace-cache traffic observed inside pool workers must reach the
    runner's ``TraceCache`` instead of dying with the worker process."""

    def test_job_payload_reports_local_cache_deltas(self, tmp_path):
        job = SimulationJob(
            "gzip", "baseline", TINY_CONFIG, trace_cache_dir=str(tmp_path)
        )
        clear_trace_memo()
        payload = run_simulation_job(job)
        assert payload["trace_cache"] == {
            "hits": 0,
            "misses": 1,
            "stores": 1,
            "evictions": 0,
        }
        clear_trace_memo()
        assert run_simulation_job(job)["trace_cache"]["hits"] == 1

    def test_in_process_path_reports_no_deltas(self, tmp_path):
        """With the runner's live cache passed in, counters accumulate on
        it directly; shipping deltas too would double count."""
        cache = TraceCache(tmp_path)
        job = SimulationJob(
            "gzip", "baseline", TINY_CONFIG, trace_cache_dir=str(tmp_path)
        )
        clear_trace_memo()
        payload = run_simulation_job(job, None, cache)
        assert "trace_cache" not in payload
        assert cache.misses == 1 and cache.stores == 1

    def test_pool_worker_traffic_folds_into_the_runner(self, tmp_path):
        clear_trace_memo()
        runner = ParallelSuiteRunner(TINY_CONFIG, workers=2, cache_dir=str(tmp_path))
        runner.run_suite(techniques=("baseline", "abella"))
        cache = runner.trace_cache
        # Every cell ran in a worker, yet the traffic is visible here:
        # each of the two benchmarks was emulated and stored at least
        # once (after a counted miss), and before the fold fix all four
        # counters stayed at zero on parallel runs.
        assert cache.stores >= 2
        assert cache.misses >= 2
        assert cache.hits + cache.misses + cache.stores > 0


class TestStatsSerialisation:
    def test_roundtrip_identity(self):
        stats = SimulationStats(cycles=42, iq_broadcasts=9)
        assert dataclasses.asdict(stats_from_dict(stats_to_dict(stats))) == (
            dataclasses.asdict(stats)
        )

    def test_unknown_fields_are_ignored(self):
        payload = stats_to_dict(SimulationStats(cycles=1))
        payload["counter_from_the_future"] = 99
        assert stats_from_dict(payload).cycles == 1


class TestWorkerValidation:
    def test_rejects_nonpositive_worker_counts(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(TINY_CONFIG, workers=0)

    def test_env_default_is_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        runner = ParallelSuiteRunner(TINY_CONFIG)
        assert runner.workers == 3


class TestCacheGC:
    """Offline maintenance: python -m repro.harness.cache gc <dir>."""

    def test_orphaned_tmp_files_are_swept_by_age(self, tmp_path):
        import os
        import time

        from repro.harness.cache import collect_garbage

        cache = ResultCache(tmp_path)
        cache.store("a" * 64, SimulationStats(cycles=1))
        fresh = tmp_path / ".tmp-fresh.json"
        fresh.write_text("{}")
        orphan = tmp_path / ".tmp-orphan.json"
        orphan.write_text("{}")
        stale = time.time() - 7200
        os.utime(orphan, (stale, stale))

        summary = collect_garbage(tmp_path, tmp_max_age_seconds=3600)
        assert summary["tmp_removed"] == 1
        assert not orphan.exists()
        assert fresh.exists()  # a live writer may still own it
        assert summary["entries_before"] == 1 and summary["entries_removed"] == 0
        assert cache.load("a" * 64) is not None

    def test_entry_and_byte_caps_evict_lru(self, tmp_path):
        import os
        import time

        from repro.harness.cache import collect_garbage

        cache = ResultCache(tmp_path)
        now = time.time()
        for index in range(5):
            path = cache.store(str(index) * 64, SimulationStats(cycles=index))
            os.utime(path, (now - 100 + index, now - 100 + index))

        summary = collect_garbage(tmp_path, max_entries=3)
        assert summary["entries_removed"] == 2
        assert cache.load("0" * 64) is None  # oldest went first
        assert cache.load("4" * 64) is not None

        entry_bytes = cache.path_for("4" * 64).stat().st_size
        summary = collect_garbage(tmp_path, max_bytes=entry_bytes)
        assert summary["entries_removed"] == 2
        assert len(cache) == 1

    def test_gc_tree_covers_traces_and_queue(self, tmp_path):
        import os
        import time

        from repro.harness.cache import gc_cache_tree

        ResultCache(tmp_path).store("a" * 64, SimulationStats(cycles=1))
        traces = tmp_path / "traces"
        traces.mkdir()
        (traces / "t.trace.bin").write_bytes(b"x" * 100)
        (traces / "u.trace.bin").write_bytes(b"y" * 100)
        queue_pending = tmp_path / "queue" / "pending"
        queue_pending.mkdir(parents=True)
        job_file = queue_pending / ("b" * 64 + ".json")
        job_file.write_text("{}")
        orphan = queue_pending / ".tmp-dead.json"
        orphan.write_text("{}")
        stale = time.time() - 7200
        os.utime(orphan, (stale, stale))

        queue_done = tmp_path / "queue" / "done"
        queue_done.mkdir(parents=True)
        fresh_marker = queue_done / ("c" * 64 + ".json")
        fresh_marker.write_text("{}")
        old_marker = queue_done / ("d" * 64 + ".json")
        old_marker.write_text("{}")
        ancient = time.time() - 8 * 24 * 3600
        os.utime(old_marker, (ancient, ancient))

        summaries = gc_cache_tree(tmp_path, max_trace_bytes=100)
        by_dir = {s["directory"]: s for s in summaries}
        assert by_dir[str(traces)]["entries_removed"] == 1
        assert by_dir[str(queue_pending)]["tmp_removed"] == 1
        # Live queue protocol files are never gc victims...
        assert job_file.exists()
        # ...but consumed completion markers expire by age.
        assert by_dir[str(queue_done)]["entries_removed"] == 1
        assert not old_marker.exists()
        assert fresh_marker.exists()

    def test_gc_cli_prints_a_summary(self, tmp_path, capsys):
        from repro.harness.cache import main

        ResultCache(tmp_path).store("a" * 64, SimulationStats(cycles=1))
        assert main(["gc", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kept 1 entries" in out

    def test_empty_directory_is_a_clean_noop(self, tmp_path):
        from repro.harness.cache import collect_garbage

        summary = collect_garbage(tmp_path / "missing")
        assert summary["entries_before"] == 0
        assert summary["tmp_removed"] == 0
