"""Table 2: compilation time, baseline versus the full analysis pass."""

from repro.harness.tables import table2


def test_table2_compile_times(benchmark, runner):
    result = benchmark.pedantic(table2, args=(runner,), rounds=1, iterations=1)
    print("\n" + result.to_text())
    rows = result.table.rows
    assert len(rows) == len(runner.config.benchmarks)
    # The paper's gcc dominates compile cost because of its control-flow
    # complexity; in the synthetic suite that shows up as gcc having by far
    # the most basic blocks to analyse and the most hints to emit.  (Raw
    # seconds are dominated by loop-body size here, so the slowest wall-clock
    # entry can differ -- recorded as a deviation in EXPERIMENTS.md.)
    by_name = {row.program_name: row for row in rows}
    assert by_name["gcc"].num_blocks == max(row.num_blocks for row in rows)
    assert by_name["gcc"].hints_emitted == max(row.hints_emitted for row in rows)
    # The full pass always costs more than the structural analyses alone.
    assert all(row.limited_seconds >= row.baseline_seconds * 0.5 for row in rows)
