"""Issue-queue resizing techniques: the paper's scheme and its baselines.

Each technique is a *policy* object plugged into the timing core.  A policy
declares how wakeup is gated, whether issue-queue and register-file banks
may be turned off, and whether compiler hints are honoured; it can also
adjust limits every cycle (the hardware-adaptive abella scheme).

Policies provided:

* :class:`~repro.techniques.fixed.BaselinePolicy` -- conventional 80-entry
  queue, ungated wakeup, all banks always on.  Every "savings" number in
  the paper (and in this reproduction) is measured against this machine.
* :class:`~repro.techniques.nonempty.NonEmptyPolicy` -- Folegnani &
  González's precharge gating of empty/ready operands, no resizing
  (the ``nonEmpty`` bar of figure 8).
* :class:`~repro.techniques.abella.AbellaPolicy` -- the IqRob64 hardware
  heuristic of Abella & González: periodically shrinks/grows the usable
  issue queue and ROB based on observed behaviour.
* :class:`~repro.techniques.software.SoftwareDirectedPolicy` -- the paper's
  contribution: the compiler's hints drive the ``new_head``/``max_new_range``
  mechanism (NOOP, Extension and Improved variants differ only in how the
  program was instrumented).
"""

from repro.techniques.base import ResizingPolicy
from repro.techniques.fixed import BaselinePolicy, FixedLimitPolicy
from repro.techniques.nonempty import NonEmptyPolicy
from repro.techniques.abella import AbellaPolicy
from repro.techniques.software import SoftwareDirectedPolicy

__all__ = [
    "ResizingPolicy",
    "BaselinePolicy",
    "FixedLimitPolicy",
    "NonEmptyPolicy",
    "AbellaPolicy",
    "SoftwareDirectedPolicy",
]
