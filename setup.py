"""Setup shim so editable installs work without the `wheel` package.

The project metadata lives in pyproject.toml; this file only enables the
legacy `pip install -e .` code path on environments whose setuptools cannot
build PEP 660 editable wheels.
"""
from setuptools import setup

setup()
