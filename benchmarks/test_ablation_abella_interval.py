"""Ablation: the abella heuristic's evaluation interval.

The paper's core argument against hardware-adaptive schemes is reaction
delay: a longer evaluation interval reacts more slowly to phase changes.
This bench sweeps the interval and reports the loss/savings trade-off.
"""

from repro.power import build_power_report, power_savings
from repro.techniques import AbellaPolicy, BaselinePolicy
from repro.uarch import simulate
from repro.workloads import build_benchmark


BUDGET = dict(max_instructions=6_000, warmup_instructions=2_000)


def run_interval_sweep():
    program = build_benchmark("twolf")
    baseline_policy = BaselinePolicy()
    baseline = simulate(program, baseline_policy, **BUDGET)
    baseline_power = build_power_report(baseline, baseline_policy)
    results = {}
    for interval in (256, 768, 2048):
        policy = AbellaPolicy(interval_cycles=interval)
        stats = simulate(program, policy, **BUDGET)
        savings = power_savings(baseline_power, build_power_report(stats, policy))
        results[interval] = (
            100 * (1 - stats.ipc / baseline.ipc),
            100 * savings.iq_dynamic,
            len(policy.decisions),
        )
    return results


def test_abella_interval_ablation(benchmark):
    results = benchmark.pedantic(run_interval_sweep, rounds=1, iterations=1)
    print()
    for interval, (loss, saving, decisions) in results.items():
        print(f"  interval {interval:5d} cycles: loss {loss:5.1f}%  "
              f"IQ dyn saving {saving:5.1f}%  resize decisions {decisions}")
    # Longer intervals mean fewer adaptation decisions.
    assert results[256][2] >= results[2048][2]
