"""Window-sharding equivalence, planning and stitching tests.

The contract (see :mod:`repro.harness.shard`): with ``overlap="full"``
the stitched statistics of a sharded run are **bit-identical** to one
sequential replay for every technique, a finite overlap stays within the
documented tolerance, and the sharded ``ParallelSuiteRunner`` produces
the same metrics as the plain one while caching under a distinct key.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.shard import (
    ShardJob,
    compare_sharded_to_sequential,
    plan_shards,
    run_sharded,
    shard_span_entries,
)
from repro.uarch import SimulationStats, merge_stats
from repro.uarch.trace import commit_mask, get_trace_columns
from repro.workloads import build_benchmark

CONFIG = RunConfig(
    benchmarks=("gzip",), max_instructions=6_000, warmup_instructions=1_500
)
SPAN = 2_048
WINDOW = 1_024

#: Documented stitching tolerance for finite overlaps at tier-1 budgets:
#: stitched IPC within 5% of sequential (a 2k-entry overlap measures
#: ~0.3% on gzip; the bound leaves headroom for other workloads).
FINITE_OVERLAP_IPC_TOLERANCE = 0.05


class TestExactStitching:
    @pytest.mark.parametrize(
        "technique", ["baseline", "nonempty", "abella", "noop", "extension", "improved"]
    )
    def test_full_overlap_is_bit_identical(self, technique):
        result = compare_sharded_to_sequential(
            "gzip",
            technique,
            CONFIG,
            span_entries=SPAN,
            overlap="full",
            trace_window=WINDOW,
        )
        assert result["shards"] >= 3
        assert dataclasses.asdict(result["stitched"]) == dataclasses.asdict(
            result["sequential"]
        )

    def test_finite_overlap_within_tolerance(self):
        result = compare_sharded_to_sequential(
            "gzip",
            "baseline",
            CONFIG,
            span_entries=SPAN,
            overlap=2_048,
            trace_window=WINDOW,
        )
        assert result["deltas"]["committed"] == 0.0  # spans partition exactly
        assert result["deltas"]["ipc"] < FINITE_OVERLAP_IPC_TOLERANCE

    def test_single_span_degenerates_to_sequential(self):
        result = compare_sharded_to_sequential(
            "gzip",
            "baseline",
            CONFIG,
            span_entries=10_000,  # larger than the whole trace
            overlap="full",
            trace_window=WINDOW,
        )
        assert result["shards"] == 1
        assert dataclasses.asdict(result["stitched"]) == dataclasses.asdict(
            result["sequential"]
        )


class TestPlanning:
    def test_spans_partition_the_trace(self):
        program = build_benchmark("gzip")
        spans = plan_shards(program, 6_000, 1_500, SPAN)
        columns = get_trace_columns(program, 6_000)
        length = len(columns[0])
        assert spans[0].start == 0
        assert spans[-1].stop == length
        for left, right in zip(spans, spans[1:]):
            assert left.stop == right.start
        # Full overlap: every shard warms from the trace's beginning.
        assert all(span.warm_start == 0 for span in spans)
        # Interior shards feed slack past their span; the last runs out.
        for span in spans[:-1]:
            assert span.feed_stop > span.stop
            assert span.measure_commits is not None and span.measure_commits > 0
        assert spans[-1].feed_stop == length
        assert spans[-1].measure_commits is None

    def test_commit_counts_translate_entry_boundaries(self):
        program = build_benchmark("gzip")
        columns = get_trace_columns(program, 6_000)
        mask = commit_mask(program, columns)
        spans = plan_shards(program, 6_000, 1_500, SPAN)
        for span in spans:
            expected_warmup = sum(mask[span.warm_start : span.start])
            if span.index == 0:
                # Shard 0's warm-up is the run's own (commit-count) warm-up.
                assert span.warmup_commits == 1_500
            else:
                assert span.warmup_commits == expected_warmup
            if span.measure_commits is not None:
                expected = sum(mask[span.start : span.stop])
                if span.index == 0:
                    expected -= 1_500
                assert span.measure_commits == expected

    def test_finite_overlap_clamps_at_trace_start(self):
        program = build_benchmark("gzip")
        spans = plan_shards(program, 6_000, 1_500, SPAN, overlap=100_000)
        assert all(span.warm_start == 0 for span in spans)

    def test_first_span_grows_past_the_warmup(self):
        program = build_benchmark("gzip")
        # Tiny spans: several whole spans fit inside the 1500-commit
        # warm-up; the planner must merge them into shard 0.
        spans = plan_shards(program, 6_000, 1_500, 512)
        assert spans[0].measure_commits is None or spans[0].measure_commits > 0
        columns = get_trace_columns(program, 6_000)
        mask = commit_mask(program, columns)
        assert sum(mask[: spans[0].stop]) > 1_500

    def test_bad_arguments_are_rejected(self):
        program = build_benchmark("gzip")
        with pytest.raises(ValueError):
            plan_shards(program, 6_000, 1_500, 0)
        with pytest.raises(ValueError):
            plan_shards(program, 6_000, 1_500, SPAN, overlap="partial")
        with pytest.raises(ValueError):
            plan_shards(program, 6_000, 1_500, SPAN, overlap=-1)
        with pytest.raises(ValueError):
            shard_span_entries(0)

    def test_shard_fingerprints_are_distinct(self):
        program = build_benchmark("gzip")
        spans = plan_shards(program, 6_000, 1_500, SPAN)
        jobs = [
            ShardJob("gzip", "baseline", CONFIG, span, cell_fingerprint="cell")
            for span in spans
        ]
        fingerprints = {job.fingerprint() for job in jobs}
        assert len(fingerprints) == len(jobs)


class TestMergeStats:
    def test_counters_add_and_derived_metrics_follow(self):
        a = SimulationStats(
            cycles=10, committed_instructions=20, iq_occupancy_sum=50,
            sampled_cycles=10, iq_banks_total=8, rf_banks_total=8,
        )
        b = SimulationStats(
            cycles=30, committed_instructions=30, iq_occupancy_sum=70,
            sampled_cycles=30, iq_banks_total=8, rf_banks_total=8,
        )
        a.extra["note"] = 1.0
        b.extra["note"] = 2.0
        merged = merge_stats([a, b])
        assert merged.cycles == 40
        assert merged.committed_instructions == 50
        assert merged.ipc == 50 / 40
        assert merged.avg_iq_occupancy == 120 / 40
        assert merged.iq_banks_total == 8
        assert merged.extra == {"note": 3.0}

    def test_mismatched_machines_are_rejected(self):
        a = SimulationStats(iq_banks_total=8, rf_banks_total=8)
        b = SimulationStats(iq_banks_total=4, rf_banks_total=8)
        with pytest.raises(ValueError):
            merge_stats([a, b])
        with pytest.raises(ValueError):
            merge_stats([])


class TestShardedRunner:
    def test_sharded_runner_matches_plain_runner(self, tmp_path):
        plain = ParallelSuiteRunner(CONFIG, workers=1)
        plain.run_suite(techniques=("baseline", "abella"))
        sharded = ParallelSuiteRunner(
            CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            trace_window=WINDOW,
            shard_span_windows=2,  # 2 windows = the 2048-entry span
            shard_overlap="full",
        )
        sharded.run_suite(techniques=("baseline", "abella"))
        for technique in ("baseline", "abella"):
            assert dataclasses.asdict(
                sharded.result("gzip", technique).stats
            ) == dataclasses.asdict(plain.result("gzip", technique).stats)

    def test_sharded_cells_cache_under_their_own_key(self, tmp_path):
        sharded = ParallelSuiteRunner(
            CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            trace_window=WINDOW,
            shard_span_windows=2,
            shard_overlap=2_048,
        )
        job = sharded._job("gzip", "baseline")
        assert sharded._fingerprint(job) != job.fingerprint()
        sharded.run_suite(techniques=("baseline",))
        # A warm re-run with the same plan hits the sharded key.
        warm = ParallelSuiteRunner(
            CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            trace_window=WINDOW,
            shard_span_windows=2,
            shard_overlap=2_048,
        )
        warm.run_suite(techniques=("baseline",))
        assert warm.simulations_run == 0
        # A plain runner must not see the sharded entry.
        plain = ParallelSuiteRunner(CONFIG, workers=1, cache_dir=str(tmp_path))
        assert plain._cached_stats(plain._job("gzip", "baseline")) is None

    def test_sharded_queue_backend_matches_local(self, tmp_path):
        """Sharding composes with the distributed queue: shard jobs ride
        the same lease/complete protocol and stitch identically."""
        local = run_sharded(
            "gzip",
            "baseline",
            CONFIG,
            span_entries=SPAN,
            overlap="full",
            trace_window=WINDOW,
        )
        runner = ParallelSuiteRunner(
            CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            trace_window=WINDOW,
            backend="queue",
            queue_ttl=30,
            queue_timeout=300,
            shard_span_windows=2,
            shard_overlap="full",
        )
        runner.run_suite(techniques=("baseline",))
        assert dataclasses.asdict(runner.result("gzip", "baseline").stats) == (
            dataclasses.asdict(local)
        )
