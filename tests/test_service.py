"""End-to-end tests for the experiment service daemon.

Covers the PR's acceptance gates: ≥ 8 concurrent clients whose
overlapping grids collapse to one executed job per unique fingerprint
(checked via the queue/service counters), priority-ordered claiming
observed through the service path, admission-control rejections under
overload, results bit-identical to ``ParallelSuiteRunner(
backend="local")``, and a seeded chaos soak (torn writes, listing
delays, mid-job worker death) that holds bit-identical results with a
clean gc-swept tree.

The daemon runs in a background thread per test (its event loop owns
all service state, so tests interact only through sockets and — after
``stop()`` — through counters).  ``assist=True`` makes the loop itself
execute queued jobs, which keeps most tests single-process and fast;
the worker-death test uses real subprocess workers.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.cache import gc_cache_tree, stats_to_dict
from repro.harness.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    WORKER_DEATH_EXIT_CODE,
    installed,
)
from repro.harness.queue import WorkQueue, spawn_local_workers
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ExperimentService
from repro.service.protocol import RequestError, validate_request

BENCHMARKS = ("gzip", "mcf")
TECHNIQUES = ("baseline", "noop")
CONFIG_OVERRIDES = {"max_instructions": 2_500, "warmup_instructions": 500}
TINY_CONFIG = RunConfig(
    benchmarks=BENCHMARKS,
    max_instructions=CONFIG_OVERRIDES["max_instructions"],
    warmup_instructions=CONFIG_OVERRIDES["warmup_instructions"],
)
CELLS = len(BENCHMARKS) * len(TECHNIQUES)


class _Daemon:
    """A served ExperimentService on an ephemeral port, thread-backed."""

    def __init__(self, cache_dir, **kwargs):
        kwargs.setdefault("poll_floor", 0.01)
        kwargs.setdefault("poll_ceiling", 0.1)
        self.service = ExperimentService(cache_dir, **kwargs)
        self.host, self.port = self.service.open()
        self.thread = threading.Thread(
            target=self.service.serve_forever, daemon=True
        )
        self.thread.start()

    def client(self, timeout=120.0) -> ServiceClient:
        return ServiceClient(self.host, self.port, timeout=timeout)

    def __enter__(self) -> "_Daemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.service.stop()
        self.thread.join(timeout=30)
        assert not self.thread.is_alive()


def _local_baseline(cache_dir) -> dict:
    """The same grid through the batch driver's local backend."""
    runner = ParallelSuiteRunner(
        TINY_CONFIG, workers=1, cache_dir=str(cache_dir)
    )
    results = runner.run_suite(techniques=TECHNIQUES)
    return {
        key: stats_to_dict(result.stats) for key, result in results.items()
    }


def _cells_by_key(cells: list) -> dict:
    return {
        (cell["benchmark"], cell["technique"]): cell["stats"] for cell in cells
    }


# ----------------------------------------------------------------------
# Protocol validation (the chokepoint itself)
# ----------------------------------------------------------------------
class TestValidateRequest:
    def test_normalizes_a_grid_request(self):
        normalized = validate_request(
            {
                "op": "grid",
                "id": "r1",
                "benchmarks": ["gzip", "mcf", "gzip"],
                "techniques": ["baseline"],
                "config": dict(CONFIG_OVERRIDES),
                "priority": 4,
            }
        )
        assert normalized["benchmarks"] == ["gzip", "mcf"]  # deduped, ordered
        assert normalized["techniques"] == ["baseline"]
        assert normalized["priority"] == 4
        assert normalized["config"] == CONFIG_OVERRIDES

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {"op": "explode"},
            {"op": "grid", "benchmarks": [], "techniques": ["baseline"]},
            {"op": "grid", "benchmarks": ["nope"], "techniques": ["baseline"]},
            {"op": "simulate", "benchmark": "gzip", "technique": "nope"},
            {
                "op": "simulate",
                "benchmark": "gzip",
                "technique": "baseline",
                "config": {"processor_config": {}},
            },
            {
                "op": "simulate",
                "benchmark": "gzip",
                "technique": "baseline",
                "config": {"max_instructions": -5},
            },
            {
                "op": "simulate",
                "benchmark": "gzip",
                "technique": "baseline",
                "config": {"max_instructions": 100, "warmup_instructions": 100},
            },
            {
                "op": "simulate",
                "benchmark": "gzip",
                "technique": "baseline",
                "priority": 99,
            },
            {
                "op": "simulate",
                "benchmark": "gzip",
                "technique": "baseline",
                "priority": "high",
            },
            {"op": "status", "version": 2},
        ],
    )
    def test_rejects_malformed_payloads(self, payload):
        with pytest.raises(RequestError):
            validate_request(payload)


# ----------------------------------------------------------------------
# Single-client round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_simulate_streams_accept_progress_result(self, tmp_path):
        with _Daemon(tmp_path, config=TINY_CONFIG, assist=True) as daemon:
            with daemon.client() as client:
                events = []
                stats = client.simulate(
                    "gzip", "baseline", on_event=events.append
                )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        assert "progress" in kinds
        assert stats["committed_instructions"] > 0

    def test_identical_rerequest_is_a_cache_hit(self, tmp_path):
        with _Daemon(tmp_path, config=TINY_CONFIG, assist=True) as daemon:
            with daemon.client() as client:
                first = client.simulate("gzip", "baseline")
                events = []
                second = client.simulate(
                    "gzip", "baseline", on_event=events.append
                )
        assert first == second
        accepted = next(e for e in events if e["event"] == "accepted")
        assert accepted["cached"] == 1 and accepted["enqueued"] == 0
        progress = next(e for e in events if e["event"] == "progress")
        assert progress["source"] == "cache"

    def test_invalid_requests_are_rejected_not_fatal(self, tmp_path):
        with _Daemon(tmp_path, config=TINY_CONFIG, assist=True) as daemon:
            with daemon.client() as client:
                with pytest.raises(ServiceError, match="unknown"):
                    client.request({"op": "grid", "benchmarks": ["nope"],
                                    "techniques": ["baseline"]})
                # The connection and the daemon both survive.
                stats = client.simulate("gzip", "baseline")
            assert daemon.service.requests_rejected == 1
        assert stats["committed_instructions"] > 0

    def test_results_bit_identical_to_local_backend(self, tmp_path):
        baseline = _local_baseline(tmp_path / "local")
        with _Daemon(
            tmp_path / "service", config=TINY_CONFIG, assist=True
        ) as daemon:
            with daemon.client() as client:
                cells = client.grid(
                    BENCHMARKS, TECHNIQUES, config=CONFIG_OVERRIDES
                )
        assert _cells_by_key(cells) == baseline


# ----------------------------------------------------------------------
# Dedupe: N concurrent clients, one executed job per fingerprint
# ----------------------------------------------------------------------
class TestConcurrentDedupe:
    CLIENTS = 8

    def test_overlapping_grids_collapse_to_one_job_each(self, tmp_path):
        with _Daemon(tmp_path, config=TINY_CONFIG, assist=True) as daemon:

            def one_client(index: int) -> dict:
                with daemon.client() as client:
                    return _cells_by_key(
                        client.grid(
                            BENCHMARKS, TECHNIQUES, config=CONFIG_OVERRIDES
                        )
                    )

            with ThreadPoolExecutor(max_workers=self.CLIENTS) as pool:
                all_results = list(
                    pool.map(one_client, range(self.CLIENTS))
                )
            service = daemon.service
            queue = service.queue
            # Every client got the full grid, and every grid agrees.
            assert len(all_results) == self.CLIENTS
            for result in all_results[1:]:
                assert result == all_results[0]
            # The collapse, by counter: the queue accepted exactly one
            # envelope per unique fingerprint and produced exactly one
            # marker each, no matter how many clients asked; every
            # other cell resolved by subscription or from the cache.
            assert queue.enqueued == CELLS
            assert len(queue.list_done()) == CELLS
            assert queue.list_poisoned() == set()
            assert service.cells_enqueued == CELLS
            assert (
                service.cells_deduped + service.cells_cached
                == self.CLIENTS * CELLS - CELLS
            )

    def test_inflight_subscriber_counts_in_status(self, tmp_path):
        # No workers, no assist: jobs stay in flight while we look.
        with _Daemon(tmp_path, config=TINY_CONFIG, assist=False) as daemon:
            first = daemon.client()
            second = daemon.client()
            try:
                for client in (first, second):
                    client._send(
                        {
                            "op": "simulate",
                            "id": "sub",
                            "benchmark": "gzip",
                            "technique": "baseline",
                        }
                    )
                    accepted = client._read_event()
                    assert accepted["event"] == "accepted"
                assert accepted["deduped"] == 1  # the second subscription
                with daemon.client() as probe:
                    status = probe.status()
                assert status["service"]["inflight"] == 1
                assert status["service"]["inflight_subscribers"] == 2
                assert status["queue"]["pending_by_priority"] == {"0": 1}
            finally:
                first.close()
                second.close()


# ----------------------------------------------------------------------
# Priority bands through the service path
# ----------------------------------------------------------------------
class TestPriorityScheduling:
    def test_service_requests_claim_in_band_order(self, tmp_path):
        with _Daemon(tmp_path, config=TINY_CONFIG, assist=False) as daemon:
            with daemon.client() as batch, daemon.client() as urgent:
                batch._send(
                    {
                        "op": "grid",
                        "id": "batch",
                        "benchmarks": list(BENCHMARKS),
                        "techniques": list(TECHNIQUES),
                        "priority": 2,
                    }
                )
                assert batch._read_event()["event"] == "accepted"
                urgent._send(
                    {
                        "op": "simulate",
                        "id": "urgent",
                        "benchmark": "gzip",
                        "technique": "abella",
                        "priority": 9,
                    }
                )
                assert urgent._read_event()["event"] == "accepted"
                with daemon.client() as probe:
                    status = probe.status()
                assert status["queue"]["pending_by_priority"] == {
                    "2": CELLS,
                    "9": 1,
                }
                assert status["service"]["inflight_by_priority"] == {
                    "2": CELLS,
                    "9": 1,
                }
            # A fresh consumer (a worker on another host) claims the
            # urgent band first, reading bands from the envelopes.
            consumer = WorkQueue(tmp_path, ttl=30)
            first_claim = consumer.claim("w-probe")
            assert first_claim.envelope["priority"] == 9
            assert first_claim.envelope["technique"] == "abella"


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_global_overload_rejects_whole_request(self, tmp_path):
        with _Daemon(
            tmp_path, config=TINY_CONFIG, assist=False, max_inflight=2
        ) as daemon:
            with daemon.client() as client:
                with pytest.raises(ServiceError, match="overload"):
                    client.grid(BENCHMARKS, TECHNIQUES)
                # A request that fits is still admitted afterwards.
                client._send(
                    {
                        "op": "simulate",
                        "id": "fits",
                        "benchmark": "gzip",
                        "technique": "baseline",
                    }
                )
                assert client._read_event()["event"] == "accepted"
            assert daemon.service.requests_rejected == 1
            assert daemon.service.requests_accepted == 1

    def test_per_client_bound_rejects_the_greedy_client_only(self, tmp_path):
        with _Daemon(
            tmp_path,
            config=TINY_CONFIG,
            assist=False,
            max_inflight=64,
            max_inflight_per_client=3,
        ) as daemon:
            with daemon.client() as greedy, daemon.client() as modest:
                with pytest.raises(ServiceError, match="overload"):
                    greedy.grid(BENCHMARKS, TECHNIQUES)  # 4 > 3
                modest._send(
                    {
                        "op": "grid",
                        "id": "m",
                        "benchmarks": list(BENCHMARKS),
                        "techniques": ["baseline"],  # 2 <= 3
                    }
                )
                assert modest._read_event()["event"] == "accepted"

    def test_resolved_cells_release_admission_charges(self, tmp_path):
        with _Daemon(
            tmp_path, config=TINY_CONFIG, assist=True, max_inflight=CELLS
        ) as daemon:
            with daemon.client() as client:
                # Exactly at the bound: admitted and served...
                first = client.grid(
                    BENCHMARKS, TECHNIQUES, config=CONFIG_OVERRIDES
                )
                # ...and once resolved the charges are gone, so the
                # same load is admitted again (now all cache hits).
                second = client.grid(
                    BENCHMARKS, TECHNIQUES, config=CONFIG_OVERRIDES
                )
        assert _cells_by_key(first) == _cells_by_key(second)
        assert daemon.service.requests_rejected == 0


# ----------------------------------------------------------------------
# Chaos soak over the service path
# ----------------------------------------------------------------------
SOAK_PLANS = tuple(
    FaultPlan(seed=seed, rate=0.15, fire_limit=1, sleep_scale=0.05)
    for seed in (11, 12, 13)
)

DOCUMENTED_QUEUE_DIRS = {"pending", "leases", "done", "poison", "workers"}


def _service_grid(cache_dir, clients: int = 4) -> list:
    """``clients`` concurrent clients, one shared daemon, same grid."""
    with _Daemon(
        cache_dir, config=TINY_CONFIG, assist=True, queue_ttl=30
    ) as daemon:

        def one_client(index: int) -> dict:
            with daemon.client() as client:
                return _cells_by_key(
                    client.grid(BENCHMARKS, TECHNIQUES, config=CONFIG_OVERRIDES)
                )

        with ThreadPoolExecutor(max_workers=clients) as pool:
            results = list(pool.map(one_client, range(clients)))
        enqueued = daemon.service.queue.enqueued
    return [results, enqueued]


class TestChaosSoak:
    def test_service_grid_bit_identical_under_fault_matrix(self, tmp_path):
        baseline_results, _ = _service_grid(tmp_path / "fault-free")
        assert len(baseline_results[0]) == CELLS

        total_fired = 0
        for plan in SOAK_PLANS:
            cache_dir = tmp_path / f"seed{plan.seed}"
            with installed(plan) as injector:
                chaos_results, enqueued = _service_grid(cache_dir)
                total_fired += injector.fired_total()
            # Bit-identical per-cell statistics for every client.
            for result in chaos_results:
                assert result == baseline_results[0], (
                    f"stats diverged under {plan.to_spec()}"
                )
            # Dedupe held under faults: one envelope per unique cell
            # despite 4 clients, every job terminated, none poisoned.
            queue = WorkQueue(cache_dir)
            assert enqueued == CELLS
            assert len(queue.list_done()) == CELLS
            assert queue.list_poisoned() == set()
            # Injected crashes may leave temp debris by design; the
            # documented sweep must reclaim all of it.
            gc_cache_tree(cache_dir, tmp_max_age_seconds=0.0)
            queue_root = cache_dir / "queue"
            assert sorted(p.name for p in queue_root.iterdir()) == sorted(
                DOCUMENTED_QUEUE_DIRS
            )
            assert list((queue_root / "leases").iterdir()) == []
            assert list((queue_root / "pending").iterdir()) == []
            for path in cache_dir.rglob(".tmp-*"):
                raise AssertionError(f"orphaned temp file survived: {path}")
        # The matrix is only a gate if it injects somewhere.
        assert total_fired >= 3, f"fault matrix only fired {total_fired}"

    def test_mid_job_worker_death_recovers_through_the_service(self, tmp_path):
        """A subprocess worker dies mid-job under a death-enabled plan;
        the daemon's TTL sweep re-leases the orphan and a clean worker
        finishes the grid — the client sees a complete, correct result
        and the dead worker's exit code proves the death fired."""
        baseline = _local_baseline(tmp_path / "local")
        cache_dir = tmp_path / "service"
        with _Daemon(
            cache_dir, config=TINY_CONFIG, assist=False, queue_ttl=2
        ) as daemon:
            with daemon.client() as client:
                with ThreadPoolExecutor(max_workers=1) as pool:
                    future = pool.submit(
                        client.grid,
                        BENCHMARKS,
                        TECHNIQUES,
                        config=CONFIG_OVERRIDES,
                    )
                    # Wait until the request's jobs are actually queued.
                    queue = WorkQueue(cache_dir, ttl=2)
                    deadline = time.time() + 30
                    while (
                        queue.status()["pending"] == 0
                        and time.time() < deadline
                    ):
                        time.sleep(0.05)
                    assert queue.status()["pending"] > 0

                    plan = FaultPlan(
                        seed=1,
                        rate=1.0,
                        fire_limit=1,
                        sites=("queue.worker-death",),
                        worker_death=True,
                    )
                    os.environ[FAULT_PLAN_ENV] = plan.to_spec()
                    try:
                        [doomed] = spawn_local_workers(
                            cache_dir, 1, ttl=2, poll_interval=0.05
                        )
                        doomed.wait(timeout=120)
                    finally:
                        os.environ.pop(FAULT_PLAN_ENV, None)
                    assert doomed.returncode == WORKER_DEATH_EXIT_CODE

                    # A clean worker (no plan in its environment) joins
                    # the fleet and drains the queue, including the
                    # re-leased orphan of the dead worker.
                    [rescuer] = spawn_local_workers(
                        cache_dir, 1, ttl=2, poll_interval=0.05, drain=True
                    )
                    try:
                        cells = future.result(timeout=180)
                    finally:
                        rescuer.terminate()
                        rescuer.wait(timeout=10)
        assert _cells_by_key(cells) == baseline
