"""Simulation-as-a-service: the experiment front end over the work queue.

The batch driver (:class:`~repro.harness.parallel.ParallelSuiteRunner`)
serves one caller per process; this package serves many.  A long-lived
daemon (:mod:`repro.service.daemon`, ``python -m repro.service
<cache_dir>``) accepts simulation and grid requests from concurrent
clients over a line-delimited-JSON socket protocol
(:mod:`repro.service.protocol`), collapses identical requests onto one
queued job with many subscribers, schedules with priority bands and
admission control, and streams per-subscription progress events.  The
thin blocking :class:`~repro.service.client.ServiceClient` is the
library face of the wire protocol.

See ``docs/service.md`` for the wire protocol, dedupe/subscription
semantics, the priority + admission-control policy and failure modes.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import ExperimentService
from repro.service.protocol import RequestError, validate_request

__all__ = [
    "ExperimentService",
    "RequestError",
    "ServiceClient",
    "validate_request",
]
