"""The paper's worked examples, reproduced exactly.

* Figure 1: limiting the 6-instruction block to 2 IQ entries does not slow
  it down (the block's requirement is 2).
* Figure 3: the DAG analysis needs 4 entries for the example block.
* Figure 4: the loop analysis derives the offsets (i, i+1, i+2, i+2, i+3,
  i+3) and a requirement of 15 entries.
"""

from __future__ import annotations

import pytest

from repro.core import CompilerConfig
from repro.core.loop_analysis import analyse_loop_body
from repro.core.pseudo_queue import PseudoIssueQueue
from repro.isa import Instruction, Opcode
from repro.isa.registers import int_reg as r


@pytest.fixture
def config() -> CompilerConfig:
    # Raw requirements (before the calibration margin) are what the paper's
    # examples quote, so the examples are checked against raw values.
    return CompilerConfig()


def figure1_block() -> list[Instruction]:
    """a,b independent; c<-a, d<-b, e<-(c,d), f<-(b,d); unit latencies."""
    return [
        Instruction.alu(Opcode.ADD, r(1), [r(1)], imm=1),   # a
        Instruction.alu(Opcode.ADD, r(2), [r(2)], imm=2),   # b
        Instruction.alu(Opcode.ADD, r(3), [r(1)], imm=5),   # c (mul in the paper;
        Instruction.alu(Opcode.ADD, r(4), [r(2)], imm=5),   # d  unit latency as assumed there)
        Instruction.alu(Opcode.ADD, r(5), [r(3), r(4)]),    # e
        Instruction.alu(Opcode.ADD, r(6), [r(2), r(4)]),    # f
    ]


def figure3_block() -> list[Instruction]:
    """a; b<-a; c<-b; d<-a; e<-d; f<-d."""
    return [
        Instruction.alu(Opcode.ADD, r(1), [r(10)]),  # a
        Instruction.alu(Opcode.ADD, r(2), [r(1)]),   # b
        Instruction.alu(Opcode.ADD, r(3), [r(2)]),   # c
        Instruction.alu(Opcode.ADD, r(4), [r(1)]),   # d
        Instruction.alu(Opcode.ADD, r(5), [r(4)]),   # e
        Instruction.alu(Opcode.ADD, r(6), [r(4)]),   # f
    ]


def figure4_loop() -> list[Instruction]:
    """a=a+1; b=a+1; c=b+1; d=b+1; e=d+1; f=c+1 (loop body)."""
    return [
        Instruction.alu(Opcode.ADD, r(1), [r(1)], imm=1),  # a
        Instruction.alu(Opcode.ADD, r(2), [r(1)], imm=1),  # b
        Instruction.alu(Opcode.ADD, r(3), [r(2)], imm=1),  # c
        Instruction.alu(Opcode.ADD, r(4), [r(2)], imm=1),  # d
        Instruction.alu(Opcode.ADD, r(5), [r(4)], imm=1),  # e
        Instruction.alu(Opcode.ADD, r(6), [r(3)], imm=1),  # f
    ]


class TestFigure1:
    def test_block_needs_only_two_entries(self, config):
        schedule = PseudoIssueQueue(config).schedule(figure1_block())
        assert schedule.entries_needed == 2

    def test_schedule_takes_three_issue_cycles(self, config):
        schedule = PseudoIssueQueue(config).schedule(figure1_block())
        assert schedule.issue_cycle == [0, 0, 1, 1, 2, 2]

    def test_wakeup_saving_argument(self, config):
        """The limited queue saves wakeups because fewer waiting operands exist.

        The paper quotes 18 wakeups unlimited versus 10 limited (a 44%
        saving); the exact counts depend on modelling details, but limiting
        must never increase the per-broadcast comparisons.
        """
        schedule = PseudoIssueQueue(config).schedule(figure1_block())
        assert max(schedule.per_cycle_need) <= 2


class TestFigure3:
    def test_four_entries_needed(self, config):
        schedule = PseudoIssueQueue(config).schedule(figure3_block())
        assert schedule.entries_needed == 4

    def test_issue_pattern_matches_paper(self, config):
        schedule = PseudoIssueQueue(config).schedule(figure3_block())
        # iteration 0: a; iteration 1: b, d; iteration 2: c, e, f.
        assert schedule.issue_cycle == [0, 1, 2, 1, 2, 2]


class TestFigure4:
    def test_initiation_interval_is_one(self, config):
        requirement = analyse_loop_body(figure4_loop(), config)
        assert requirement.initiation_interval == pytest.approx(1.0, abs=1e-6)

    def test_iteration_offsets_match_paper(self, config):
        requirement = analyse_loop_body(figure4_loop(), config)
        assert requirement.iteration_offsets == [0, 1, 2, 2, 3, 3]

    def test_fifteen_entries_needed(self, config):
        requirement = analyse_loop_body(figure4_loop(), config)
        assert requirement.raw_entries == 15

    def test_cds_contains_the_self_dependent_instruction(self, config):
        requirement = analyse_loop_body(figure4_loop(), config)
        assert 0 in requirement.cds
