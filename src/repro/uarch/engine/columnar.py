"""The columnar replay kernel: numpy structured arrays, batched wakeup.

``ColumnarCore`` subclasses the scalar reference loop and lowers the two
places where the scalar kernel does per-element Python work over whole
structures onto numpy:

* **Trace windows** carry a numpy structured-array lowering
  (:class:`ColumnarWindow`): each incoming
  :class:`~repro.uarch.trace.DecodedTrace` window exposes a record
  array of ``(pc, next_pc, mem_addr, taken, flags, latency, fu_idx)``
  — the batch-operable interchange form, built lazily on first read —
  while the element-read views the scalar stages index share the
  source window's own C-backed arrays (boxed numpy scalar reads in the
  fetch/dispatch loops measure far more expensive than list indexing;
  see :class:`ColumnarWindow`).  The Python-object columns (static
  instruction references, rename specs, issue-queue tags) are shared
  with the source window, never copied.
* **Writeback broadcasts are batched by tag vector**: instead of the
  per-tag consumer-list scan of ``BankedIssueQueue.broadcast``, the
  kernel keeps the issue queue's waiting operands as a ``(capacity ×
  operands)`` tag matrix, matches the cycle's whole destination-tag
  vector against every operand column in one broadcast-equality pass,
  clears the matched cells with one sliced assignment, and derives the
  newly-ready set from per-slot outstanding-operand counts.  Dispatch
  keeps the matrix in sync by rewriting each newly allocated slot's row
  after the scalar dispatch stage runs.

Bit-identity is a hard invariant, not an aspiration.  The machine
semantics all live in the scalar stages this class inherits unchanged
(commit, issue, dispatch admission, fetch, event-driven sampling); the
batched writeback reproduces the scalar loop's counters exactly:

* destination tags within one cycle are unique (each physical register
  has a single in-flight producer), so per-tag wake counts are
  well-defined and the matrix match wakes exactly the (slot, operand)
  pairs the scalar per-tag scan would;
* the gated-comparator count samples the waiting-operand population
  *before each broadcast* in tag order, which the kernel replays over
  the per-tag wake histogram (``Σᵢ (W₀ − Σ_{j<i} wakes_j)``) —
  identical to the scalar running sample for any interleaving;
* ready entries are inserted keyed by allocation age and the issue
  stage selects by sorted age, so insertion order never matters.

The equivalence suite (``tests/test_engines.py``) asserts byte-identical
statistics against the scalar kernel for all six techniques at every
window size, including 1.

numpy is an optional dependency (the ``columnar`` install extra): this
module imports with or without it, and selecting the columnar engine on
a host without numpy raises :class:`ColumnarUnavailableError` naming the
extra — never a bare ``ImportError`` from callsite depth.
"""

from __future__ import annotations

from typing import Optional

try:  # Optional dependency: the scalar engine must work without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _require_numpy tests
    _np = None

from repro.uarch.engine.base import (
    EngineUnavailableError,
    ReplayEngine,
    register_engine,
)
from repro.uarch.engine.scalar import COMPLETED, OutOfOrderCore


class ColumnarUnavailableError(EngineUnavailableError):
    """The columnar kernel was selected but numpy is not installed."""


def numpy_available() -> bool:
    """True when the columnar kernel can actually run on this host."""
    return _np is not None


def _require_numpy() -> None:
    if _np is None:
        raise ColumnarUnavailableError(
            "the columnar replay engine needs numpy, which is not installed "
            "on this host; install the 'columnar' extra (pip install "
            "'.[columnar]', i.e. numpy) or select the scalar kernel "
            "(engine='scalar' / REPRO_REPLAY_KERNEL=scalar)"
        )


def _column_dtype():
    """The structured dtype one trace window is lowered into."""
    return _np.dtype(
        [
            ("pc", _np.int64),
            ("next_pc", _np.int64),
            ("mem_addr", _np.int64),
            ("taken", _np.uint8),
            ("flags", _np.uint8),
            # int64: cycle arithmetic headroom for any vectorized consumer
            # (numpy 2 raises rather than promotes when a python-int operand
            # overflows a narrow array dtype, NEP 50).
            ("latency", _np.int64),
            ("fu_idx", _np.uint8),
        ]
    )


class ColumnarWindow:
    """One decoded window with a structured-array lowering on demand.

    ``columns`` is the lowered record array — the batch-operable
    interchange form of the window, materialised lazily on first read
    (the round-trip equivalence test and any future vectorized stage
    consume it; nothing in the current per-cycle loop does, so eager
    construction would be pure per-window cost on the cold path).  The
    element-read surface the inherited scalar stages index (``pc``,
    ``flags``, ...) **shares the source window's own arrays**: fetch and
    dispatch read one element at a time, and a boxed numpy scalar per
    read costs several times a C-array element while buying nothing
    (measured on the perf bench — field-view reads put the whole kernel
    ~2x behind scalar).  The batched structure that earns its keep —
    the waiting-operand tag matrix — lives in :class:`ColumnarCore`.
    """

    __slots__ = (
        "length",
        "statics",
        "static_idx",
        "pc",
        "next_pc",
        "taken",
        "mem_addr",
        "flags",
        "latency",
        "fu_idx",
        "iq_tag",
        "rename_specs",
        "_columns",
    )

    def __init__(self, trace):
        self.length = trace.length
        self.pc = trace.pc
        self.next_pc = trace.next_pc
        self.mem_addr = trace.mem_addr
        self.taken = trace.taken
        self.flags = trace.flags
        self.latency = trace.latency
        self.fu_idx = trace.fu_idx
        self.statics = trace.statics
        self.static_idx = trace.static_idx
        self.iq_tag = trace.iq_tag
        self.rename_specs = trace.rename_specs
        self._columns = None

    @property
    def columns(self):
        """The window as one numpy structured array (built on first use)."""
        if self._columns is None:
            columns = _np.empty(self.length, dtype=_column_dtype())
            columns["pc"] = self.pc
            columns["next_pc"] = self.next_pc
            columns["mem_addr"] = self.mem_addr
            # Byte columns are bytearrays: frombuffer is a zero-copy view.
            columns["taken"] = _np.frombuffer(self.taken, dtype=_np.uint8)
            columns["flags"] = _np.frombuffer(self.flags, dtype=_np.uint8)
            columns["latency"] = _np.frombuffer(self.latency, dtype=_np.uint8)
            columns["fu_idx"] = _np.frombuffer(self.fu_idx, dtype=_np.uint8)
            self._columns = columns
        return self._columns

    def __len__(self) -> int:
        return self.length


class ColumnarCore(OutOfOrderCore):
    """The scalar machine with columnar trace windows and batched wakeup."""

    def __init__(self, *args, **kwargs):
        _require_numpy()
        super().__init__(*args, **kwargs)
        # At construction fetch and dispatch share the single resident
        # window; lower it once and point both references at the view.
        lowered = ColumnarWindow(self._f_trace)
        self._f_trace = lowered
        self._d_trace = lowered
        # Columnar mirror of the issue queue's waiting operands: row =
        # slot, cell = outstanding source tag (-1 when empty/woken).  The
        # invariant is that a row always describes the slot's *current*
        # occupant: dispatch rewrites the row on allocation, wakeup
        # clears cells, and an entry only leaves the queue once ready
        # (row already all -1) — so a matrix match is exactly the scalar
        # "resident and still waiting on this tag" test.
        capacity = self.iq.capacity
        self._wait_width = 2
        self._wait_tags = _np.full((capacity, self._wait_width), -1, dtype=_np.int64)
        # Outstanding-operand count per slot.  A plain list: it is only
        # ever touched a handful of entries at a time (dispatch width,
        # match count), where Python int ops beat numpy call overhead.
        self._wait_num = [0] * capacity

    # ------------------------------------------------------------------
    # Trace-window lowering
    # ------------------------------------------------------------------
    def _advance_fetch_window(self) -> bool:
        if not super()._advance_fetch_window():
            return False
        # The base method appended the new window and made it the fetch
        # window; replace both references with the lowered view so the
        # dispatch stage later pops the very same object.
        lowered = ColumnarWindow(self._f_trace)
        self._f_trace = lowered
        self._win_queue[-1] = lowered
        return True

    # ------------------------------------------------------------------
    # Dispatch: run the scalar stage, then sync the tag matrix
    # ------------------------------------------------------------------
    def _grow_wait_width(self, needed: int) -> None:
        width = max(needed, self._wait_width * 2)
        grown = _np.full((self.iq.capacity, width), -1, dtype=_np.int64)
        grown[:, : self._wait_width] = self._wait_tags
        self._wait_tags = grown
        self._wait_width = width

    def _dispatch(self) -> None:
        iq = self.iq
        capacity = iq.capacity
        tail_before = iq.tail
        # The allocation age increments exactly once per admitted entry
        # (the tail delta alone is ambiguous when a tiny queue wraps a
        # full turn in one cycle).
        age_before = iq._next_age
        super()._dispatch()
        allocated = iq._next_age - age_before
        if not allocated:
            return
        # The tail advances one slot per allocation, so the new rows are
        # exactly the slots the tail swept this cycle.
        slots = iq.slots
        wn = self._wait_num
        wt = self._wait_tags
        slot = tail_before
        for _ in range(allocated):
            waiting = slots[slot].waiting_tags
            k = len(waiting)
            if k:
                if k > self._wait_width:
                    self._grow_wait_width(k)
                    wt = self._wait_tags
                row = wt[slot]
                for op, tag in enumerate(waiting):
                    row[op] = tag
            wn[slot] = k
            slot = (slot + 1) % capacity

    # ------------------------------------------------------------------
    # Writeback: one tag-vector match instead of per-tag consumer scans
    # ------------------------------------------------------------------
    def _writeback(self) -> None:
        finishing = self._completion_events.pop(self.cycle, None)
        if not finishing:
            return
        iq = self.iq
        iq_consumers = iq._consumers
        tag_ready = self._tag_ready
        int_phys = self.config.int_phys_regs
        cycle = self.cycle
        tags: list[int] = []
        rf_writes = 0
        may_match = False
        for entry in finishing:
            # Inlined ReorderBuffer.mark_completed (as in the scalar stage).
            entry.state = COMPLETED
            entry.completion_cycle = cycle
            for tag in entry.dest_tags:
                if tag < int_phys:
                    rf_writes += 1
                tag_ready[tag] = 1
                tags.append(tag)
                # The scalar dispatch stage (inherited) still registers
                # consumers; matching is columnar, so drop the list to
                # keep the dict bounded — and use its presence as an
                # exact gate: a matrix cell can only hold ``tag`` while
                # an entry waits on it, which is precisely when the tag
                # has a registered consumer list.  Broadcasts nobody
                # waits for (the common case) skip the vectorized pass.
                if iq_consumers.pop(tag, None) is not None:
                    may_match = True
            # Resolve a front-end block if this was the mispredicted branch.
            if (
                self._fetch_blocked_on_seq is not None
                and entry.dyn == self._fetch_blocked_on_seq
            ):
                self._fetch_blocked_on_seq = None
                self._fetch_resume_cycle = max(
                    self._fetch_resume_cycle,
                    cycle + self.config.branch_mispredict_penalty,
                )

        broadcasts = len(tags)
        waiting_before = iq.waiting_operand_count
        cmp_gated = broadcasts * waiting_before
        if may_match and waiting_before:
            np = _np
            # One vectorized pass: the whole cycle's destination-tag
            # vector against every waiting operand column of the queue
            # (the CAM analogue the scalar path does per tag).
            tag_vec = np.asarray(tags, dtype=np.int64)
            wt = self._wait_tags
            rows, cols, _ = np.nonzero(wt[:, :, None] == tag_vec)
            if rows.size:
                # The match set is tiny (bounded by the cycle's wakeups),
                # so the per-match bookkeeping runs in Python: numpy call
                # overhead would dwarf the work.
                matched_tags = wt[rows, cols].tolist()
                wt[rows, cols] = -1
                wakes_by_tag: dict[int, int] = {}
                for tag in matched_tags:
                    wakes_by_tag[tag] = wakes_by_tag.get(tag, 0) + 1
                # The scalar loop samples the waiting-operand population
                # before each broadcast, in tag order; replay that running
                # sample over the wake histogram.
                population = waiting_before
                cmp_gated = 0
                for tag in tags:
                    cmp_gated += population
                    population -= wakes_by_tag.get(tag, 0)
                iq.waiting_operand_count = population
                # Ready-set update: slots whose outstanding count hit
                # zero join the age-keyed ready set (issue selects by
                # sorted age, so insertion order is irrelevant).
                wn = self._wait_num
                slots = iq.slots
                ready_by_age = iq._ready_by_age
                for slot in rows.tolist():
                    remaining = wn[slot] - 1
                    wn[slot] = remaining
                    if remaining == 0:
                        ready = slots[slot]
                        ready.waiting_tags.clear()
                        ready_by_age[ready.age] = ready

        self._sample_dirty = True
        if self._warmup_done and broadcasts:
            self.rename.int_file.record_writes(rf_writes)
            stats = self.stats
            stats.rf_writes += rf_writes
            stats.iq_broadcasts += broadcasts
            stats.iq_cmp_full += broadcasts * iq.cmp_full_per_broadcast
            stats.iq_cmp_gated += cmp_gated


@register_engine
class ColumnarEngine(ReplayEngine):
    """The numpy structured-array kernel (``engine="columnar"``)."""

    name = "columnar"

    def unavailable_reason(self) -> Optional[str]:
        if _np is None:
            return "numpy is not installed (the 'columnar' install extra)"
        return None

    def build_core(
        self,
        trace,
        *,
        config=None,
        policy=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
        measure_instructions: Optional[int] = None,
    ) -> ColumnarCore:
        _require_numpy()
        return ColumnarCore(
            trace,
            config=config,
            policy=policy,
            warmup_instructions=warmup_instructions,
            max_cycles=max_cycles,
            measure_instructions=measure_instructions,
        )
