"""reprolint: per-rule unit tests on fixture snippets plus the tier-1 gate.

Each rule is proven twice — it *fires* on a minimal violating fixture
and it *stays silent* on the corrected version — and the shipped tree
itself must lint clean (``test_shipped_tree_is_clean``), which is what
makes the checker a tier-1 gate: any new invariant violation under
``src/`` fails ``python -m pytest -x -q``.  Skip the gate (not the unit
tests) with ``--no-lint``.

Rules scope themselves by file path, so fixtures opt into a rule by
living under a matching relative path (``tmp/repro/uarch/mod.py``
for determinism, ``tmp/repro/harness/queue.py`` for the transition
table, and so on).
"""

from __future__ import annotations

from pathlib import Path
from textwrap import dedent

import pytest

import repro
from repro.analysis import (
    Finding,
    all_rules,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import main as lint_main


def lint_snippet(source: str, path: str = "repro/somewhere/mod.py"):
    """Lint one dedented snippet as though it lived at ``path``."""
    return lint_source(dedent(source), path)


def rule_ids(findings: list[Finding]) -> set[str]:
    return {finding.rule_id for finding in findings}


# ----------------------------------------------------------------------
# Registry and framework basics
# ----------------------------------------------------------------------
def test_registry_ships_at_least_six_rules_with_unique_ids():
    rules = all_rules()
    ids = [rule.rule_id for rule in rules]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 6
    assert {
        "determinism",
        "atomic-io",
        "queue-transitions",
        "fingerprint-purity",
        "exception-hygiene",
        "optional-deps",
        "retry-discipline",
        "request-validation",
        "telemetry-purity",
    } <= set(ids)
    for rule in rules:
        assert rule.contract  # --list-rules has something to show


def test_get_rules_rejects_unknown_ids():
    with pytest.raises(ValueError, match="unknown rule"):
        get_rules(["no-such-rule"])


def test_findings_carry_source_locations():
    result = lint_snippet(
        """
        try:
            x = 1
        except Exception:
            pass
        """
    )
    (finding,) = result.findings
    assert finding.rule_id == "exception-hygiene"
    assert finding.line == 4
    assert str(finding).startswith("repro/somewhere/mod.py:4:")


def test_syntax_error_becomes_a_finding_not_an_exception():
    result = lint_snippet("def broken(:\n")
    assert rule_ids(result.findings) == {"syntax-error"}


# ----------------------------------------------------------------------
# Rule 1: determinism (scoped to repro/uarch/)
# ----------------------------------------------------------------------
def test_determinism_fires_on_random_import_in_uarch():
    result = lint_snippet("import random\n", "repro/uarch/mod.py")
    assert rule_ids(result.findings) == {"determinism"}


@pytest.mark.parametrize(
    "line", ["import time", "from datetime import datetime", "import datetime"]
)
def test_determinism_fires_on_clock_imports_in_uarch(line):
    result = lint_snippet(line + "\n", "repro/uarch/mod.py")
    assert rule_ids(result.findings) == {"determinism"}


def test_determinism_fires_on_set_iteration_in_uarch():
    result = lint_snippet(
        """
        def f(items):
            for x in set(items):
                yield x
            return [y for y in {1, 2, 3}]
        """,
        "repro/uarch/mod.py",
    )
    assert len(result.findings) == 2
    assert rule_ids(result.findings) == {"determinism"}


def test_determinism_silent_on_sorted_iteration_and_outside_uarch():
    corrected = """
    def f(items):
        for x in sorted(set(items)):
            yield x
    """
    assert lint_snippet(corrected, "repro/uarch/mod.py").findings == []
    # The same nondeterminism outside the replay core is out of scope.
    assert lint_snippet("import random\n", "repro/harness/mod.py").findings == []


# ----------------------------------------------------------------------
# Rule 2: atomic-io (scoped to the cache-tree writer modules)
# ----------------------------------------------------------------------
def test_atomic_io_fires_on_write_mode_open_in_cache_module():
    result = lint_snippet(
        """
        def store(path, payload):
            with open(path, "w") as handle:
                handle.write(payload)
        """,
        "repro/harness/cache.py",
    )
    assert rule_ids(result.findings) == {"atomic-io"}


def test_atomic_io_fires_on_write_text_and_inline_json_dump():
    result = lint_snippet(
        """
        import json

        def store(path, payload):
            path.write_text(payload)
            json.dump(payload, open(path, "w"))
        """,
        "repro/harness/queue.py",
    )
    # write_text, json.dump-into-open, and the inline write-mode open.
    assert len(result.findings) == 3
    assert rule_ids(result.findings) == {"atomic-io"}


def test_atomic_io_silent_on_reads_and_on_publish_atomically():
    corrected = """
    import json
    from repro.atomicio import publish_atomically

    def store(path, payload):
        publish_atomically(path, lambda handle: json.dump(payload, handle))

    def load(path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_binary(path):
        with open(path, "rb") as handle:
            return handle.read()
    """
    assert lint_snippet(corrected, "repro/harness/cache.py").findings == []
    # Unscoped modules may write files directly (local reports etc.).
    writer = 'open(p, "w").write(x)\n'
    assert lint_snippet(writer, "repro/harness/figures.py").findings == []


def test_atomic_io_fires_on_dynamic_mode():
    result = lint_snippet(
        "def f(p, m):\n    return open(p, m)\n", "repro/uarch/trace.py"
    )
    assert rule_ids(result.findings) == {"atomic-io"}


# ----------------------------------------------------------------------
# Rule 3: queue-transitions (scoped to repro/harness/queue.py)
# ----------------------------------------------------------------------
QUEUE_FIXTURE_PATH = "repro/harness/queue.py"


def test_queue_transitions_silent_on_documented_edges():
    documented = """
    import os

    class Q:
        def claim(self, name):
            pending = self.pending_dir / name
            lease = self.leases_dir / name
            os.rename(pending, lease)

        def release(self, claimed):
            os.rename(claimed.lease_path, self.pending_dir / claimed.lease_path.name)

        def poison(self, lease):
            os.replace(lease, self.poison_dir / lease.name)

        def requeue(self, name):
            lease = self.leases_dir / name
            os.rename(lease, self.pending_dir / name)
    """
    assert lint_snippet(documented, QUEUE_FIXTURE_PATH).findings == []


def test_queue_transitions_catch_synthetic_undocumented_edge():
    # A done→pending rename is not in the protocol table: completion
    # markers are consumed, never requeued by rename.
    undocumented = """
    import os

    class Q:
        def resurrect(self, name):
            os.rename(self.done_dir / name, self.pending_dir / name)
    """
    (finding,) = lint_snippet(undocumented, QUEUE_FIXTURE_PATH).findings
    assert finding.rule_id == "queue-transitions"
    assert "done" in finding.message and "pending" in finding.message


def test_queue_transitions_fires_on_unclassifiable_endpoints():
    opaque = """
    import os

    def shuffle(a, b):
        os.rename(a, b)
    """
    (finding,) = lint_snippet(opaque, QUEUE_FIXTURE_PATH).findings
    assert finding.rule_id == "queue-transitions"
    assert "cannot be classified" in finding.message


def test_queue_transitions_resolves_helper_calls():
    via_helpers = """
    import os

    class Q:
        def claim(self, f):
            os.rename(self.pending_path(f), self.lease_path(f))
    """
    assert lint_snippet(via_helpers, QUEUE_FIXTURE_PATH).findings == []


def test_queue_transitions_out_of_scope_elsewhere():
    elsewhere = "import os\n\ndef f(a, b):\n    os.rename(a, b)\n"
    assert lint_snippet(elsewhere, "repro/harness/shard.py").findings == []


# ----------------------------------------------------------------------
# Rule 4: fingerprint-purity (whole tree)
# ----------------------------------------------------------------------
def test_fingerprint_purity_fires_on_engine_in_fingerprint_payload():
    impure = """
    import hashlib, json

    def simulation_fingerprint(traits, technique, engine):
        payload = {"traits": traits, "technique": technique, "engine": engine}
        return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
    """
    findings = lint_snippet(impure).findings
    assert rule_ids(findings) == {"fingerprint-purity"}
    # The parameter, its uses and the dict key are each pinpointed.
    assert len(findings) >= 2


def test_fingerprint_purity_fires_on_engine_keyword_at_callsites():
    caller = """
    def enqueue(job, make_fingerprint):
        return make_fingerprint(job.traits, engine=job.engine)
    """
    (finding,) = lint_snippet(caller).findings
    assert finding.rule_id == "fingerprint-purity"


def test_fingerprint_purity_silent_on_pure_construction():
    pure = """
    import hashlib, json

    def simulation_fingerprint(traits, technique):
        '''Engines are bit-identical transport and never enter this key.'''
        payload = {"traits": traits, "technique": technique}
        return hashlib.sha256(json.dumps(payload).encode()).hexdigest()

    def run(job, engine):
        return engine.run(job)  # engine use outside fingerprinting is fine
    """
    assert lint_snippet(pure).findings == []


# ----------------------------------------------------------------------
# Rule 5: exception-hygiene (whole tree)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "clause", ["except Exception:", "except BaseException:", "except:"]
)
def test_exception_hygiene_fires_on_swallowing_broad_handlers(clause):
    snippet = f"""
    try:
        x = 1
    {clause}
        pass
    """
    assert rule_ids(lint_snippet(snippet).findings) == {"exception-hygiene"}


def test_exception_hygiene_silent_on_reraise_and_narrow_handlers():
    corrected = """
    try:
        x = 1
    except BaseException:
        cleanup = True
        raise

    try:
        y = 2
    except (OSError, ValueError):
        y = None
    """
    assert lint_snippet(corrected).findings == []


def test_exception_hygiene_suppressible_with_justified_pragma():
    annotated = """
    try:
        x = 1
    except Exception:  # repro: allow[exception-hygiene] third-party surface
        x = None
    """
    result = lint_snippet(annotated)
    assert result.findings == []
    assert rule_ids(result.suppressed) == {"exception-hygiene"}


# ----------------------------------------------------------------------
# Rule 6: optional-deps (whole tree)
# ----------------------------------------------------------------------
def test_optional_deps_fires_on_unguarded_top_level_numpy():
    result = lint_snippet("import numpy as np\n", "repro/harness/mod.py")
    assert rule_ids(result.findings) == {"optional-deps"}
    result = lint_snippet("from numpy import zeros\n", "repro/harness/mod.py")
    assert rule_ids(result.findings) == {"optional-deps"}


def test_optional_deps_silent_when_guarded_deferred_or_in_columnar():
    guarded = """
    try:
        import numpy as np
    except ImportError:
        np = None

    def lazily():
        import numpy
        return numpy
    """
    assert lint_snippet(guarded, "repro/harness/mod.py").findings == []
    assert (
        lint_snippet(
            "import numpy\n", "repro/uarch/engine/columnar.py"
        ).findings
        == []
    )


def test_optional_deps_fires_on_compiled_backend_imports_outside_native():
    """The compiled kernel's artefacts (the built extension module, or a
    numba/Cython toolchain) are scoped to engine/native.py + its build
    helper, exactly as numpy is scoped to columnar.py."""
    for module in ("_native_replay", "numba", "Cython", "pyximport"):
        result = lint_snippet(f"import {module}\n", "repro/harness/mod.py")
        assert rule_ids(result.findings) == {"optional-deps"}, module
    result = lint_snippet(
        "from numba import njit\n", "repro/uarch/engine/columnar.py"
    )
    assert rule_ids(result.findings) == {"optional-deps"}  # wrong home


def test_optional_deps_silent_for_compiled_backend_in_its_home_modules():
    for path in (
        "repro/uarch/engine/native.py",
        "repro/uarch/engine/build.py",
    ):
        assert lint_snippet("import _native_replay\n", path).findings == []
        assert lint_snippet("import numba\n", path).findings == []
    # numpy's home does not transfer to the compiled backend's modules...
    result = lint_snippet("import numpy\n", "repro/uarch/engine/native.py")
    assert rule_ids(result.findings) == {"optional-deps"}
    # ...and guarded/deferred imports stay legal anywhere.
    guarded = """
    try:
        import numba
    except ImportError:
        numba = None

    def lazily():
        import _native_replay
        return _native_replay
    """
    assert lint_snippet(guarded, "repro/harness/mod.py").findings == []


# ----------------------------------------------------------------------
# Rule 7: retry-discipline (sleep ownership + uarch isolation)
# ----------------------------------------------------------------------
def test_retry_discipline_fires_on_time_sleep_outside_faults():
    snippet = """
    import time

    def poll():
        time.sleep(0.2)
    """
    result = lint_snippet(snippet, "repro/harness/queue.py")
    assert rule_ids(result.findings) == {"retry-discipline"}


def test_retry_discipline_fires_on_from_time_import_sleep():
    snippet = """
    from time import sleep

    def poll():
        sleep(0.2)
    """
    result = lint_snippet(snippet, "repro/harness/parallel.py")
    assert rule_ids(result.findings) == {"retry-discipline"}


def test_retry_discipline_silent_in_the_sleep_owner_module():
    snippet = """
    import time

    def sleep(seconds):
        time.sleep(seconds)
    """
    assert lint_snippet(snippet, "repro/harness/faults.py").findings == []


def test_retry_discipline_silent_on_monotonic_and_faults_sleep():
    snippet = """
    import time

    from repro.harness import faults

    def wait(deadline):
        while time.monotonic() < deadline:
            faults.sleep(0.1)
    """
    assert lint_snippet(snippet, "repro/harness/parallel.py").findings == []


def test_retry_discipline_fires_on_faults_import_under_uarch():
    for line in (
        "from repro.harness import faults\n",
        "from repro.harness.faults import RetryPolicy\n",
        "import repro.harness.faults\n",
    ):
        result = lint_snippet(line, "repro/uarch/trace.py")
        assert rule_ids(result.findings) == {"retry-discipline"}, line


def test_retry_discipline_faults_import_allowed_outside_uarch():
    line = "from repro.harness import faults\n"
    assert lint_snippet(line, "repro/harness/cache.py").findings == []


# ----------------------------------------------------------------------
# Rule 8: request-validation (service handlers validate before acting)
# ----------------------------------------------------------------------
def test_request_validation_fires_on_unvalidated_handler():
    snippet = """
    def handle_grid(self, connection, payload):
        self.queue.enqueue(payload["job"])
    """
    result = lint_snippet(snippet, "repro/service/daemon.py")
    assert rule_ids(result.findings) == {"request-validation"}


def test_request_validation_fires_when_validation_comes_too_late():
    snippet = """
    def handle_simulate(self, connection, payload):
        stats = self.cache.load(payload["fingerprint"])
        normalized = validate_request(payload)
        return stats, normalized
    """
    result = lint_snippet(snippet, "repro/service/daemon.py")
    assert rule_ids(result.findings) == {"request-validation"}
    (finding,) = result.findings
    assert "before validate_request" in finding.message


def test_request_validation_silent_when_validation_precedes_touches():
    snippet = """
    def handle_grid(self, connection, payload):
        normalized = validate_request(payload)
        self.queue.enqueue(normalized["job"])
        return self.cache.load(normalized["fingerprint"])
    """
    assert lint_snippet(snippet, "repro/service/daemon.py").findings == []


def test_request_validation_silent_outside_handlers_and_service():
    touch_only = """
    def fan_out(self, jobs):
        for job in jobs:
            self.queue.enqueue(job)
    """
    # Not a handle_* function: the rule binds the handler boundary, not
    # every queue call in the service package.
    assert lint_snippet(touch_only, "repro/service/daemon.py").findings == []
    unvalidated_handler = """
    def handle_grid(self, connection, payload):
        self.queue.enqueue(payload["job"])
    """
    # Same code outside repro/service/ is out of the rule's scope.
    assert (
        lint_snippet(unvalidated_handler, "repro/harness/queue.py").findings
        == []
    )
    # ... and the chokepoint's home module is exempt by design.
    assert (
        lint_snippet(unvalidated_handler, "repro/service/protocol.py").findings
        == []
    )


# ----------------------------------------------------------------------
# Rule 9: telemetry-purity (observability stays out of uarch and keys)
# ----------------------------------------------------------------------
def test_telemetry_purity_fires_on_telemetry_import_under_uarch():
    for line in (
        "from repro.telemetry import spans\n",
        "from repro.telemetry.spans import span\n",
        "import repro.telemetry\n",
        "from repro import telemetry\n",
    ):
        result = lint_snippet(line, "repro/uarch/pipeline.py")
        assert rule_ids(result.findings) == {"telemetry-purity"}, line


def test_telemetry_purity_import_allowed_outside_uarch():
    line = "from repro.telemetry import spans as tracing\n"
    assert lint_snippet(line, "repro/harness/queue.py").findings == []


def test_telemetry_purity_fires_on_telemetry_values_in_fingerprints():
    probe_rate = """
    def simulation_fingerprint(traits, cycles_per_second):
        return hash((traits, cycles_per_second))
    """
    result = lint_snippet(probe_rate, "repro/harness/cache.py")
    assert "telemetry-purity" in rule_ids(result.findings)

    trace_key = """
    def job_fingerprint(job):
        payload = {"benchmark": job.benchmark, "trace_id": job.trace_id}
        return digest(payload)
    """
    result = lint_snippet(trace_key, "repro/harness/queue.py")
    assert "telemetry-purity" in rule_ids(result.findings)


def test_telemetry_purity_silent_on_clean_fingerprints_and_elsewhere():
    clean = """
    def simulation_fingerprint(traits, technique, max_instructions):
        return digest({"traits": traits, "technique": technique})
    """
    assert lint_snippet(clean, "repro/harness/cache.py").findings == []
    # The vocabulary only binds fingerprint functions: a worker reading
    # its probe table is exactly what the telemetry plane is for.
    elsewhere = """
    def publish_stats(self):
        return {"probes": self.probes, "telemetry": True}
    """
    assert lint_snippet(elsewhere, "repro/harness/queue.py").findings == []


# ----------------------------------------------------------------------
# Suppression mechanics
# ----------------------------------------------------------------------
def test_pragma_on_preceding_comment_line_suppresses():
    snippet = """
    # repro: allow[determinism] seeded reproducibly at startup
    import random
    """
    result = lint_snippet(snippet, "repro/uarch/mod.py")
    assert result.findings == []
    assert rule_ids(result.suppressed) == {"determinism"}


def test_pragma_for_a_different_rule_does_not_suppress():
    snippet = "import random  # repro: allow[atomic-io]\n"
    result = lint_snippet(snippet, "repro/uarch/mod.py")
    assert rule_ids(result.findings) == {"determinism"}
    assert result.suppressed == []


def test_one_pragma_may_list_several_rules():
    snippet = (
        "import random  # repro: allow[determinism, optional-deps]\n"
    )
    result = lint_snippet(snippet, "repro/uarch/mod.py")
    assert result.findings == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def write_fixture(tmp_path: Path, relative: str, source: str) -> Path:
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(source), encoding="utf-8")
    return path


def test_cli_exits_nonzero_on_strict_findings(tmp_path, capsys):
    bad = write_fixture(tmp_path, "repro/uarch/mod.py", "import random\n")
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out
    assert "1 finding(s)" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    write_fixture(tmp_path, "repro/uarch/mod.py", "VALUE = 1\n")
    assert lint_main([str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_advisory_findings_never_fail_the_run(tmp_path, capsys):
    write_fixture(tmp_path, "clean/repro/uarch/mod.py", "VALUE = 1\n")
    write_fixture(tmp_path, "scratch/repro/uarch/mod.py", "import random\n")
    code = lint_main(
        [str(tmp_path / "clean"), "--advisory", str(tmp_path / "scratch")]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "advisory:" in out and "[determinism]" in out
    assert "not failing the run" in out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in out


def test_cli_select_subset(tmp_path):
    bad = write_fixture(tmp_path, "repro/uarch/mod.py", "import random\n")
    assert lint_main([str(bad), "--select", "determinism"]) == 1
    assert lint_main([str(bad), "--select", "atomic-io"]) == 0


# ----------------------------------------------------------------------
# The tier-1 gate: the shipped tree lints clean
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean(request):
    if request.config.getoption("--no-lint", default=False):
        pytest.skip("lint gate disabled via --no-lint")
    package_root = Path(next(iter(repro.__path__)))
    result = lint_paths([package_root])
    formatted = "\n".join(str(finding) for finding in result.findings)
    assert result.findings == [], f"reprolint violations in src/:\n{formatted}"
    assert result.files > 50  # the walk really covered the package
