"""Experiment harness: runs the paper's evaluation on the synthetic suite.

The harness ties everything together: it compiles each synthetic benchmark
with the requested hint encoding, simulates it under each technique, costs
the runs with the power model, and reproduces every figure and table of the
paper's evaluation section as structured data plus ASCII tables.

Typical use::

    from repro.harness import SuiteRunner, RunConfig, figures

    runner = SuiteRunner(RunConfig(max_instructions=20_000))
    fig6 = figures.figure6(runner)
    print(fig6.to_text())
"""

from repro.harness.experiment import (
    BenchmarkResult,
    RunConfig,
    SuiteRunner,
    TechniqueMetrics,
    TECHNIQUES,
)
from repro.harness.cache import ResultCache, collect_garbage, simulation_fingerprint
from repro.harness.parallel import ParallelSuiteRunner, SimulationJob

# NOTE: repro.harness.queue is deliberately not imported here — it is a
# worker entry point (``python -m repro.harness.queue``), and an eager
# package-level import would make runpy execute the module twice in
# every worker process.  Import it explicitly where needed.
from repro.harness.shard import (
    ShardJob,
    ShardSpan,
    compare_sharded_to_sequential,
    plan_shards,
    run_sharded,
)
from repro.harness import figures
from repro.harness.figures import FigureData
from repro.harness.reporting import format_table, overall_processor_savings

__all__ = [
    "BenchmarkResult",
    "RunConfig",
    "SuiteRunner",
    "TechniqueMetrics",
    "TECHNIQUES",
    "ResultCache",
    "collect_garbage",
    "simulation_fingerprint",
    "ParallelSuiteRunner",
    "SimulationJob",
    "ShardJob",
    "ShardSpan",
    "compare_sharded_to_sequential",
    "plan_shards",
    "run_sharded",
    "figures",
    "FigureData",
    "format_table",
    "overall_processor_savings",
]
