"""The banked, non-collapsing issue queue with compiler control hooks.

This models the paper's issue queue (section 3.1):

* a circular, **non-collapsing** buffer (issued entries leave holes; the
  head simply advances past them), as in Folegnani & González, Buyuktosunoglu
  et al. and Abella & González;
* organised in banks whose CAM and RAM arrays can be turned off together
  when the bank holds no valid entry;
* a conventional ``head``/``tail`` pair plus the paper's ``new_head``
  pointer and ``max_new_range`` register.  ``new_head`` marks the oldest
  entry of the *current program region*; dispatch stops whenever the
  distance from ``new_head`` to ``tail`` would exceed ``max_new_range``.
  When the entry ``new_head`` points at issues, the pointer slides towards
  the tail (figure 2), freeing dispatch slots for the region.

The queue also keeps the power-relevant event counts: waiting (non-ready,
non-empty) operands for gated wakeup energy, total slots for ungated wakeup
energy, and per-bank occupancy for static gating.  ``active_banks`` is
maintained incrementally (a bank counts while it holds at least one valid
entry) so the per-cycle sampler reads one attribute instead of scanning
``bank_counts``.

Entry objects are pooled per slot: a slot lazily creates one
:class:`IssueQueueEntry` and reuses it for every instruction that later
occupies the slot.  ``allocate`` takes ownership of the ``waiting_tags``
set it is given (no defensive copy) — callers must pass a fresh set.
"""

from __future__ import annotations

from typing import Optional


class IssueQueueEntry:
    """One valid issue-queue slot.

    Attributes:
        rob_index: the owning reorder-buffer entry.
        slot: slot index inside the queue.
        waiting_tags: physical-register tags still outstanding.
        num_source_operands: total source operands the entry arrived with.
        fu_class: functional-unit class needed to issue (the replay core
            stores the :data:`~repro.uarch.functional_units.FU_INDEX`
            ordinal here).
        ready_cycle: earliest cycle the entry may issue (used to enforce the
            one-cycle wakeup-to-issue ordering for operands that were ready
            at dispatch time).
        age: monotonically increasing allocation number.  The tail advances
            one slot per allocation and never overtakes the head, so
            allocation order equals head-to-tail (oldest-first) order; the
            ready set sorts on this instead of walking the circular buffer.
    """

    __slots__ = (
        "rob_index",
        "slot",
        "waiting_tags",
        "num_source_operands",
        "fu_class",
        "ready_cycle",
        "age",
    )

    def __init__(
        self,
        rob_index: int,
        slot: int,
        waiting_tags: Optional[set[int]] = None,
        num_source_operands: int = 0,
        fu_class: object = None,
        ready_cycle: int = 0,
        age: int = 0,
    ):
        self.rob_index = rob_index
        self.slot = slot
        self.waiting_tags = waiting_tags if waiting_tags is not None else set()
        self.num_source_operands = num_source_operands
        self.fu_class = fu_class
        self.ready_cycle = ready_cycle
        self.age = age

    @property
    def is_ready(self) -> bool:
        """True when all source operands have been produced."""
        return not self.waiting_tags


class BankedIssueQueue:
    """Circular non-collapsing issue queue with bank gating and ``new_head``."""

    def __init__(self, capacity: int, bank_size: int):
        if capacity <= 0 or bank_size <= 0:
            raise ValueError("issue queue capacity and bank size must be positive")
        self.capacity = capacity
        self.bank_size = bank_size
        self.num_banks = (capacity + bank_size - 1) // bank_size

        self.slots: list[Optional[IssueQueueEntry]] = [None] * capacity
        self._pool: list[Optional[IssueQueueEntry]] = [None] * capacity
        self.head = 0
        self.tail = 0
        self.new_head = 0
        self.count = 0
        self.span = 0  # slots between head and tail, holes included
        self.max_new_range: Optional[int] = None
        self.global_limit: Optional[int] = None

        self.bank_counts = [0] * self.num_banks
        self.active_banks = 0  # banks currently holding >= 1 valid entry
        self.waiting_operand_count = 0
        # Ungated comparator operations per result broadcast: every operand
        # slot of the whole queue precharges and compares (two per entry).
        self.cmp_full_per_broadcast = 2 * capacity
        # consumers maps a physical-register tag to the entries waiting on it.
        self._consumers: dict[int, list[IssueQueueEntry]] = {}
        # Incrementally maintained set of ready entries keyed by age, so the
        # per-cycle select stage never walks the whole circular buffer.
        self._ready_by_age: dict[int, IssueQueueEntry] = {}
        self._next_age = 0

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _distance(self, start: int, end: int) -> int:
        """Number of slots from ``start`` up to (not including) ``end``."""
        return (end - start) % self.capacity

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return self.count

    @property
    def free_physical_slots(self) -> int:
        """Slots the tail can still advance into before reaching the head."""
        return self.capacity - self.span

    @property
    def region_occupancy(self) -> int:
        """Slots between ``new_head`` and ``tail`` (the current region's extent)."""
        if self.span == 0:
            return 0
        return self._distance(self.new_head, self.tail)

    def enabled_banks(self, bank_gating: bool) -> int:
        """Number of banks that must be powered this cycle."""
        if not bank_gating:
            return self.num_banks
        return self.active_banks

    # ------------------------------------------------------------------
    # Compiler / policy control
    # ------------------------------------------------------------------
    def start_new_region(self, max_new_range: int) -> None:
        """Begin a new program region: ``new_head`` <- ``tail`` (section 3.2)."""
        self.new_head = self.tail
        self.max_new_range = max(1, max_new_range)

    def clear_region_limit(self) -> None:
        """Remove any software-imposed region limit."""
        self.max_new_range = None

    def set_global_limit(self, limit: Optional[int]) -> None:
        """Set a hardware-imposed cap on total queue extent (abella-style)."""
        if limit is not None:
            limit = max(self.bank_size, min(limit, self.capacity))
        self.global_limit = limit

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def can_dispatch(self) -> tuple[bool, str]:
        """Whether one more instruction may be dispatched, and why not if not."""
        if self.span >= self.capacity:
            return False, "physical"
        if self.global_limit is not None and self.span >= self.global_limit:
            return False, "global_limit"
        if self.max_new_range is not None and self.region_occupancy >= self.max_new_range:
            return False, "region_limit"
        return True, ""

    def allocate(
        self,
        rob_index: int,
        waiting_tags: set[int],
        num_source_operands: int,
        fu_class,
        ready_cycle: int,
    ) -> IssueQueueEntry:
        """Insert a new entry at the tail and return it.

        Takes ownership of ``waiting_tags``: the queue mutates the set as
        broadcasts wake operands.
        """
        ok, reason = self.can_dispatch()
        if not ok:
            raise RuntimeError(f"allocate called while dispatch blocked ({reason})")
        slot = self.tail
        entry = self._pool[slot]
        if entry is None:
            entry = IssueQueueEntry(rob_index=rob_index, slot=slot)
            self._pool[slot] = entry
        entry.rob_index = rob_index
        entry.waiting_tags = waiting_tags
        entry.num_source_operands = num_source_operands
        entry.fu_class = fu_class
        entry.ready_cycle = ready_cycle
        age = self._next_age
        entry.age = age
        self._next_age = age + 1
        self.slots[slot] = entry
        self.tail = (slot + 1) % self.capacity
        self.count += 1
        self.span += 1
        bank = slot // self.bank_size
        bank_counts = self.bank_counts
        if bank_counts[bank] == 0:
            self.active_banks += 1
        bank_counts[bank] += 1
        if waiting_tags:
            self.waiting_operand_count += len(waiting_tags)
            consumers = self._consumers
            for tag in waiting_tags:
                existing = consumers.get(tag)
                if existing is None:
                    consumers[tag] = [entry]
                else:
                    existing.append(entry)
        else:
            self._ready_by_age[age] = entry
        return entry

    # ------------------------------------------------------------------
    # Wakeup / select / remove
    # ------------------------------------------------------------------
    def broadcast(self, tag: int) -> int:
        """Wake every operand waiting on ``tag``; return how many woke up."""
        woken = 0
        consumers = self._consumers.pop(tag, None)
        if not consumers:
            return 0
        slots = self.slots
        ready_by_age = self._ready_by_age
        for entry in consumers:
            waiting = entry.waiting_tags
            if slots[entry.slot] is entry and tag in waiting:
                waiting.discard(tag)
                self.waiting_operand_count -= 1
                woken += 1
                if not waiting:
                    ready_by_age[entry.age] = entry
        return woken

    def ready_entries_in_age_order(self) -> list[IssueQueueEntry]:
        """Valid, ready entries from oldest (head) to youngest (tail)."""
        ready = self._ready_by_age
        if not ready:
            return []
        return [ready[age] for age in sorted(ready)]

    def remove(self, entry: IssueQueueEntry) -> None:
        """Remove an issued entry, leaving a hole, and advance the pointers."""
        slot = entry.slot
        if self.slots[slot] is not entry:
            raise RuntimeError("attempt to remove an entry that is not resident")
        self.slots[slot] = None
        self.count -= 1
        bank = slot // self.bank_size
        bank_counts = self.bank_counts
        bank_counts[bank] -= 1
        if bank_counts[bank] == 0:
            self.active_banks -= 1
        self.waiting_operand_count -= len(entry.waiting_tags)
        self._ready_by_age.pop(entry.age, None)
        self._advance_pointers()

    def _advance_pointers(self) -> None:
        """Slide ``head`` and ``new_head`` past holes towards the tail."""
        slots = self.slots
        capacity = self.capacity
        head = self.head
        span = self.span
        while span > 0 and slots[head] is None:
            head = (head + 1) % capacity
            span -= 1
        self.head = head
        self.span = span
        if span == 0:
            self.head = self.tail
            self.new_head = self.tail
            return
        # new_head behaves like head but never falls behind it.
        new_head = self.new_head
        if (new_head - head) % capacity > span:
            new_head = head
        tail = self.tail
        while new_head != tail and slots[new_head] is None:
            new_head = (new_head + 1) % capacity
        self.new_head = new_head

    # ------------------------------------------------------------------
    # Power-event sampling
    # ------------------------------------------------------------------
    def comparison_counts(self) -> tuple[int, int]:
        """(ungated, gated) comparator operations for one result broadcast.

        Ungated: every operand slot of the whole queue precharges and
        compares (``cmp_full_per_broadcast``).  Gated: only non-empty,
        non-ready operands are compared (Folegnani & González's precharge
        gating, which the resizing techniques inherit).  The hot path in
        the core reads the two underlying attributes directly.
        """
        return self.cmp_full_per_broadcast, self.waiting_operand_count
