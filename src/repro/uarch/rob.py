"""Reorder buffer.

A 128-entry circular buffer (table 1).  Entries progress through the states
*dispatched* -> *issued* -> *completed* and commit in order from the head.
The abella (IqRob64) baseline additionally limits how many ROB entries may
be occupied, which is supported through :meth:`ReorderBuffer.set_limit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


DISPATCHED = 0
ISSUED = 1
COMPLETED = 2


@dataclass
class RobEntry:
    """One reorder-buffer entry.

    Attributes:
        index: position in the circular buffer.
        dyn: the dynamic instruction (or None for a reclaimed slot).
        state: DISPATCHED, ISSUED or COMPLETED.
        dest_tags: physical registers written by the instruction.
        freed_on_commit: physical registers released when it commits.
        source_tags: physical registers read (for register-file accounting).
        completion_cycle: cycle at which execution finished.
    """

    index: int
    dyn: object = None
    state: int = DISPATCHED
    dest_tags: list[int] = field(default_factory=list)
    freed_on_commit: list[int] = field(default_factory=list)
    source_tags: list[int] = field(default_factory=list)
    completion_cycle: int = 0


class ReorderBuffer:
    """In-order allocate / out-of-order complete / in-order commit buffer."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self.entries: list[Optional[RobEntry]] = [None] * capacity
        self.head = 0
        self.tail = 0
        self.count = 0
        self.limit: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of in-flight instructions."""
        return self.count

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def set_limit(self, limit: Optional[int]) -> None:
        """Cap occupancy below the physical capacity (abella's ROB limiting)."""
        if limit is not None:
            limit = max(1, min(limit, self.capacity))
        self.limit = limit

    def can_allocate(self) -> bool:
        """Whether one more instruction may be dispatched into the ROB."""
        effective = self.capacity if self.limit is None else self.limit
        return self.count < effective

    # ------------------------------------------------------------------
    def allocate(self, dyn) -> RobEntry:
        """Allocate the tail entry for ``dyn`` and return it."""
        if not self.can_allocate():
            raise RuntimeError("ROB allocate called while full")
        index = self.tail
        entry = RobEntry(index=index, dyn=dyn, state=DISPATCHED)
        self.entries[index] = entry
        self.tail = (self.tail + 1) % self.capacity
        self.count += 1
        return entry

    def mark_issued(self, entry: RobEntry) -> None:
        """Record that the entry has left the issue queue."""
        entry.state = ISSUED

    def mark_completed(self, entry: RobEntry, cycle: int) -> None:
        """Record execution completion."""
        entry.state = COMPLETED
        entry.completion_cycle = cycle

    def commit_ready(self) -> Optional[RobEntry]:
        """The head entry if it has completed, else None."""
        if self.count == 0:
            return None
        entry = self.entries[self.head]
        if entry is not None and entry.state == COMPLETED:
            return entry
        return None

    def commit(self) -> RobEntry:
        """Retire the head entry and return it."""
        entry = self.commit_ready()
        if entry is None:
            raise RuntimeError("commit called with no completed head entry")
        self.entries[self.head] = None
        self.head = (self.head + 1) % self.capacity
        self.count -= 1
        return entry
