"""Functional-unit pool.

Table 1: 6 integer ALUs (1 cycle), 3 integer multipliers (3 cycles), 4 FP
ALUs (2 cycles) and 2 FP multiply/divide units, plus 2 memory ports.  Units
are modelled as fully pipelined: the constraint enforced each cycle is how
many instructions of each class may *begin* execution, which is what limits
issue; occupancy of long-latency operations is captured by their latency.

The per-cycle bookkeeping is index-based: every :class:`FuClass` has a
stable ordinal (its position in the enum), and limits/usage/issue counts
live in flat lists indexed by that ordinal.  The replay core carries the
ordinal straight from the pre-decoded trace into
:meth:`FunctionalUnitPool.try_acquire_index`, so the issue loop performs
no enum hashing; the enum-keyed methods remain for tests and reports.
"""

from __future__ import annotations

from repro.isa.opcodes import FuClass

#: Stable ordinal assignment for the per-class flat arrays.
FU_ORDER: tuple[FuClass, ...] = tuple(FuClass)
FU_INDEX: dict[FuClass, int] = {fu: i for i, fu in enumerate(FU_ORDER)}


class FunctionalUnitPool:
    """Per-cycle issue bandwidth per functional-unit class."""

    def __init__(self, fu_counts: dict[FuClass, int]):
        self.fu_counts = dict(fu_counts)
        num_classes = len(FU_ORDER)
        self._limits = [self.fu_counts.get(fu, 0) for fu in FU_ORDER]
        self._used = [0] * num_classes
        self._zeros = [0] * num_classes
        self._issues = [0] * num_classes
        self.structural_stalls: int = 0

    def new_cycle(self) -> None:
        """Reset the per-cycle usage counters."""
        self._used[:] = self._zeros

    def try_acquire_index(self, fu_index: int) -> bool:
        """Reserve a unit of the class with ordinal ``fu_index`` this cycle."""
        used = self._used[fu_index]
        if used >= self._limits[fu_index]:
            self.structural_stalls += 1
            return False
        self._used[fu_index] = used + 1
        self._issues[fu_index] += 1
        return True

    def try_acquire(self, fu_class: FuClass) -> bool:
        """Reserve a unit of ``fu_class`` for this cycle if one is available."""
        return self.try_acquire_index(FU_INDEX[fu_class])

    def available(self, fu_class: FuClass) -> int:
        """Units of ``fu_class`` still free this cycle."""
        index = FU_INDEX[fu_class]
        return max(0, self._limits[index] - self._used[index])

    @property
    def issues_by_class(self) -> dict[FuClass, int]:
        """Issues recorded per class over the whole run (for reports)."""
        return {fu: self._issues[FU_INDEX[fu]] for fu in FU_ORDER}
