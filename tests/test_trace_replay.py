"""Tests for the trace pre-decode & replay subsystem.

Three families:

* **Equivalence** — the statistics of a run must not depend on how the
  decoded trace was obtained: live emulation, the in-process memo, or a
  round-trip through the on-disk :class:`~repro.uarch.trace.TraceCache`
  must all produce byte-identical :class:`SimulationStats`, across every
  technique policy and structurally different workloads.
* **Invalidation** — the trace fingerprint must move whenever anything
  that can change the committed stream moves: workload traits, the
  instruction budget, or the emulator's own source digest.
* **Reuse** — a (benchmark × technique) grid emulates each distinct
  program once; with a warm on-disk trace cache, a fresh process-like
  runner re-times cells without re-emulating at all.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import CompilerConfig, compile_program
from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.cache import ResultCache, stats_to_dict
from repro.techniques import (
    AbellaPolicy,
    BaselinePolicy,
    NonEmptyPolicy,
    SoftwareDirectedPolicy,
)
from repro.uarch import TraceCache, simulate
from repro.uarch.trace import (
    clear_trace_memo,
    get_decoded_trace,
    reset_trace_events,
    trace_events,
    trace_fingerprint,
)
from repro.workloads import ALL_TRAITS, build_benchmark, generate_program

MAX_INSTRUCTIONS = 3_000
WORKLOADS = ("gzip", "branchstorm", "fpstream")


def _policy(technique: str):
    if technique == "baseline":
        return BaselinePolicy()
    if technique == "nonempty":
        return NonEmptyPolicy()
    if technique == "abella":
        return AbellaPolicy(interval_cycles=256)
    return SoftwareDirectedPolicy(variant=technique)


def _program(benchmark: str, technique: str):
    if technique in ("noop", "extension", "improved"):
        result = compile_program(
            build_benchmark(benchmark), CompilerConfig(), mode=technique
        )
        return result.instrumented_program
    return build_benchmark(benchmark)


def _stats_bytes(stats) -> bytes:
    return json.dumps(stats_to_dict(stats), sort_keys=True).encode()


class TestReplayEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize(
        "technique",
        ("baseline", "nonempty", "abella", "noop", "extension", "improved"),
    )
    def test_live_memo_and_disk_paths_are_byte_identical(
        self, workload, technique, tmp_path
    ):
        program = _program(workload, technique)
        kwargs = dict(max_instructions=MAX_INSTRUCTIONS, warmup_instructions=500)

        clear_trace_memo()
        live = simulate(program, _policy(technique), live_emulation=True, **kwargs)

        # First cached call: emulates once, stores to disk, memoises.
        cache_dir = tmp_path / "traces"
        stored = simulate(
            program, _policy(technique), trace_cache=str(cache_dir), **kwargs
        )
        # Second call with a cold memo: must come back from disk.
        clear_trace_memo()
        reset_trace_events()
        replayed = simulate(
            program, _policy(technique), trace_cache=str(cache_dir), **kwargs
        )
        assert trace_events["emulations"] == 0
        assert trace_events["disk_hits"] == 1

        assert _stats_bytes(live) == _stats_bytes(stored) == _stats_bytes(replayed)

    def test_in_place_program_mutation_reemulates(self):
        """The memo keys on program *content*, not object identity, so
        mutating a ``fresh=True`` program between runs must re-emulate."""
        program = build_benchmark("gzip", fresh=True)
        simulate(program, BaselinePolicy(), max_instructions=1_500)
        instr = next(iter(program.procedures.values())).blocks[0].instructions[0]
        instr.imm += 7
        mutated = simulate(program, BaselinePolicy(), max_instructions=1_500)
        clear_trace_memo()
        live = simulate(
            program, BaselinePolicy(), max_instructions=1_500, live_emulation=True
        )
        assert _stats_bytes(mutated) == _stats_bytes(live)

    def test_warmup_run_is_identical_across_paths(self, tmp_path):
        """The warm-up clock rebase must survive the replay path too."""
        program = build_benchmark("gzip")
        kwargs = dict(max_instructions=4_000, warmup_instructions=2_000)
        clear_trace_memo()
        live = simulate(program, BaselinePolicy(), live_emulation=True, **kwargs)
        via_cache = simulate(
            program, BaselinePolicy(), trace_cache=str(tmp_path), **kwargs
        )
        assert _stats_bytes(live) == _stats_bytes(via_cache)
        assert live.committed_instructions == 2_000


class TestTraceFingerprint:
    def test_changing_traits_changes_the_fingerprint(self):
        base = build_benchmark("gzip")
        tweaked_traits = dataclasses.replace(ALL_TRAITS["gzip"], seed=999_999)
        tweaked = generate_program(tweaked_traits)
        assert trace_fingerprint(base, 1_000) != trace_fingerprint(tweaked, 1_000)

    def test_changing_budget_changes_the_fingerprint(self):
        program = build_benchmark("gzip")
        assert trace_fingerprint(program, 1_000) != trace_fingerprint(program, 2_000)

    def test_changing_emulator_digest_misses_the_cache(self, tmp_path, monkeypatch):
        program = build_benchmark("gzip")
        cache = TraceCache(tmp_path)
        clear_trace_memo()
        get_decoded_trace(program, 1_000, cache=cache)
        assert cache.stores == 1

        import repro.uarch.trace as trace_module

        monkeypatch.setattr(
            trace_module, "_emulator_code_digest", lambda: "0" * 64
        )
        clear_trace_memo()
        reset_trace_events()
        get_decoded_trace(program, 1_000, cache=cache)
        # The edited-emulator fingerprint cannot resurrect the old trace.
        assert trace_events["disk_hits"] == 0
        assert trace_events["emulations"] == 1

    def test_instrumented_programs_have_distinct_fingerprints(self):
        plain = build_benchmark("gzip")
        hinted = _program("gzip", "noop")
        assert trace_fingerprint(plain, 1_000) != trace_fingerprint(hinted, 1_000)


class TestGridReuse:
    CONFIG = dict(
        benchmarks=("gzip", "branchstorm"),
        max_instructions=2_000,
        warmup_instructions=500,
    )
    TECHNIQUES = ("baseline", "nonempty")

    def test_grid_emulates_each_benchmark_once(self, tmp_path):
        clear_trace_memo()
        reset_trace_events()
        runner = ParallelSuiteRunner(
            RunConfig(**self.CONFIG), workers=1, cache_dir=str(tmp_path)
        )
        runner.run_suite(techniques=self.TECHNIQUES)
        assert runner.simulations_run == 4
        # baseline and nonempty share each benchmark's uninstrumented
        # program, so two benchmarks cost exactly two emulations.
        assert trace_events["emulations"] == 2

    def test_warm_trace_cache_skips_reemulation_entirely(self, tmp_path):
        clear_trace_memo()
        first = ParallelSuiteRunner(
            RunConfig(**self.CONFIG), workers=1, cache_dir=str(tmp_path)
        )
        first_results = first.run_suite(techniques=self.TECHNIQUES)

        # Drop the result cells but keep the decoded traces, as a second
        # host sharing only the trace directory would see.
        for path in first.cache._entry_paths():
            path.unlink()
        clear_trace_memo()
        reset_trace_events()
        second = ParallelSuiteRunner(
            RunConfig(**self.CONFIG), workers=1, cache_dir=str(tmp_path)
        )
        second_results = second.run_suite(techniques=self.TECHNIQUES)

        assert second.simulations_run == 4  # cells really were re-timed
        assert trace_events["emulations"] == 0  # ...without re-emulating
        assert second.trace_cache.hits == 2
        for key, result in first_results.items():
            assert _stats_bytes(result.stats) == _stats_bytes(
                second_results[key].stats
            )


class TestResultCacheHygiene:
    def test_lru_pruning_keeps_most_recent_cells(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path, max_entries=3)
        stats = simulate(build_benchmark("gzip"), max_instructions=500)
        for index in range(5):
            fingerprint = f"{index:064x}"
            path = cache.store(fingerprint, stats)
            # Deterministic, strictly increasing recency without sleeping;
            # all stamps sit in the past so a freshly stored cell is never
            # the pruning victim.
            stamp = time.time() - 100 + index
            os.utime(path, (stamp, stamp))
        assert len(cache) == 3
        assert cache.evictions == 2
        survivors = {path.name for path in cache._entry_paths()}
        assert survivors == {f"{index:064x}.json" for index in (2, 3, 4)}

    def test_cache_stats_reports_traffic_and_size(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=10)
        stats = simulate(build_benchmark("gzip"), max_instructions=500)
        cache.store("a" * 64, stats)
        assert cache.load("a" * 64) is not None
        assert cache.load("b" * 64) is None
        report = cache.cache_stats()
        assert report["entries"] == 1
        assert report["total_bytes"] > 0
        assert report["hits"] == 1
        assert report["misses"] == 1
        assert report["stores"] == 1
        assert report["max_entries"] == 10
