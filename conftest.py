"""Repository-level pytest configuration.

Adds the ``--workers`` option (default: the ``REPRO_WORKERS`` environment
variable, else 1) controlling how many processes
:class:`~repro.harness.parallel.ParallelSuiteRunner`-based tests and the
figure benchmarks fan out over.  The default of 1 keeps tier-1 runs
in-process and deterministic; CI or local reproduction runs can pass
``--workers N`` or export ``REPRO_WORKERS=N`` to exercise the pool.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser) -> None:
    # Same "0/unset means no explicit request" convention as
    # ParallelSuiteRunner's env parsing, but the test default is 1 worker
    # (in-process, deterministic) where the library defaults to cpu_count.
    parser.addoption(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS") or 0) or 1,
        help="worker processes for parallel suite runners (env: REPRO_WORKERS; "
        "0/unset means 1 here)",
    )


@pytest.fixture(scope="session")
def suite_workers(request) -> int:
    """Worker count for ParallelSuiteRunner-based tests and benchmarks."""
    return request.config.getoption("--workers")
