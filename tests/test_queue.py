"""Work-queue protocol, crash recovery and backend-equivalence tests.

The contract (see :mod:`repro.harness.queue`): jobs are leased at most
once at a time via atomic renames, a lease whose heartbeat lapses is
re-leased exactly once, duplicate completions are idempotent
(last-writer-wins on identical payloads), and a grid run through
``backend="queue"`` with real worker subprocesses over a shared cache
directory is bit-identical to the local backend.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig, SimulationJob
from repro.harness.queue import (
    QueueWorker,
    WorkQueue,
    process_claimed_job,
    spawn_local_workers,
)

TINY_CONFIG = RunConfig(
    benchmarks=("gzip", "mcf"),
    max_instructions=2_500,
    warmup_instructions=500,
)
TINY_TECHNIQUES = ("baseline", "noop")


def _job(benchmark="gzip", technique="baseline", config=TINY_CONFIG, **kwargs):
    return SimulationJob(benchmark, technique, config, **kwargs)


class TestProtocol:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        job = _job()
        fingerprint = queue.enqueue(job)
        assert queue.pending_path(fingerprint).exists()
        assert queue.status()["pending"] == 1

        claimed = queue.claim("w1")
        assert claimed is not None and claimed.fingerprint == fingerprint
        assert not queue.pending_path(fingerprint).exists()
        lease = json.loads(queue.lease_path(fingerprint).read_text())
        assert lease["worker"] == "w1"
        assert claimed.job.benchmark == job.benchmark

        queue.complete(claimed, {"stats": {"cycles": 1}}, "w1")
        assert not queue.lease_path(fingerprint).exists()
        marker = queue.done_marker(fingerprint)
        assert marker["payload"] == {"stats": {"cycles": 1}}
        assert queue.is_idle()

    def test_enqueue_is_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        queue.enqueue(_job())
        assert queue.status()["pending"] == 1
        claimed = queue.claim("w1")
        queue.enqueue(_job())  # leased: still not duplicated
        assert queue.status()["pending"] == 0
        queue.complete(claimed, {"stats": {}}, "w1")
        queue.enqueue(_job())  # done: not resurrected
        assert queue.status()["pending"] == 0
        assert queue.done_marker(fingerprint) is not None

    def test_claim_from_empty_queue(self, tmp_path):
        assert WorkQueue(tmp_path, ttl=30).claim("w1") is None

    def test_malformed_envelope_is_poisoned(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        (queue.pending_dir / ("a" * 64 + ".json")).write_text("{not json")
        assert queue.claim("w1") is None
        assert queue.status()["poisoned"] == 1
        assert queue.status()["pending"] == 0

    def test_fresh_lease_is_not_requeued(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        queue.enqueue(_job())
        queue.claim("w1")
        assert queue.requeue_expired() == []

    def test_claim_restarts_the_heartbeat_clock(self, tmp_path):
        """A job that sat pending longer than the TTL must not be
        sweepable the instant it is claimed: the winning rename would
        otherwise inherit the stale enqueue-time mtime."""
        queue = WorkQueue(tmp_path, ttl=5)
        fingerprint = queue.enqueue(_job())
        stale = time.time() - 60
        os.utime(queue.pending_path(fingerprint), (stale, stale))
        claimed = queue.claim("w1")
        assert claimed is not None
        assert time.time() - claimed.lease_path.stat().st_mtime < queue.ttl
        assert queue.requeue_expired() == []

    def test_error_marker_is_retryable_on_enqueue(self, tmp_path):
        """One transient worker failure must not poison the fingerprint:
        re-enqueueing consumes the error marker and queues the job."""
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        claimed = queue.claim("w1")
        queue.complete(claimed, None, "w1", error="transient: disk full")
        assert "error" in queue.done_marker(fingerprint)

        assert queue.enqueue(_job()) == fingerprint
        assert queue.pending_path(fingerprint).exists()
        assert queue.done_marker(fingerprint) is None
        # This time it succeeds; the success marker then blocks re-runs.
        retry = queue.claim("w2")
        queue.complete(retry, {"stats": {"cycles": 1}}, "w2")
        queue.enqueue(_job())
        assert queue.status()["pending"] == 0


class TestCrashRecovery:
    def test_expired_lease_is_requeued_and_completes(self, tmp_path):
        """A lease whose heartbeat lapsed goes back to pending exactly
        once, a second worker completes it, and a duplicate completion
        from the presumed-dead first worker is a harmless overwrite."""
        queue = WorkQueue(tmp_path, ttl=5)
        fingerprint = queue.enqueue(_job())
        first = queue.claim("crashy")
        assert first is not None

        # The worker dies: no more heartbeats.  Backdate the lease past
        # the TTL instead of sleeping through it.
        stale = time.time() - 60
        os.utime(first.lease_path, (stale, stale))
        assert queue.requeue_expired() == [fingerprint]
        assert queue.pending_path(fingerprint).exists()
        # Exactly once: a second sweep finds nothing.
        assert queue.requeue_expired() == []

        second = queue.claim("healthy")
        assert second is not None and second.fingerprint == fingerprint
        payload = {"stats": {"cycles": 42}}
        queue.complete(second, payload, "healthy")
        # The slow-not-dead first worker finishes too: identical
        # fingerprint, identical payload, last writer wins cleanly.
        queue.complete(first, payload, "crashy")
        marker = queue.done_marker(fingerprint)
        assert marker["payload"] == payload
        assert marker["worker"] == "crashy"
        assert not queue.lease_path(fingerprint).exists()

    def test_expired_lease_with_marker_is_dropped(self, tmp_path):
        """A dead lease whose job already completed must not re-run."""
        queue = WorkQueue(tmp_path, ttl=5)
        fingerprint = queue.enqueue(_job())
        claimed = queue.claim("w1")
        queue.complete(claimed, {"stats": {}}, "w1")
        # Simulate the lease lingering (e.g. the unlink lost a race).
        queue.leases_dir.mkdir(parents=True, exist_ok=True)
        lease = queue.lease_path(fingerprint)
        lease.write_text(json.dumps(claimed.envelope))
        stale = time.time() - 60
        os.utime(lease, (stale, stale))
        assert queue.requeue_expired() == []
        assert not lease.exists()
        assert not queue.pending_path(fingerprint).exists()

    def test_killed_worker_subprocess_is_recovered(self, tmp_path):
        """Kill a real worker mid-lease; the job is re-leased after the
        heartbeat TTL and completes elsewhere."""
        queue = WorkQueue(tmp_path, ttl=2)
        # A budget big enough that the worker is still simulating when
        # the signal lands (claiming happens within the first second).
        slow = RunConfig(
            benchmarks=("gzip",),
            max_instructions=250_000,
            warmup_instructions=1_000,
        )
        fingerprint = queue.enqueue(_job(config=slow))
        [proc] = spawn_local_workers(tmp_path, 1, ttl=2, poll_interval=0.05)
        try:
            deadline = time.time() + 60
            while not queue.lease_path(fingerprint).exists():
                assert time.time() < deadline, "worker never claimed the job"
                assert proc.poll() is None, "worker exited prematurely"
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait(timeout=10)
        assert not queue.done_path(fingerprint).exists()

        # Heartbeats stopped with the worker; expire and sweep.
        stale = time.time() - 60
        os.utime(queue.lease_path(fingerprint), (stale, stale))
        assert queue.requeue_expired() == [fingerprint]
        assert queue.pending_path(fingerprint).exists()

        # Protocol-level completion (running the 250k-instruction job
        # in-process would dominate the suite's runtime; worker-executed
        # completions are covered by the backend smoke test below).
        rescued = queue.claim("rescuer")
        assert rescued is not None
        queue.complete(rescued, {"stats": {"cycles": 7}}, "rescuer")
        assert queue.done_marker(fingerprint)["payload"] == {"stats": {"cycles": 7}}

    def test_failing_job_publishes_an_error_marker(self, tmp_path):
        """A job that *raises* (vs. a worker that dies) must not wedge
        the queue: an error marker is published for the driver to raise."""
        queue = WorkQueue(tmp_path, ttl=5)
        bad_fp = queue.enqueue(_job(technique="no-such-technique"))
        claimed = queue.claim("w1")
        assert process_claimed_job(queue, claimed, "w1") is False
        marker = queue.done_marker(bad_fp)
        assert "error" in marker and "no-such-technique" in marker["error"]
        assert queue.is_idle()


class TestQueueBackendSmoke:
    """Tier-1 smoke: a tiny grid through ``backend="queue"`` with two
    in-tree worker subprocesses is bit-identical to ``backend="local"``,
    with exact folded trace-cache counters."""

    def test_two_worker_grid_matches_local_backend(self, tmp_path):
        local = ParallelSuiteRunner(TINY_CONFIG, workers=1)
        local.run_suite(techniques=TINY_TECHNIQUES)

        queue_runner = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_workers=2,
            queue_assist=False,  # the workers must do all the work
            queue_poll=0.1,
            queue_ttl=30,
            queue_timeout=300,
        )
        queue_runner.run_suite(techniques=TINY_TECHNIQUES)
        assert queue_runner.simulations_run == len(TINY_CONFIG.benchmarks) * len(
            TINY_TECHNIQUES
        )
        for benchmark in TINY_CONFIG.benchmarks:
            for technique in TINY_TECHNIQUES:
                assert dataclasses.asdict(
                    queue_runner.result(benchmark, technique).stats
                ) == dataclasses.asdict(local.result(benchmark, technique).stats), (
                    benchmark,
                    technique,
                )
        # Worker trace-cache traffic was folded back through the
        # completion markers: each worker process missed and stored each
        # benchmark it met first, none of which happened in this process.
        cache = queue_runner.trace_cache
        assert cache.misses >= len(TINY_CONFIG.benchmarks)
        assert cache.stores >= len(TINY_CONFIG.benchmarks)
        # The queue drained completely.
        queue = WorkQueue(tmp_path, ttl=30)
        assert queue.is_idle()

    def test_warm_cache_skips_the_queue_entirely(self, tmp_path):
        runner = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_ttl=30,
        )
        runner.run_suite(techniques=TINY_TECHNIQUES)
        warm = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_ttl=30,
        )
        warm.run_suite(techniques=TINY_TECHNIQUES)
        assert warm.simulations_run == 0
        assert warm.cache.hits == len(TINY_CONFIG.benchmarks) * len(TINY_TECHNIQUES)

    def test_stalled_queue_times_out(self, tmp_path):
        """No workers, no assist, nothing heartbeating: the driver's
        inactivity timeout must fire instead of waiting forever."""
        runner = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path),
            backend="queue",
            queue_assist=False,
            queue_poll=0.05,
            queue_timeout=0.5,
        )
        with pytest.raises(TimeoutError):
            runner.run_suite(techniques=("baseline",), benchmarks=("gzip",))

    def test_queue_backend_requires_cache_dir(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(TINY_CONFIG, backend="queue")

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(TINY_CONFIG, backend="carrier-pigeon")


class TestWorkerLoop:
    def test_drain_worker_serves_and_exits(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        for technique in TINY_TECHNIQUES:
            queue.enqueue(_job(technique=technique))
        worker = QueueWorker(
            queue, worker_id="w1", poll_interval=0.05, drain=True, drain_grace=0.1
        )
        executed = worker.run()
        assert executed == len(TINY_TECHNIQUES)
        assert queue.is_idle()
        for technique in TINY_TECHNIQUES:
            marker = queue.done_marker(_job(technique=technique).fingerprint())
            assert marker is not None and marker["payload"]["stats"]["cycles"] > 0
        # Results were published through the shared ResultCache too.
        from repro.harness.cache import ResultCache

        cache = ResultCache(tmp_path)
        for technique in TINY_TECHNIQUES:
            assert cache.load(_job(technique=technique).fingerprint()) is not None

    def test_max_jobs_bounds_the_loop(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        for technique in TINY_TECHNIQUES:
            queue.enqueue(_job(technique=technique))
        worker = QueueWorker(queue, poll_interval=0.05, max_jobs=1)
        assert worker.run() == 1
        assert queue.status()["pending"] == 1
