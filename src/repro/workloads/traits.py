"""Per-benchmark structural traits for the synthetic SPECint2000 suite.

Each :class:`BenchmarkTraits` instance parameterises the program generator
so the resulting synthetic program stresses the same mechanisms the real
benchmark stresses in the paper's evaluation:

* **vortex / bzip2** -- call-heavy loops whose callees are functional-unit
  hungry, so the intra-procedural analysis undersizes regions around call
  boundaries (the paper's explanation for their IPC loss, fixed by the
  Improved scheme), plus many small basic blocks so NOOP overhead is
  visible (fixed by the Extension scheme).
* **mcf** -- a serial pointer chase over a large working set: memory bound,
  insensitive to issue-queue size (the paper's lowest IPC loss).
* **gcc** -- very many basic blocks and switch-like control flow with
  high-fan-in join blocks, triggering the conservative path-summary
  fallback (the paper's explanation for gcc's remaining loss under
  Improved), and by far the largest static size (table 2's compile time).
* the remaining benchmarks cover loop-dominated, branchy and mixed
  behaviour with small-to-medium working sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BenchmarkTraits:
    """Structural description of one synthetic benchmark.

    Attributes:
        name: benchmark name (matches the SPECint2000 name it mimics).
        seed: RNG seed for deterministic generation.
        outer_trips: iterations of the top-level driver loop in ``main``.
        num_loop_kernels: loop-dominated phase procedures.
        num_dag_kernels: straight-line/diamond phase procedures.
        num_switch_kernels: switch-like phase procedures (high fan-in join).
        num_call_kernels: call-dominated phase procedures.
        loop_body_size: (min, max) instructions per loop body.
        loop_trip_count: (min, max) iterations per inner loop.
        dag_diamonds: (min, max) if/else diamonds per DAG kernel.
        dag_block_size: (min, max) instructions per DAG basic block.
        switch_fanout: number of cases in each switch kernel.
        ilp_width: independent dependence chains in generated bodies.
        mem_fraction: fraction of body instructions that access memory.
        store_fraction: fraction of memory instructions that are stores.
        mul_fraction: fraction of body instructions that are multiplies.
        fp_fraction: fraction of body instructions that are floating-point
            operations on the FP dependence chains (SPECint executes few,
            so the eleven paper benchmarks leave this at zero; the extended
            trait families use it to exercise the FP register file and the
            FP functional units).
        pointer_chase: True for mcf-style dependent loads.
        chase_shift: left shift applied to the loaded value in a pointer
            chase step; it bounds the chase's address reach (the emulator
            hashes uninitialised memory to 16 bits, so reach is
            ``64K << chase_shift`` bytes).
        chase_mix_counter: mix the loop counter into the chase address so
            successive iterations visit fresh lines instead of settling
            into a short cached cycle (the cache-thrashing families).
        hostile_branches: derive data-dependent branch conditions from a
            linear congruential generator instead of a memory load, making
            them effectively unpredictable (the branch-hostile families).
        working_set_bytes: bytes touched by strided accesses (drives cache
            miss rates).
        predictable_branch_fraction: fraction of generated conditional
            branches whose outcome is loop-counter derived (predictable)
            rather than data derived (hard to predict).
        branch_in_loop_prob: probability a loop body contains an internal
            conditional diamond.
        call_in_loop_prob: probability a loop body calls a leaf procedure.
        num_leaf_procs: number of leaf procedures generated.
        leaf_size: (min, max) instructions per leaf procedure.
        leaf_mul_heavy: True when leaves are dominated by multiplies
            (creates cross-procedure functional-unit contention).
        num_library_procs: number of library procedures generated.
        library_call_prob: probability the driver loop calls a library
            routine each iteration.
        phase_flip: True for a multi-phase program whose driver loop
            alternates between two kernel groups — the loop kernels
            built *without* pointer chasing, and a matching set of
            pointer-chasing kernels — flipping every
            ``2**phase_period_shift`` driver iterations.  The abrupt
            ILP/memory-behaviour change mid-run is exactly the phase
            boundary hardware-adaptive schemes chase with a delay.
        phase_period_shift: log2 of the phase length in driver
            iterations (only meaningful with ``phase_flip``).
    """

    name: str
    seed: int
    outer_trips: int = 4000
    num_loop_kernels: int = 3
    num_dag_kernels: int = 1
    num_switch_kernels: int = 0
    num_call_kernels: int = 0
    loop_body_size: tuple[int, int] = (16, 32)
    loop_trip_count: tuple[int, int] = (24, 64)
    dag_diamonds: tuple[int, int] = (3, 6)
    dag_block_size: tuple[int, int] = (6, 14)
    switch_fanout: int = 0
    ilp_width: int = 3
    mem_fraction: float = 0.25
    store_fraction: float = 0.3
    mul_fraction: float = 0.08
    fp_fraction: float = 0.0
    pointer_chase: bool = False
    chase_shift: int = 5
    chase_mix_counter: bool = False
    hostile_branches: bool = False
    working_set_bytes: int = 32 * 1024
    predictable_branch_fraction: float = 0.8
    branch_in_loop_prob: float = 0.4
    call_in_loop_prob: float = 0.0
    num_leaf_procs: int = 2
    leaf_size: tuple[int, int] = (10, 18)
    leaf_mul_heavy: bool = False
    num_library_procs: int = 1
    library_call_prob: float = 0.05
    phase_flip: bool = False
    phase_period_shift: int = 3
    extra: dict = field(default_factory=dict)


#: The eleven SPECint2000 benchmarks the paper uses (eon is excluded there
#: too because SUIF cannot compile C++).
SPECINT_TRAITS: dict[str, BenchmarkTraits] = {
    "gzip": BenchmarkTraits(
        name="gzip",
        seed=0x67A1,
        num_loop_kernels=4,
        num_dag_kernels=1,
        loop_body_size=(20, 36),
        loop_trip_count=(32, 96),
        ilp_width=3,
        mem_fraction=0.28,
        store_fraction=0.35,
        mul_fraction=0.04,
        working_set_bytes=48 * 1024,
        predictable_branch_fraction=0.85,
        branch_in_loop_prob=0.35,
    ),
    "vpr": BenchmarkTraits(
        name="vpr",
        seed=0x7613,
        num_loop_kernels=3,
        num_dag_kernels=2,
        loop_body_size=(14, 28),
        loop_trip_count=(16, 48),
        ilp_width=3,
        mem_fraction=0.3,
        mul_fraction=0.1,
        working_set_bytes=160 * 1024,
        predictable_branch_fraction=0.72,
        branch_in_loop_prob=0.5,
    ),
    "gcc": BenchmarkTraits(
        name="gcc",
        seed=0x6CC0,
        num_loop_kernels=4,
        num_dag_kernels=8,
        num_switch_kernels=3,
        num_call_kernels=1,
        loop_body_size=(8, 18),
        loop_trip_count=(8, 24),
        dag_diamonds=(5, 9),
        dag_block_size=(4, 10),
        switch_fanout=14,
        ilp_width=2,
        mem_fraction=0.3,
        mul_fraction=0.05,
        working_set_bytes=96 * 1024,
        predictable_branch_fraction=0.68,
        branch_in_loop_prob=0.6,
        call_in_loop_prob=0.15,
        num_leaf_procs=4,
        leaf_size=(8, 14),
    ),
    "mcf": BenchmarkTraits(
        name="mcf",
        seed=0x3CF0,
        num_loop_kernels=3,
        num_dag_kernels=1,
        loop_body_size=(10, 18),
        loop_trip_count=(48, 128),
        ilp_width=1,
        mem_fraction=0.45,
        store_fraction=0.2,
        mul_fraction=0.02,
        pointer_chase=True,
        working_set_bytes=4 * 1024 * 1024,
        predictable_branch_fraction=0.7,
        branch_in_loop_prob=0.45,
    ),
    "crafty": BenchmarkTraits(
        name="crafty",
        seed=0xC4AF,
        num_loop_kernels=3,
        num_dag_kernels=3,
        loop_body_size=(18, 34),
        loop_trip_count=(12, 40),
        dag_diamonds=(4, 7),
        ilp_width=4,
        mem_fraction=0.22,
        mul_fraction=0.14,
        working_set_bytes=64 * 1024,
        predictable_branch_fraction=0.75,
        branch_in_loop_prob=0.55,
        call_in_loop_prob=0.1,
        num_leaf_procs=3,
    ),
    "parser": BenchmarkTraits(
        name="parser",
        seed=0x9A45,
        num_loop_kernels=2,
        num_dag_kernels=3,
        num_call_kernels=1,
        loop_body_size=(10, 22),
        loop_trip_count=(12, 36),
        dag_block_size=(4, 10),
        ilp_width=2,
        mem_fraction=0.3,
        mul_fraction=0.04,
        working_set_bytes=96 * 1024,
        predictable_branch_fraction=0.7,
        branch_in_loop_prob=0.6,
        call_in_loop_prob=0.25,
        num_leaf_procs=3,
        leaf_size=(8, 16),
    ),
    "perlbmk": BenchmarkTraits(
        name="perlbmk",
        seed=0xBE21,
        num_loop_kernels=2,
        num_dag_kernels=2,
        num_call_kernels=2,
        loop_body_size=(12, 24),
        loop_trip_count=(12, 32),
        ilp_width=2,
        mem_fraction=0.28,
        mul_fraction=0.06,
        working_set_bytes=128 * 1024,
        predictable_branch_fraction=0.72,
        branch_in_loop_prob=0.5,
        call_in_loop_prob=0.35,
        num_leaf_procs=4,
        leaf_size=(10, 20),
        num_library_procs=2,
        library_call_prob=0.1,
    ),
    "gap": BenchmarkTraits(
        name="gap",
        seed=0x6A90,
        num_loop_kernels=4,
        num_dag_kernels=1,
        loop_body_size=(18, 32),
        loop_trip_count=(24, 72),
        ilp_width=3,
        mem_fraction=0.24,
        mul_fraction=0.18,
        working_set_bytes=64 * 1024,
        predictable_branch_fraction=0.7,
        branch_in_loop_prob=0.4,
        call_in_loop_prob=0.15,
        num_leaf_procs=2,
        leaf_mul_heavy=True,
    ),
    "vortex": BenchmarkTraits(
        name="vortex",
        seed=0x0F7E,
        num_loop_kernels=1,
        num_dag_kernels=2,
        num_call_kernels=3,
        loop_body_size=(8, 16),
        loop_trip_count=(16, 48),
        dag_block_size=(4, 8),
        ilp_width=3,
        mem_fraction=0.3,
        store_fraction=0.45,
        mul_fraction=0.12,
        working_set_bytes=192 * 1024,
        predictable_branch_fraction=0.78,
        branch_in_loop_prob=0.35,
        call_in_loop_prob=0.75,
        num_leaf_procs=5,
        leaf_size=(14, 26),
        leaf_mul_heavy=True,
        num_library_procs=2,
        library_call_prob=0.08,
    ),
    "bzip2": BenchmarkTraits(
        name="bzip2",
        seed=0xB21B,
        num_loop_kernels=3,
        num_dag_kernels=1,
        num_call_kernels=1,
        loop_body_size=(20, 38),
        loop_trip_count=(32, 96),
        ilp_width=4,
        mem_fraction=0.26,
        store_fraction=0.4,
        mul_fraction=0.1,
        working_set_bytes=256 * 1024,
        predictable_branch_fraction=0.75,
        branch_in_loop_prob=0.3,
        call_in_loop_prob=0.55,
        num_leaf_procs=3,
        leaf_size=(16, 30),
        leaf_mul_heavy=True,
    ),
    "twolf": BenchmarkTraits(
        name="twolf",
        seed=0x7921,
        num_loop_kernels=3,
        num_dag_kernels=2,
        loop_body_size=(16, 30),
        loop_trip_count=(16, 56),
        ilp_width=3,
        mem_fraction=0.34,
        mul_fraction=0.1,
        working_set_bytes=512 * 1024,
        predictable_branch_fraction=0.7,
        branch_in_loop_prob=0.55,
        call_in_loop_prob=0.1,
        num_leaf_procs=2,
    ),
}


#: Extended scenario families beyond the paper's SPECint suite.  Each one
#: stresses a mechanism the eleven paper benchmarks leave comparatively
#: idle, widening the coverage of the resizing techniques:
#:
#: * ``fpstream`` -- FP-heavy numeric kernels: long-latency FADD/FMUL/FDIV
#:   chains keep instructions in the queue for many cycles, and FP
#:   destinations exercise the integer/FP split in the register-file event
#:   accounting.
#: * ``branchstorm`` -- branch-hostile control flow: mostly data-derived
#:   (hard to predict) branches in small blocks, so the front end restarts
#:   constantly and the queue drains on every mispredict shadow.
#: * ``ptrthrash`` -- a cache-thrashing pointer chase: a working set far
#:   beyond L2 with dependent loads, serialising issue behind memory and
#:   making the machine almost insensitive to queue size (an mcf taken to
#:   the extreme).
#: * ``phaseflip`` -- a multi-phase program: the driver loop alternates
#:   between a loop-dominated, ILP-rich kernel group and a serial
#:   pointer-chasing group every ``2**phase_period_shift`` iterations.
#:   Each flip invalidates what the abella interval heuristic just
#:   learned — the reaction-delay weakness of hardware-adaptive schemes
#:   that the paper's compiler-directed approach sidesteps (section 1);
#:   ``benchmarks/test_ablation_phase_change.py`` measures it.
EXTENDED_TRAITS: dict[str, BenchmarkTraits] = {
    "fpstream": BenchmarkTraits(
        name="fpstream",
        seed=0xF9A7,
        num_loop_kernels=4,
        num_dag_kernels=1,
        loop_body_size=(20, 36),
        loop_trip_count=(24, 72),
        ilp_width=4,
        mem_fraction=0.18,
        store_fraction=0.25,
        mul_fraction=0.04,
        fp_fraction=0.4,
        working_set_bytes=96 * 1024,
        predictable_branch_fraction=0.85,
        branch_in_loop_prob=0.25,
        num_leaf_procs=2,
    ),
    "branchstorm": BenchmarkTraits(
        name="branchstorm",
        seed=0xB5A2,
        num_loop_kernels=3,
        num_dag_kernels=4,
        num_switch_kernels=2,
        loop_body_size=(6, 14),
        loop_trip_count=(12, 40),
        dag_diamonds=(6, 10),
        dag_block_size=(3, 8),
        switch_fanout=10,
        ilp_width=2,
        mem_fraction=0.24,
        mul_fraction=0.03,
        working_set_bytes=64 * 1024,
        predictable_branch_fraction=0.2,
        branch_in_loop_prob=0.9,
        hostile_branches=True,
        num_leaf_procs=2,
        leaf_size=(6, 12),
    ),
    "ptrthrash": BenchmarkTraits(
        name="ptrthrash",
        seed=0x9753,
        num_loop_kernels=3,
        num_dag_kernels=1,
        loop_body_size=(8, 16),
        loop_trip_count=(64, 160),
        ilp_width=1,
        mem_fraction=0.55,
        store_fraction=0.15,
        mul_fraction=0.02,
        pointer_chase=True,
        chase_shift=8,
        chase_mix_counter=True,
        working_set_bytes=16 * 1024 * 1024,
        predictable_branch_fraction=0.65,
        branch_in_loop_prob=0.4,
        num_leaf_procs=1,
    ),
    "phaseflip": BenchmarkTraits(
        name="phaseflip",
        seed=0xF11F,
        num_loop_kernels=2,
        num_dag_kernels=1,
        loop_body_size=(16, 30),
        loop_trip_count=(24, 56),
        ilp_width=3,
        mem_fraction=0.32,
        store_fraction=0.3,
        mul_fraction=0.06,
        pointer_chase=True,  # drives the chase-kernel group only
        chase_shift=7,
        chase_mix_counter=True,
        working_set_bytes=2 * 1024 * 1024,
        predictable_branch_fraction=0.75,
        branch_in_loop_prob=0.45,
        num_leaf_procs=2,
        phase_flip=True,
        # One group-A iteration runs ~3k dynamic instructions, so a
        # 2-iteration phase (~5-6k instructions) gives the abella
        # heuristic a handful of 768-cycle intervals to adapt before the
        # behaviour flips again — several flips fit in a tier-1 budget.
        phase_period_shift=1,
    ),
}


#: Every known trait set: the paper's eleven plus the extended families.
ALL_TRAITS: dict[str, BenchmarkTraits] = {**SPECINT_TRAITS, **EXTENDED_TRAITS}
