"""Tests for the power model and the resizing-policy objects."""

from __future__ import annotations

import pytest

from repro.power import EnergyParams, build_power_report, power_savings
from repro.techniques import (
    AbellaPolicy,
    BaselinePolicy,
    FixedLimitPolicy,
    NonEmptyPolicy,
    SoftwareDirectedPolicy,
)
from repro.uarch import SimulationStats, simulate
from repro.workloads import build_benchmark


def make_stats(
    cycles: int = 1000,
    broadcasts: int = 800,
    cmp_full: int = 800 * 160,
    cmp_gated: int = 800 * 20,
    banks_on: int = 6,
    rf_banks_on: int = 9,
) -> SimulationStats:
    stats = SimulationStats(iq_banks_total=10, rf_banks_total=14)
    stats.cycles = cycles
    stats.sampled_cycles = cycles
    stats.iq_broadcasts = broadcasts
    stats.iq_cmp_full = cmp_full
    stats.iq_cmp_gated = cmp_gated
    stats.iq_dispatch_writes = 1200
    stats.iq_issue_reads = 1200
    stats.iq_banks_on_sum = banks_on * cycles
    stats.rf_banks_on_sum = rf_banks_on * cycles
    stats.rf_reads = 2000
    stats.rf_writes = 1100
    return stats


class TestPowerModel:
    def test_baseline_uses_full_cam_and_all_banks(self):
        stats = make_stats()
        report = build_power_report(stats, BaselinePolicy())
        params = EnergyParams()
        assert report.iq.wakeup == pytest.approx(stats.iq_cmp_full * params.iq_cmp_energy)
        assert report.iq.static == pytest.approx(
            params.iq_bank_leakage * stats.sampled_cycles * 10
        )

    def test_gated_policy_uses_gated_comparisons(self):
        stats = make_stats()
        report = build_power_report(stats, SoftwareDirectedPolicy())
        params = EnergyParams()
        assert report.iq.wakeup == pytest.approx(stats.iq_cmp_gated * params.iq_cmp_energy)

    def test_bank_gating_reduces_static_power(self):
        stats = make_stats(banks_on=3)
        gated = build_power_report(stats, SoftwareDirectedPolicy())
        ungated = build_power_report(stats, BaselinePolicy())
        assert gated.iq.static < ungated.iq.static
        assert gated.rf.static < ungated.rf.static

    def test_ungated_fraction_limits_static_savings(self):
        params = EnergyParams(iq_ungated_static_fraction=0.5)
        stats = make_stats(banks_on=0)
        gated = build_power_report(stats, SoftwareDirectedPolicy(), params)
        ungated = build_power_report(stats, BaselinePolicy(), params)
        saving = 1 - gated.iq.static / ungated.iq.static
        assert saving == pytest.approx(0.5, abs=1e-6)

    def test_savings_computation(self):
        baseline = build_power_report(make_stats(), BaselinePolicy())
        technique = build_power_report(make_stats(banks_on=4), SoftwareDirectedPolicy())
        savings = power_savings(baseline, technique)
        assert 0 < savings.iq_dynamic < 1
        assert 0 < savings.iq_static < 1
        pct = savings.as_percentages()
        assert pct["iq_dynamic_pct"] == pytest.approx(100 * savings.iq_dynamic)

    def test_identical_runs_have_zero_savings(self):
        baseline = build_power_report(make_stats(), BaselinePolicy())
        savings = power_savings(baseline, baseline)
        assert savings.iq_dynamic == pytest.approx(0.0)
        assert savings.rf_static == pytest.approx(0.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            EnergyParams(iq_cmp_energy=-1).validate()
        with pytest.raises(ValueError):
            EnergyParams(rf_ungated_static_fraction=1.5).validate()

    def test_dynamic_power_per_cycle(self):
        stats = make_stats(cycles=2000)
        report = build_power_report(stats, BaselinePolicy())
        assert report.iq.dynamic_power == pytest.approx(report.iq.dynamic / 2000)


class TestPolicyObjects:
    @pytest.mark.parametrize(
        "policy_cls,expected_gating",
        [
            (BaselinePolicy, "full"),
            (NonEmptyPolicy, "nonempty"),
            (AbellaPolicy, "nonempty"),
            (SoftwareDirectedPolicy, "nonempty"),
        ],
    )
    def test_gating_declarations(self, policy_cls, expected_gating):
        assert policy_cls().wakeup_gating == expected_gating

    def test_only_software_uses_hints(self):
        assert SoftwareDirectedPolicy().uses_hints
        assert not BaselinePolicy().uses_hints
        assert not AbellaPolicy().uses_hints
        assert not NonEmptyPolicy().uses_hints

    def test_describe(self):
        description = SoftwareDirectedPolicy("extension").describe()
        assert description["name"] == "software-extension"
        assert description["uses_hints"] is True

    def test_fixed_limit_validation(self):
        with pytest.raises(ValueError):
            FixedLimitPolicy(0)

    def test_software_policy_clamps_tiny_hints(self):
        policy = SoftwareDirectedPolicy(min_region_entries=4)

        class _FakeIq:
            def __init__(self):
                self.value = None

            def start_new_region(self, value):
                self.value = value

        class _FakeCore:
            iq = _FakeIq()

        core = _FakeCore()
        policy.on_hint(core, 1)
        assert core.iq.value == 4
        assert policy.hints_applied == 1


class TestEndToEndPowerOrdering:
    """Relative power behaviour on a real benchmark run (small budget)."""

    @pytest.fixture(scope="class")
    def reports(self):
        program = build_benchmark("mcf")
        runs = {}
        for name, policy in (
            ("baseline", BaselinePolicy()),
            ("nonempty", NonEmptyPolicy()),
            ("fixed", FixedLimitPolicy(24)),
        ):
            stats = simulate(program, policy, max_instructions=2500, warmup_instructions=500)
            runs[name] = build_power_report(stats, policy)
        return runs

    def test_nonempty_saves_dynamic_but_not_static(self, reports):
        savings = power_savings(reports["baseline"], reports["nonempty"])
        assert savings.iq_dynamic > 0.1
        assert savings.iq_static == pytest.approx(0.0, abs=1e-9)

    def test_resizing_saves_static_power(self, reports):
        savings = power_savings(reports["baseline"], reports["fixed"])
        assert savings.iq_static > 0.05
        assert savings.iq_dynamic > 0.1

    def test_resizing_beats_gating_alone(self, reports):
        gating_only = power_savings(reports["baseline"], reports["nonempty"])
        resizing = power_savings(reports["baseline"], reports["fixed"])
        assert resizing.iq_dynamic >= gating_only.iq_dynamic
