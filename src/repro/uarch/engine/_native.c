/* _native_replay: the compiled replay kernel.
 *
 * A C port of the scalar per-cycle loop (repro/uarch/engine/scalar.py).
 * The whole machine — fetch queue, rename, issue queue, ROB, caches,
 * branch predictor, event-driven sampling — lives in flat C arrays; the
 * only Python crossings on the hot path are the policy hook (absent for
 * the baseline/nonempty policies) and the per-window trace lowering.
 *
 * Bit-identity contract: statistics must be byte-identical to the scalar
 * kernel for every (trace, policy, config, warm-up, measure-span)
 * combination.  Every stage below mirrors the scalar stage line by line;
 * a semantic change there must be mirrored here (tests/test_engines.py
 * enforces the equivalence).
 *
 * Time base: the scalar kernel rebases every in-flight cycle value when
 * warm-up ends (its clock restarts at zero).  This port instead runs on
 * an absolute cycle counter and reports `abs_cycle - base`, flipping
 * `base` at the warm-up boundary — no rebase walk, identical arithmetic.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Python-exact integer helpers (floor division / modulo).             */
/* ------------------------------------------------------------------ */

static inline int64_t floordiv_ll(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q--;
    return q;
}

static inline int64_t mod_ll(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

#define IQTAG_NONE INT64_MIN
#define LINE_NONE INT64_MIN

/* ------------------------------------------------------------------ */
/* Statistics (mirrors repro.uarch.stats.SimulationStats counters).    */
/* ------------------------------------------------------------------ */

#define STAT_FIELDS(X) \
    X(committed_instructions) \
    X(committed_micro_ops) \
    X(fetched_instructions) \
    X(dispatched_instructions) \
    X(issued_instructions) \
    X(hint_noops_fetched) \
    X(hint_noops_stripped) \
    X(tagged_instructions_seen) \
    X(branches) \
    X(branch_mispredicts) \
    X(ras_mispredicts) \
    X(l1i_accesses) \
    X(l1i_misses) \
    X(l1d_accesses) \
    X(l1d_misses) \
    X(l2_accesses) \
    X(l2_misses) \
    X(iq_occupancy_sum) \
    X(iq_waiting_operand_sum) \
    X(iq_banks_on_sum) \
    X(iq_broadcasts) \
    X(iq_cmp_full) \
    X(iq_cmp_gated) \
    X(iq_dispatch_writes) \
    X(iq_issue_reads) \
    X(iq_dispatch_stall_cycles) \
    X(iq_full_stall_cycles) \
    X(rf_reads) \
    X(rf_writes) \
    X(rf_live_regs_sum) \
    X(rf_banks_on_sum) \
    X(rf_inflight_sum) \
    X(sampled_cycles)

typedef struct {
#define X(name) int64_t name;
    STAT_FIELDS(X)
#undef X
} StatBlock;

/* ------------------------------------------------------------------ */
/* Set-associative cache (LRU-at-front rows, exact list semantics).    */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t sets;
    int64_t assoc;
    int64_t line_bytes;
    int64_t *lines;  /* sets * (assoc + 1), MRU at index 0 */
    int32_t *count;
} Cache;

static int cache_init(Cache *c, int64_t sets, int64_t assoc, int64_t line_bytes) {
    c->sets = sets;
    c->assoc = assoc;
    c->line_bytes = line_bytes;
    c->lines = (int64_t *)malloc((size_t)(sets * (assoc + 1)) * sizeof(int64_t));
    c->count = (int32_t *)calloc((size_t)sets, sizeof(int32_t));
    return (c->lines && c->count) ? 0 : -1;
}

static void cache_free(Cache *c) {
    free(c->lines);
    free(c->count);
}

/* SetAssociativeCache.access: hit -> move-to-front only when not
 * already at the front; miss -> insert at front, trim past assoc. */
static int cache_access(Cache *c, int64_t addr) {
    int64_t line = floordiv_ll(addr, c->line_bytes);
    int64_t si = mod_ll(line, c->sets);
    int64_t *row = c->lines + si * (c->assoc + 1);
    int32_t n = c->count[si];
    for (int32_t i = 0; i < n; i++) {
        if (row[i] == line) {
            if (i) {
                memmove(row + 1, row, (size_t)i * sizeof(int64_t));
                row[0] = line;
            }
            return 1;
        }
    }
    int32_t kept = (int64_t)n < c->assoc ? n : (int32_t)(c->assoc - 1);
    memmove(row + 1, row, (size_t)kept * sizeof(int64_t));
    row[0] = line;
    c->count[si] = kept + 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Hybrid branch predictor + BTB + RAS.                                */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t gshare_n, bimodal_n, selector_n;
    uint8_t *gshare, *bimodal, *selector;
    int64_t history, hist_mask;
    int64_t btb_sets, btb_assoc;
    int64_t *btb_tag, *btb_tgt;  /* btb_sets * btb_assoc, MRU at 0 */
    int32_t *btb_len;
    int64_t ras_entries;
    int64_t *ras;
    int64_t ras_n;
} Pred;

static int pred_init(Pred *p, int64_t gn, int64_t bn, int64_t sn,
                     int64_t hist_bits, int64_t btb_sets, int64_t btb_assoc,
                     int64_t ras_entries) {
    p->gshare_n = gn;
    p->bimodal_n = bn;
    p->selector_n = sn;
    p->gshare = (uint8_t *)malloc((size_t)gn);
    p->bimodal = (uint8_t *)malloc((size_t)bn);
    p->selector = (uint8_t *)malloc((size_t)sn);
    if (!p->gshare || !p->bimodal || !p->selector) return -1;
    memset(p->gshare, 1, (size_t)gn);
    memset(p->bimodal, 1, (size_t)bn);
    memset(p->selector, 1, (size_t)sn);
    p->history = 0;
    p->hist_mask = (1LL << hist_bits) - 1;
    p->btb_sets = btb_sets;
    p->btb_assoc = btb_assoc;
    p->btb_tag = (int64_t *)malloc((size_t)(btb_sets * btb_assoc) * sizeof(int64_t));
    p->btb_tgt = (int64_t *)malloc((size_t)(btb_sets * btb_assoc) * sizeof(int64_t));
    p->btb_len = (int32_t *)calloc((size_t)btb_sets, sizeof(int32_t));
    if (!p->btb_tag || !p->btb_tgt || !p->btb_len) return -1;
    p->ras_entries = ras_entries;
    p->ras = (int64_t *)malloc((size_t)(ras_entries > 0 ? ras_entries : 1) * sizeof(int64_t));
    if (!p->ras) return -1;
    p->ras_n = 0;
    return 0;
}

static void pred_free(Pred *p) {
    free(p->gshare);
    free(p->bimodal);
    free(p->selector);
    free(p->btb_tag);
    free(p->btb_tgt);
    free(p->btb_len);
    free(p->ras);
}

static inline uint8_t cupd(uint8_t counter, int taken) {
    if (taken) return counter >= 3 ? 3 : counter + 1;
    return counter == 0 ? 0 : counter - 1;
}

static void btb_insert(Pred *p, int64_t pc, int64_t target) {
    int64_t set = mod_ll(pc, p->btb_sets);
    int64_t *tags = p->btb_tag + set * p->btb_assoc;
    int64_t *tgts = p->btb_tgt + set * p->btb_assoc;
    int32_t n = p->btb_len[set];
    for (int32_t i = 0; i < n; i++) {
        if (tags[i] == pc) {
            memmove(tags + i, tags + i + 1, (size_t)(n - i - 1) * sizeof(int64_t));
            memmove(tgts + i, tgts + i + 1, (size_t)(n - i - 1) * sizeof(int64_t));
            n--;
            break;
        }
    }
    int32_t kept = (int64_t)n < p->btb_assoc ? n : (int32_t)(p->btb_assoc - 1);
    memmove(tags + 1, tags, (size_t)kept * sizeof(int64_t));
    memmove(tgts + 1, tgts, (size_t)kept * sizeof(int64_t));
    tags[0] = pc;
    tgts[0] = target;
    p->btb_len[set] = kept + 1;
}

/* HybridBranchPredictor.predict_and_update: returns `correct`. */
static int pred_branch(Pred *p, int64_t pc, int taken, int64_t target) {
    int64_t gi = mod_ll(pc ^ p->history, p->gshare_n);
    int64_t bi = mod_ll(pc, p->bimodal_n);
    int64_t si = mod_ll(pc, p->selector_n);
    int g = p->gshare[gi] >= 2;
    int b = p->bimodal[bi] >= 2;
    int pred = (p->selector[si] >= 2) ? g : b;
    int btb_hit = 1;
    if (taken) {
        int64_t set = mod_ll(pc, p->btb_sets);
        int64_t *tags = p->btb_tag + set * p->btb_assoc;
        int64_t *tgts = p->btb_tgt + set * p->btb_assoc;
        int32_t n = p->btb_len[set];
        btb_hit = 0;
        for (int32_t i = 0; i < n; i++) {
            if (tags[i] == pc) {
                btb_hit = tgts[i] == target;
                break;
            }
        }
    }
    int correct = (pred == taken) && (!taken || btb_hit);
    p->gshare[gi] = cupd(p->gshare[gi], taken);
    p->bimodal[bi] = cupd(p->bimodal[bi], taken);
    if (g != b) p->selector[si] = cupd(p->selector[si], g == taken);
    p->history = ((p->history << 1) | (taken ? 1 : 0)) & p->hist_mask;
    if (taken) btb_insert(p, pc, target);
    return correct;
}

static void ras_push(Pred *p, int64_t return_pc) {
    if (p->ras_n == p->ras_entries) {
        memmove(p->ras, p->ras + 1, (size_t)(p->ras_n - 1) * sizeof(int64_t));
        p->ras_n--;
    }
    p->ras[p->ras_n++] = return_pc;
}

static int ras_predict(Pred *p, int64_t actual_return_pc) {
    if (p->ras_n == 0) return 0;
    return p->ras[--p->ras_n] == actual_return_pc;
}

/* ------------------------------------------------------------------ */
/* Banked physical register file (multiword free bitmask).             */
/* ------------------------------------------------------------------ */

typedef struct {
    int32_t nphys, narch, bank_size, nbanks, nwords;
    uint64_t *mask;
    int32_t *rename_map;
    int64_t free_count, allocated;
    int32_t *bank_counts;
    int64_t active_banks;
} RegFile;

static int rf_init(RegFile *f, int32_t nphys, int32_t narch, int32_t bank_size) {
    f->nphys = nphys;
    f->narch = narch;
    f->bank_size = bank_size;
    f->nbanks = (nphys + bank_size - 1) / bank_size;
    f->nwords = (nphys + 63) / 64;
    f->mask = (uint64_t *)calloc((size_t)f->nwords, sizeof(uint64_t));
    f->rename_map = (int32_t *)malloc((size_t)narch * sizeof(int32_t));
    f->bank_counts = (int32_t *)calloc((size_t)f->nbanks, sizeof(int32_t));
    if (!f->mask || !f->rename_map || !f->bank_counts) return -1;
    for (int32_t i = narch; i < nphys; i++)
        f->mask[i >> 6] |= 1ULL << (i & 63);
    for (int32_t i = 0; i < narch; i++) {
        f->rename_map[i] = i;
        f->bank_counts[i / bank_size]++;
    }
    f->free_count = nphys - narch;
    f->allocated = narch;
    f->active_banks = 0;
    for (int32_t bnk = 0; bnk < f->nbanks; bnk++)
        if (f->bank_counts[bnk] > 0) f->active_banks++;
    return 0;
}

static void rf_free_struct(RegFile *f) {
    free(f->mask);
    free(f->rename_map);
    free(f->bank_counts);
}

/* PhysicalRegisterFile.allocate: lowest free register first. */
static inline void rf_alloc(RegFile *f, int arch, int32_t *out_new, int32_t *out_prev) {
    int32_t wi = 0;
    while (f->mask[wi] == 0) wi++;
    uint64_t w = f->mask[wi];
    uint64_t lowest = w & (~w + 1);
    f->mask[wi] = w ^ lowest;
    int bit = 0;
    while (!((lowest >> bit) & 1)) bit++;
    int32_t np = wi * 64 + bit;
    *out_prev = f->rename_map[arch];
    f->rename_map[arch] = np;
    f->allocated++;
    f->free_count--;
    int bank = np / f->bank_size;
    if (f->bank_counts[bank]++ == 0) f->active_banks++;
    *out_new = np;
}

static inline void rf_release(RegFile *f, int32_t phys) {
    f->mask[phys >> 6] |= 1ULL << (phys & 63);
    f->allocated--;
    f->free_count++;
    int bank = phys / f->bank_size;
    if (--f->bank_counts[bank] == 0) f->active_banks--;
}

/* ------------------------------------------------------------------ */
/* Trace windows, lowered from DecodedTrace.                           */
/* ------------------------------------------------------------------ */

/* rename spec layout: 4 count bytes + 4x4 arch-register bytes.        */
#define SPEC_STRIDE 20

typedef struct Window {
    struct Window *next;
    int64_t length;
    int64_t *pc;
    int64_t *next_pc;
    int64_t *mem_addr;
    uint8_t *taken;
    uint8_t *flags;
    uint8_t *latency;
    uint8_t *fu_idx;
    uint8_t *spec;       /* length * SPEC_STRIDE */
    int64_t *iq_tag;     /* only when uses_hints; IQTAG_NONE = None */
    int64_t *hint_value; /* only when uses_hints; valid at F_HINT entries */
} Window;

static void free_window(Window *w) {
    if (!w) return;
    free(w->pc);
    free(w->next_pc);
    free(w->mem_addr);
    free(w->taken);
    free(w->flags);
    free(w->latency);
    free(w->fu_idx);
    free(w->spec);
    free(w->iq_tag);
    free(w->hint_value);
    free(w);
}

/* Copy a Python int list attribute into a fresh int64 array. */
static int lower_int_list(PyObject *trace, const char *name, int64_t length,
                          int64_t **out) {
    PyObject *obj = PyObject_GetAttrString(trace, name);
    if (!obj) return -1;
    PyObject *fast = PySequence_Fast(obj, "trace array must be a sequence");
    Py_DECREF(obj);
    if (!fast) return -1;
    if (PySequence_Fast_GET_SIZE(fast) != (Py_ssize_t)length) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "trace array %s has wrong length", name);
        return -1;
    }
    int64_t *arr = (int64_t *)malloc((size_t)(length > 0 ? length : 1) * sizeof(int64_t));
    if (!arr) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return -1;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (int64_t i = 0; i < length; i++) {
        int64_t v = PyLong_AsLongLong(items[i]);
        if (v == -1 && PyErr_Occurred()) {
            free(arr);
            Py_DECREF(fast);
            return -1;
        }
        arr[i] = v;
    }
    Py_DECREF(fast);
    *out = arr;
    return 0;
}

/* Copy a bytes-like attribute (bytearray) into a fresh uint8 array. */
static int lower_bytes(PyObject *trace, const char *name, int64_t length,
                       uint8_t **out) {
    PyObject *obj = PyObject_GetAttrString(trace, name);
    if (!obj) return -1;
    Py_buffer view;
    if (PyObject_GetBuffer(obj, &view, PyBUF_SIMPLE) < 0) {
        Py_DECREF(obj);
        return -1;
    }
    if (view.len != (Py_ssize_t)length) {
        PyBuffer_Release(&view);
        Py_DECREF(obj);
        PyErr_Format(PyExc_ValueError, "trace array %s has wrong length", name);
        return -1;
    }
    uint8_t *arr = (uint8_t *)malloc((size_t)(length > 0 ? length : 1));
    if (!arr) {
        PyBuffer_Release(&view);
        Py_DECREF(obj);
        PyErr_NoMemory();
        return -1;
    }
    memcpy(arr, view.buf, (size_t)length);
    PyBuffer_Release(&view);
    Py_DECREF(obj);
    *out = arr;
    return 0;
}

/* Lower one spec category tuple into count byte + up to 4 reg bytes. */
static int lower_spec_cat(PyObject *cat, uint8_t *count_slot, uint8_t *regs) {
    PyObject *fast = PySequence_Fast(cat, "rename spec category must be a sequence");
    if (!fast) return -1;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    if (n > 4) {
        Py_DECREF(fast);
        PyErr_SetString(PyExc_ValueError,
                        "native kernel supports at most 4 operands per category");
        return -1;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        long v = PyLong_AsLong(items[i]);
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if (v < 0 || v > 255) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "architectural register out of range");
            return -1;
        }
        regs[i] = (uint8_t)v;
    }
    *count_slot = (uint8_t)n;
    Py_DECREF(fast);
    return 0;
}

static Window *lower_window(PyObject *trace, int uses_hints, int f_hint_flag) {
    Window *w = (Window *)calloc(1, sizeof(Window));
    if (!w) {
        PyErr_NoMemory();
        return NULL;
    }
    PyObject *len_obj = PyObject_GetAttrString(trace, "length");
    if (!len_obj) goto fail;
    w->length = PyLong_AsLongLong(len_obj);
    Py_DECREF(len_obj);
    if (w->length == -1 && PyErr_Occurred()) goto fail;
    int64_t n = w->length;

    if (lower_int_list(trace, "pc", n, &w->pc) < 0) goto fail;
    if (lower_int_list(trace, "next_pc", n, &w->next_pc) < 0) goto fail;
    if (lower_int_list(trace, "mem_addr", n, &w->mem_addr) < 0) goto fail;
    if (lower_bytes(trace, "taken", n, &w->taken) < 0) goto fail;
    if (lower_bytes(trace, "flags", n, &w->flags) < 0) goto fail;
    if (lower_bytes(trace, "latency", n, &w->latency) < 0) goto fail;
    if (lower_bytes(trace, "fu_idx", n, &w->fu_idx) < 0) goto fail;

    w->spec = (uint8_t *)calloc((size_t)(n > 0 ? n : 1), SPEC_STRIDE);
    if (!w->spec) {
        PyErr_NoMemory();
        goto fail;
    }
    {
        PyObject *specs = PyObject_GetAttrString(trace, "rename_specs");
        if (!specs) goto fail;
        PyObject *fast = PySequence_Fast(specs, "rename_specs must be a sequence");
        Py_DECREF(specs);
        if (!fast) goto fail;
        if (PySequence_Fast_GET_SIZE(fast) != (Py_ssize_t)n) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "rename_specs has wrong length");
            goto fail;
        }
        PyObject **items = PySequence_Fast_ITEMS(fast);
        for (int64_t i = 0; i < n; i++) {
            PyObject *sfast = PySequence_Fast(items[i], "rename spec must be a sequence");
            if (!sfast) {
                Py_DECREF(fast);
                goto fail;
            }
            if (PySequence_Fast_GET_SIZE(sfast) != 4) {
                Py_DECREF(sfast);
                Py_DECREF(fast);
                PyErr_SetString(PyExc_ValueError, "rename spec must have 4 categories");
                goto fail;
            }
            uint8_t *row = w->spec + i * SPEC_STRIDE;
            int bad = 0;
            for (int c = 0; c < 4; c++) {
                if (lower_spec_cat(PySequence_Fast_GET_ITEM(sfast, c),
                                   row + c, row + 4 + c * 4) < 0) {
                    bad = 1;
                    break;
                }
            }
            Py_DECREF(sfast);
            if (bad) {
                Py_DECREF(fast);
                goto fail;
            }
        }
        Py_DECREF(fast);
    }

    if (uses_hints) {
        w->iq_tag = (int64_t *)malloc((size_t)(n > 0 ? n : 1) * sizeof(int64_t));
        w->hint_value = (int64_t *)calloc((size_t)(n > 0 ? n : 1), sizeof(int64_t));
        if (!w->iq_tag || !w->hint_value) {
            PyErr_NoMemory();
            goto fail;
        }
        PyObject *tags = PyObject_GetAttrString(trace, "iq_tag");
        if (!tags) goto fail;
        PyObject *fast = PySequence_Fast(tags, "iq_tag must be a sequence");
        Py_DECREF(tags);
        if (!fast) goto fail;
        if (PySequence_Fast_GET_SIZE(fast) != (Py_ssize_t)n) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "iq_tag has wrong length");
            goto fail;
        }
        PyObject **items = PySequence_Fast_ITEMS(fast);
        for (int64_t i = 0; i < n; i++) {
            if (items[i] == Py_None) {
                w->iq_tag[i] = IQTAG_NONE;
            } else {
                int64_t v = PyLong_AsLongLong(items[i]);
                if (v == -1 && PyErr_Occurred()) {
                    Py_DECREF(fast);
                    goto fail;
                }
                w->iq_tag[i] = v;
            }
        }
        Py_DECREF(fast);

        /* Hint payloads: statics[static_idx[rel]].hint_value at F_HINT. */
        PyObject *statics = NULL, *sidx_fast = NULL;
        statics = PyObject_GetAttrString(trace, "statics");
        if (!statics) goto fail;
        PyObject *sidx = PyObject_GetAttrString(trace, "static_idx");
        if (!sidx) {
            Py_DECREF(statics);
            goto fail;
        }
        sidx_fast = PySequence_Fast(sidx, "static_idx must be a sequence");
        Py_DECREF(sidx);
        if (!sidx_fast) {
            Py_DECREF(statics);
            goto fail;
        }
        PyObject **sidx_items = PySequence_Fast_ITEMS(sidx_fast);
        for (int64_t i = 0; i < n; i++) {
            if (!(w->flags[i] & f_hint_flag)) continue;
            Py_ssize_t si = PyLong_AsSsize_t(sidx_items[i]);
            if (si == -1 && PyErr_Occurred()) goto hint_fail;
            PyObject *instr = PySequence_GetItem(statics, si);
            if (!instr) goto hint_fail;
            PyObject *hv = PyObject_GetAttrString(instr, "hint_value");
            Py_DECREF(instr);
            if (!hv) goto hint_fail;
            if (hv == Py_None) {
                Py_DECREF(hv);
                PyErr_SetString(PyExc_ValueError, "hint instruction without hint_value");
                goto hint_fail;
            }
            int64_t v = PyLong_AsLongLong(hv);
            Py_DECREF(hv);
            if (v == -1 && PyErr_Occurred()) goto hint_fail;
            w->hint_value[i] = v;
            continue;
        hint_fail:
            Py_DECREF(sidx_fast);
            Py_DECREF(statics);
            goto fail;
        }
        Py_DECREF(sidx_fast);
        Py_DECREF(statics);
    }
    return w;

fail:
    free_window(w);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* The machine.                                                        */
/* ------------------------------------------------------------------ */

typedef struct {
    int32_t *items;
    int32_t n, cap;
} Bucket;

typedef struct {
    int64_t age;
    int32_t slot;
} ReadyEnt;

typedef struct {
    int32_t *slots;
    int32_t n, cap;
} Cons;

typedef struct {
    /* Config. */
    int fetch_width, dispatch_width, issue_width, commit_width;
    int64_t fq_cap;
    int64_t decode_latency, mispredict_penalty;
    int64_t rob_cap;
    int64_t iq_cap, iq_bank_size, iq_num_banks;
    int32_t int_phys, fp_offset;
    int64_t l1i_line_bytes;
    int64_t l1i_hit_lat, l1i_l2, l1i_mem;
    int64_t l1d_hit_lat, l1d_l2, l1d_mem;
    int64_t cmp_full_per_broadcast;
    int F_HINT, F_NOP, F_BRANCH, F_CALL, F_RET, F_LOAD, F_STORE, F_CONTROL;
    int uses_hints, iq_bank_gating, rf_bank_gating, has_cycle_end;
    int has_measure, has_max_cycles;
    int64_t warmup_instructions, measure_limit, max_cycles;

    /* Components. */
    Cache l1i, l1d, l2;
    Pred pred;
    RegFile rf_int, rf_fp;
    int n_fu;
    int64_t *fu_limits, *fu_used, *fu_issues;
    int64_t structural_stalls;

    /* Issue queue. */
    uint8_t *iq_valid;
    int32_t *iq_rob;
    int64_t *iq_ready_cycle;
    int64_t *iq_age_arr;
    uint8_t *iq_fu;
    uint8_t *iq_nwait;
    int32_t *iq_wait;  /* iq_cap * 8 */
    int64_t iq_head, iq_tail, iq_new_head, iq_count, iq_span;
    int64_t iq_next_age, iq_waiting, iq_active_banks;
    int32_t *iq_bank_counts;
    int64_t iq_global_limit, iq_max_new_range;  /* -1 = None */

    /* ROB (flat arrays). */
    int64_t *rob_dyn;
    uint8_t *rob_state;
    uint8_t *rob_flags;
    uint8_t *rob_latency;
    int64_t *rob_mem;
    uint8_t *rob_ndest, *rob_nsrc, *rob_nfreed;
    int32_t *rob_dest, *rob_src, *rob_freed;  /* rob_cap * 8 each */
    int64_t rob_head, rob_tail, rob_count;
    int64_t rob_limit;  /* -1 = None */

    /* Rename scoreboard + wakeup. */
    uint8_t *tag_ready;
    Cons *cons;  /* per physical tag */
    ReadyEnt *ready;
    int64_t ready_n;

    /* Completion calendar ring. */
    Bucket *ring;
    int64_t ring_size, ring_mask;

    /* Fetch queue ring. */
    int64_t *fq_idx, *fq_ready;
    int64_t fq_head, fq_n;

    /* Front end / trace. */
    Window *d_win, *f_win;
    int64_t d_base, d_limit, f_base, f_limit;
    int64_t trace_pos;
    int trace_exhausted;
    int64_t blocked_seq;  /* -1 = None */
    int64_t fetch_resume;
    int64_t last_fetch_line;  /* LINE_NONE = None */
    int64_t resident, max_resident;

    /* Time & measurement. */
    int64_t abs_cycle, base;
    int warm, measure_frozen;
    int64_t committed_total;

    /* Event-driven sampling. */
    int64_t snap[6];
    int64_t sample_anchor;
    int sample_dirty;

    /* Python crossings. */
    PyObject *next_window;
    PyObject *hook;

    StatBlock st;
} Machine;

/* ------------------------------------------------------------------ */
/* Small machine helpers.                                              */
/* ------------------------------------------------------------------ */

static inline void fq_push(Machine *m, int64_t index, int64_t decode_ready) {
    int64_t pos = m->fq_head + m->fq_n;
    if (pos >= m->fq_cap) pos -= m->fq_cap;
    m->fq_idx[pos] = index;
    m->fq_ready[pos] = decode_ready;
    m->fq_n++;
}

static inline void fq_pop(Machine *m) {
    m->fq_head++;
    if (m->fq_head == m->fq_cap) m->fq_head = 0;
    m->fq_n--;
}

static int cons_append(Machine *m, int32_t tag, int32_t slot) {
    Cons *c = &m->cons[tag];
    if (c->n == c->cap) {
        int32_t ncap = c->cap ? c->cap * 2 : 8;
        int32_t *ns = (int32_t *)realloc(c->slots, (size_t)ncap * sizeof(int32_t));
        if (!ns) {
            PyErr_NoMemory();
            return -1;
        }
        c->slots = ns;
        c->cap = ncap;
    }
    c->slots[c->n++] = slot;
    return 0;
}

/* Insert into the age-sorted ready array (binary insertion). */
static void ready_insert(Machine *m, int64_t age, int32_t slot) {
    int64_t lo = 0, hi = m->ready_n;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (m->ready[mid].age < age) lo = mid + 1;
        else hi = mid;
    }
    memmove(m->ready + lo + 1, m->ready + lo,
            (size_t)(m->ready_n - lo) * sizeof(ReadyEnt));
    m->ready[lo].age = age;
    m->ready[lo].slot = slot;
    m->ready_n++;
}

static int ring_append(Machine *m, int64_t finish, int32_t rob_index) {
    Bucket *b = &m->ring[finish & m->ring_mask];
    if (b->n == b->cap) {
        int32_t ncap = b->cap ? b->cap * 2 : 8;
        int32_t *ni = (int32_t *)realloc(b->items, (size_t)ncap * sizeof(int32_t));
        if (!ni) {
            PyErr_NoMemory();
            return -1;
        }
        b->items = ni;
        b->cap = ncap;
    }
    b->items[b->n++] = rob_index;
    return 0;
}

/* BankedIssueQueue._advance_pointers, exactly. */
static void iq_advance(Machine *m) {
    int64_t cap = m->iq_cap;
    int64_t head = m->iq_head, span = m->iq_span;
    while (span > 0 && !m->iq_valid[head]) {
        head++;
        if (head == cap) head = 0;
        span--;
    }
    m->iq_head = head;
    m->iq_span = span;
    if (span == 0) {
        m->iq_head = m->iq_tail;
        m->iq_new_head = m->iq_tail;
        return;
    }
    int64_t nh = m->iq_new_head;
    if (mod_ll(nh - head, cap) > span) nh = head;
    int64_t tail = m->iq_tail;
    while (nh != tail && !m->iq_valid[nh]) {
        nh++;
        if (nh == cap) nh = 0;
    }
    m->iq_new_head = nh;
}

/* Policy hook crossing.  kind: 0 = on_hint, 1 = on_cycle_end,
 * 2 = on_measurement_start.  The Python side syncs the view objects,
 * dispatches to the policy, and returns the four policy-owned values
 * (new_head, max_new_range, global_limit, rob_limit; -1 encodes None). */
static int call_hook(Machine *m, int kind, int64_t arg) {
    PyObject *res = PyObject_CallFunction(
        m->hook, "iLLLLL", kind, (long long)arg,
        (long long)(m->abs_cycle - m->base), (long long)m->committed_total,
        (long long)m->iq_tail, (long long)m->iq_new_head);
    if (!res) return -1;
    long long vals[4];
    int ok = PyTuple_Check(res) && PyTuple_GET_SIZE(res) == 4;
    if (ok) {
        for (int i = 0; i < 4; i++) {
            vals[i] = PyLong_AsLongLong(PyTuple_GET_ITEM(res, i));
            if (vals[i] == -1 && PyErr_Occurred()) {
                ok = 0;
                break;
            }
        }
    }
    Py_DECREF(res);
    if (!ok) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "native hook must return a 4-tuple of ints");
        return -1;
    }
    m->iq_new_head = vals[0];
    m->iq_max_new_range = vals[1];
    m->iq_global_limit = vals[2];
    m->rob_limit = vals[3];
    return 0;
}

/* Event-driven sampling: fold the standing snapshot, retake it. */
static void flush_sample(Machine *m) {
    int64_t pending = m->abs_cycle - m->sample_anchor;
    if (pending) {
        StatBlock *st = &m->st;
        st->sampled_cycles += pending;
        st->iq_occupancy_sum += m->snap[0] * pending;
        st->iq_waiting_operand_sum += m->snap[1] * pending;
        st->iq_banks_on_sum += m->snap[2] * pending;
        st->rf_banks_on_sum += m->snap[3] * pending;
        st->rf_live_regs_sum += m->snap[4] * pending;
        st->rf_inflight_sum += m->snap[5] * pending;
    }
    m->snap[0] = m->iq_count;
    m->snap[1] = m->iq_waiting;
    m->snap[2] = m->iq_bank_gating ? m->iq_active_banks : m->iq_num_banks;
    m->snap[3] = m->rf_bank_gating ? m->rf_int.active_banks : m->rf_int.nbanks;
    m->snap[4] = m->rf_int.allocated;
    m->snap[5] = m->rob_count;
    m->sample_anchor = m->abs_cycle;
    m->sample_dirty = 0;
}

/* Warm-up flip: zero the stats, rebase the reported clock. */
static int end_warmup(Machine *m) {
    m->warm = 1;
    memset(&m->st, 0, sizeof(StatBlock));
    int64_t shift = m->abs_cycle;
    m->base = m->abs_cycle;
    m->sample_anchor = m->abs_cycle;
    m->sample_dirty = 1;
    return call_hook(m, 2, shift);
}

/* ------------------------------------------------------------------ */
/* Commit.                                                             */
/* ------------------------------------------------------------------ */

static int commit_stage(Machine *m) {
    if (m->rob_count == 0) return 0;
    int64_t head = m->rob_head;
    if (m->rob_state[head] != 2) return 0;
    int64_t count = m->rob_count;
    int64_t committed = 0;
    int width = m->commit_width;
    int32_t fp_offset = m->fp_offset;
    for (;;) {
        int32_t ri = (int32_t)head;
        head++;
        if (head == m->rob_cap) head = 0;
        count--;
        int nf = m->rob_nfreed[ri];
        int32_t *fr = m->rob_freed + (int64_t)ri * 8;
        for (int i = 0; i < nf; i++) {
            int32_t tag = fr[i];
            if (tag >= fp_offset) rf_release(&m->rf_fp, tag - fp_offset);
            else rf_release(&m->rf_int, tag);
        }
        committed++;
        m->committed_total++;
        if (m->warm) {
            m->st.committed_instructions++;
            m->st.committed_micro_ops++;
            if (m->has_measure &&
                m->st.committed_instructions >= m->measure_limit) {
                m->measure_frozen = 1;
                break;
            }
        } else if (m->committed_total >= m->warmup_instructions) {
            if (end_warmup(m)) return -1;
            if (m->has_measure && m->measure_limit <= 0) {
                m->measure_frozen = 1;
                break;
            }
        }
        if (committed >= width || count == 0) break;
        if (m->rob_state[head] != 2) break;
    }
    m->rob_head = head;
    m->rob_count = count;
    m->sample_dirty = 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Writeback.                                                          */
/* ------------------------------------------------------------------ */

static void writeback(Machine *m) {
    Bucket *b = &m->ring[m->abs_cycle & m->ring_mask];
    if (b->n == 0) return;
    int64_t broadcasts = 0, cmp_gated = 0, rf_writes = 0;
    int32_t int_phys = m->int_phys;
    for (int32_t k = 0; k < b->n; k++) {
        int32_t ri = b->items[k];
        m->rob_state[ri] = 2;
        int nd = m->rob_ndest[ri];
        int32_t *dt = m->rob_dest + (int64_t)ri * 8;
        for (int i = 0; i < nd; i++) {
            int32_t tag = dt[i];
            if (tag < int_phys) rf_writes++;
            m->tag_ready[tag] = 1;
            broadcasts++;
            /* Gated comparators sample the waiting-operand count at the
             * instant of each broadcast, before the wakeups it causes. */
            cmp_gated += m->iq_waiting;
            Cons *c = &m->cons[tag];
            int32_t cn = c->n;
            c->n = 0;
            for (int32_t j = 0; j < cn; j++) {
                int32_t slot = c->slots[j];
                if (!m->iq_valid[slot]) continue;
                int nw = m->iq_nwait[slot];
                int32_t *wt = m->iq_wait + (int64_t)slot * 8;
                for (int q = 0; q < nw; q++) {
                    if (wt[q] == tag) {
                        wt[q] = wt[nw - 1];
                        m->iq_nwait[slot] = (uint8_t)(nw - 1);
                        m->iq_waiting--;
                        if (nw == 1)
                            ready_insert(m, m->iq_age_arr[slot], slot);
                        break;
                    }
                }
            }
        }
        if (m->blocked_seq >= 0 && m->rob_dyn[ri] == m->blocked_seq) {
            m->blocked_seq = -1;
            int64_t resume = m->abs_cycle + m->mispredict_penalty;
            if (resume > m->fetch_resume) m->fetch_resume = resume;
        }
    }
    b->n = 0;
    m->sample_dirty = 1;
    if (m->warm && broadcasts) {
        m->st.rf_writes += rf_writes;
        m->st.iq_broadcasts += broadcasts;
        m->st.iq_cmp_full += broadcasts * m->cmp_full_per_broadcast;
        m->st.iq_cmp_gated += cmp_gated;
    }
}

/* ------------------------------------------------------------------ */
/* Issue / execute.                                                    */
/* ------------------------------------------------------------------ */

static int64_t mem_latency(Machine *m, int64_t addr, int flags, int64_t base_latency) {
    int l1_hit = cache_access(&m->l1d, addr);
    int l2_hit = 1;
    int64_t lat;
    if (l1_hit) {
        lat = m->l1d_hit_lat;
    } else {
        l2_hit = cache_access(&m->l2, addr);
        lat = l2_hit ? m->l1d_l2 : m->l1d_mem;
    }
    if (flags & m->F_LOAD) {
        if (m->warm) {
            m->st.l1d_accesses++;
            if (!l1_hit) {
                m->st.l1d_misses++;
                m->st.l2_accesses++;
            }
            if (!l2_hit) m->st.l2_misses++;
        }
        return base_latency + lat;
    }
    if (m->warm) m->st.l1d_accesses++;
    return base_latency;
}

static int issue_stage(Machine *m) {
    if (m->ready_n == 0) return 0;
    int64_t issued = 0;
    int64_t cycle = m->abs_cycle;
    int width = m->issue_width;
    int32_t int_phys = m->int_phys;
    int64_t fu_stalls = 0, rf_reads = 0;
    int64_t n = m->ready_n, w = 0;
    int mem_flags = m->F_LOAD | m->F_STORE;
    for (int64_t r = 0; r < n; r++) {
        if (issued >= width) {
            if (w != r)
                memmove(m->ready + w, m->ready + r,
                        (size_t)(n - r) * sizeof(ReadyEnt));
            w += n - r;
            break;
        }
        ReadyEnt e = m->ready[r];
        int32_t slot = e.slot;
        if (m->iq_ready_cycle[slot] > cycle) {
            m->ready[w++] = e;
            continue;
        }
        int fu = m->iq_fu[slot];
        if (m->fu_used[fu] >= m->fu_limits[fu]) {
            fu_stalls++;
            m->ready[w++] = e;
            continue;
        }
        m->fu_used[fu]++;
        m->fu_issues[fu]++;
        int32_t ri = m->iq_rob[slot];
        /* Inlined BankedIssueQueue.remove (entry is ready: no waiting
         * operands to deduct). */
        m->iq_valid[slot] = 0;
        m->iq_count--;
        int64_t bank = slot / m->iq_bank_size;
        if (--m->iq_bank_counts[bank] == 0) m->iq_active_banks--;
        if (!m->iq_valid[m->iq_head] || !m->iq_valid[m->iq_new_head])
            iq_advance(m);
        m->rob_state[ri] = 1;
        issued++;
        int ns = m->rob_nsrc[ri];
        int32_t *stags = m->rob_src + (int64_t)ri * 8;
        for (int i = 0; i < ns; i++)
            if (stags[i] < int_phys) rf_reads++;
        int flags = m->rob_flags[ri];
        int64_t latency;
        if (flags & mem_flags)
            latency = mem_latency(m, m->rob_mem[ri], flags, m->rob_latency[ri]);
        else
            latency = m->rob_latency[ri];
        int64_t finish = cycle + (latency > 1 ? latency : 1);
        if (ring_append(m, finish, ri)) return -1;
    }
    m->ready_n = w;
    if (fu_stalls) m->structural_stalls += fu_stalls;
    if (issued) {
        m->sample_dirty = 1;
        if (m->warm) {
            m->st.issued_instructions += issued;
            m->st.iq_issue_reads += issued;
            m->st.rf_reads += rf_reads;
        }
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Dispatch (rename + issue-queue/ROB allocation).                     */
/* ------------------------------------------------------------------ */

static int dispatch_stage(Machine *m) {
    if (m->fq_n == 0) return 0;
    int64_t cycle = m->abs_cycle;
    if (m->fq_ready[m->fq_head] > cycle) return 0;
    Window *w = m->d_win;
    int64_t d_base = m->d_base, d_limit = m->d_limit;
    int64_t dispatched = 0;
    int stalled_region = 0, stalled_physical = 0;
    int width = m->dispatch_width;
    int warm = m->warm;
    int uses_hints = m->uses_hints;
    /* rob_effective is hoisted once per dispatch call, like the scalar
     * kernel; the admission limits the policy can change mid-loop
     * (global_limit, max_new_range, new_head) are read fresh below. */
    int64_t rob_effective = m->rob_limit < 0 ? m->rob_cap : m->rob_limit;
    int64_t ready_cycle = cycle + 1;
    int hint_nop = m->F_HINT | m->F_NOP;
    int32_t fp_offset = m->fp_offset;
    while (dispatched < width && m->fq_n) {
        int64_t index = m->fq_idx[m->fq_head];
        if (m->fq_ready[m->fq_head] > cycle) break;
        while (index >= d_limit) {
            /* Dispatch drained its window: step to the next one fetch
             * already pulled in, releasing the old window. */
            Window *nw = w->next;
            if (!nw) {
                PyErr_SetString(PyExc_RuntimeError,
                                "native kernel: dispatch ran past the fetch window");
                return -1;
            }
            m->d_win = nw;
            free_window(w);
            m->resident--;
            w = nw;
            d_base = d_limit;
            d_limit += w->length;
            m->d_base = d_base;
            m->d_limit = d_limit;
        }
        int64_t rel = index - d_base;
        int flags = w->flags[rel];

        /* The paper's special NOOP: consumes a dispatch slot but never
         * reaches the issue queue. */
        if (flags & hint_nop) {
            if (flags & m->F_HINT) {
                if (uses_hints) {
                    if (call_hook(m, 0, w->hint_value[rel])) return -1;
                }
                if (warm) m->st.hint_noops_stripped++;
            }
            fq_pop(m);
            dispatched++;
            continue;
        }

        /* Tag-carried hints (Extension/Improved) cost no dispatch slot. */
        if (uses_hints) {
            int64_t tag_value = w->iq_tag[rel];
            if (tag_value != IQTAG_NONE) {
                if (call_hook(m, 0, tag_value)) return -1;
                if (warm) m->st.tagged_instructions_seen++;
            }
        }

        if (m->rob_count >= rob_effective) break;
        const uint8_t *spec = w->spec + rel * SPEC_STRIDE;
        int n_is = spec[0], n_fs = spec[1], n_id = spec[2], n_fd = spec[3];
        if (m->rf_int.free_count < n_id ||
            (n_fd && m->rf_fp.free_count < n_fd))
            break;
        /* Inlined BankedIssueQueue.can_dispatch. */
        if (m->iq_span >= m->iq_cap) {
            stalled_physical = 1;
            break;
        }
        if (m->iq_global_limit >= 0 && m->iq_span >= m->iq_global_limit) {
            stalled_region = 1;
            break;
        }
        if (m->iq_max_new_range >= 0 && m->iq_span &&
            mod_ll(m->iq_tail - m->iq_new_head, m->iq_cap) >= m->iq_max_new_range) {
            stalled_region = 1;
            break;
        }

        fq_pop(m);
        /* Rename: integer sources then FP sources; integer dests then
         * FP dests (tag order matters for rf_reads/rf_writes counting). */
        int32_t src_tags[8];
        int n_src = 0;
        for (int i = 0; i < n_is; i++)
            src_tags[n_src++] = m->rf_int.rename_map[spec[4 + i]];
        for (int i = 0; i < n_fs; i++)
            src_tags[n_src++] = m->rf_fp.rename_map[spec[8 + i]] + fp_offset;
        int32_t dest_tags[8], freed[8];
        int n_dest = 0;
        for (int i = 0; i < n_id; i++) {
            int32_t np, prev;
            rf_alloc(&m->rf_int, spec[12 + i], &np, &prev);
            dest_tags[n_dest] = np;
            freed[n_dest] = prev;
            n_dest++;
            m->tag_ready[np] = 0;
        }
        for (int i = 0; i < n_fd; i++) {
            int32_t np, prev;
            rf_alloc(&m->rf_fp, spec[16 + i], &np, &prev);
            dest_tags[n_dest] = np + fp_offset;
            freed[n_dest] = prev + fp_offset;
            m->tag_ready[np + fp_offset] = 0;
            n_dest++;
        }

        /* Inlined ReorderBuffer.allocate. */
        int32_t ri = (int32_t)m->rob_tail;
        m->rob_dyn[ri] = index;
        m->rob_state[ri] = 0;
        m->rob_ndest[ri] = (uint8_t)n_dest;
        m->rob_nfreed[ri] = (uint8_t)n_dest;
        m->rob_nsrc[ri] = (uint8_t)n_src;
        memcpy(m->rob_dest + (int64_t)ri * 8, dest_tags, (size_t)n_dest * 4);
        memcpy(m->rob_freed + (int64_t)ri * 8, freed, (size_t)n_dest * 4);
        memcpy(m->rob_src + (int64_t)ri * 8, src_tags, (size_t)n_src * 4);
        m->rob_flags[ri] = (uint8_t)flags;
        m->rob_latency[ri] = w->latency[rel];
        m->rob_mem[ri] = w->mem_addr[rel];
        m->rob_tail = m->rob_tail + 1 == m->rob_cap ? 0 : m->rob_tail + 1;
        m->rob_count++;

        /* Inlined BankedIssueQueue.allocate.  Waiting tags deduplicate
         * (the scalar kernel builds a set), first occurrence kept. */
        int32_t slot = (int32_t)m->iq_tail;
        int32_t *wt = m->iq_wait + (int64_t)slot * 8;
        int nw = 0;
        for (int i = 0; i < n_src; i++) {
            int32_t t = src_tags[i];
            if (m->tag_ready[t]) continue;
            int dup = 0;
            for (int j = 0; j < nw; j++)
                if (wt[j] == t) {
                    dup = 1;
                    break;
                }
            if (!dup) wt[nw++] = t;
        }
        m->iq_valid[slot] = 1;
        m->iq_rob[slot] = ri;
        m->iq_nwait[slot] = (uint8_t)nw;
        m->iq_fu[slot] = w->fu_idx[rel];
        m->iq_ready_cycle[slot] = ready_cycle;
        int64_t age = m->iq_next_age++;
        m->iq_age_arr[slot] = age;
        m->iq_tail = m->iq_tail + 1 == m->iq_cap ? 0 : m->iq_tail + 1;
        m->iq_count++;
        m->iq_span++;
        int64_t bank = slot / m->iq_bank_size;
        if (m->iq_bank_counts[bank]++ == 0) m->iq_active_banks++;
        if (nw) {
            m->iq_waiting += nw;
            for (int i = 0; i < nw; i++)
                if (cons_append(m, wt[i], slot)) return -1;
        } else {
            /* Ages are monotonic, so dispatch appends at the end. */
            m->ready[m->ready_n].age = age;
            m->ready[m->ready_n].slot = slot;
            m->ready_n++;
        }
        dispatched++;
        if (warm) {
            m->st.dispatched_instructions++;
            m->st.iq_dispatch_writes++;
        }
    }
    if (dispatched) m->sample_dirty = 1;
    if (warm) {
        if (stalled_region) m->st.iq_dispatch_stall_cycles++;
        if (stalled_physical) m->st.iq_full_stall_cycles++;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Fetch.                                                              */
/* ------------------------------------------------------------------ */

static int advance_fetch_window(Machine *m) {
    for (;;) {
        PyObject *win = PyObject_CallNoArgs(m->next_window);
        if (!win) return -1;
        if (win == Py_None) {
            Py_DECREF(win);
            return 0;
        }
        Window *w = lower_window(win, m->uses_hints, m->F_HINT);
        Py_DECREF(win);
        if (!w) return -1;
        if (w->length == 0) {
            free_window(w);
            continue;
        }
        m->f_win->next = w;
        m->f_win = w;
        m->resident++;
        if (m->resident > m->max_resident) m->max_resident = m->resident;
        m->f_base = m->f_limit;
        m->f_limit += w->length;
        return 1;
    }
}

/* Returns 1 when the transfer mispredicted (fetch must stop). */
static int handle_control(Machine *m, Window *w, int64_t rel, int flags,
                          int64_t index) {
    int mispredicted = 0;
    if (flags & m->F_BRANCH) {
        if (m->warm) m->st.branches++;
        int correct = pred_branch(&m->pred, w->pc[rel], w->taken[rel] != 0,
                                  w->next_pc[rel]);
        mispredicted = !correct;
        if (mispredicted && m->warm) m->st.branch_mispredicts++;
    } else if (flags & m->F_CALL) {
        ras_push(&m->pred, w->pc[rel] + 4);
    } else if (flags & m->F_RET) {
        int correct = ras_predict(&m->pred, w->next_pc[rel]);
        mispredicted = !correct;
        if (mispredicted && m->warm) m->st.ras_mispredicts++;
    }
    if (mispredicted) m->blocked_seq = index;
    return mispredicted;
}

static int fetch_stage(Machine *m) {
    if (m->trace_exhausted) return 0;
    if (m->blocked_seq >= 0) return 0;
    int64_t cycle = m->abs_cycle;
    if (cycle < m->fetch_resume) return 0;
    if (m->fq_n >= m->fq_cap) return 0;
    Window *w = m->f_win;
    int64_t index = m->trace_pos;
    int warm = m->warm;
    int64_t decode_ready = cycle + m->decode_latency;
    int width = m->fetch_width;
    int64_t last_line = m->last_fetch_line;
    int64_t fetched = 0, hints_fetched = 0;
    while (fetched < width && m->fq_n < m->fq_cap) {
        if (index >= m->f_limit) {
            int got = advance_fetch_window(m);
            if (got < 0) return -1;
            if (got == 0) {
                m->trace_exhausted = 1;
                break;
            }
            w = m->f_win;
        }
        int64_t rel = index - m->f_base;
        int64_t pc = w->pc[rel];
        int flags = w->flags[rel];
        if (flags & m->F_HINT) hints_fetched++;

        /* Instruction-cache access per new line. */
        int64_t line = floordiv_ll(pc, m->l1i_line_bytes);
        if (line != last_line) {
            last_line = line;
            int l1_hit = cache_access(&m->l1i, pc);
            int64_t latency;
            if (l1_hit) {
                latency = m->l1i_hit_lat;
            } else {
                int l2_hit = cache_access(&m->l2, pc);
                latency = l2_hit ? m->l1i_l2 : m->l1i_mem;
            }
            if (warm) {
                m->st.l1i_accesses++;
                if (!l1_hit) m->st.l1i_misses++;
            }
            if (!l1_hit) {
                m->fetch_resume = cycle + latency;
                fq_push(m, index, decode_ready);
                fetched++;
                /* The missed line still delivers this instruction: run
                 * branch prediction (it can block fetch past the miss). */
                if (flags & m->F_CONTROL)
                    handle_control(m, w, rel, flags, index);
                index++;
                break;
            }
        }

        fq_push(m, index, decode_ready);
        fetched++;
        if ((flags & m->F_CONTROL) && handle_control(m, w, rel, flags, index)) {
            index++;
            break; /* mispredicted: stop fetching this cycle */
        }
        index++;
    }
    m->trace_pos = index;
    m->last_fetch_line = last_line;
    if (warm && fetched) {
        m->st.fetched_instructions += fetched;
        m->st.hint_noops_fetched += hints_fetched;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Step / run.                                                         */
/* ------------------------------------------------------------------ */

static int step(Machine *m) {
    if (m->measure_frozen) return 0;
    memset(m->fu_used, 0, (size_t)m->n_fu * sizeof(int64_t));
    if (commit_stage(m)) return -1;
    if (m->measure_frozen) {
        /* The measure span ended at a commit earlier in this cycle:
         * stop before the cycle counter advances (the rest of the cycle
         * belongs to the next shard's measurement). */
        return 0;
    }
    writeback(m);
    if (issue_stage(m)) return -1;
    if (dispatch_stage(m)) return -1;
    if (fetch_stage(m)) return -1;
    if (m->warm && m->sample_dirty) flush_sample(m);
    if (m->has_cycle_end) {
        if (call_hook(m, 1, 0)) return -1;
    }
    m->abs_cycle++;
    return 0;
}

static int run_machine(Machine *m) {
    while (!(m->trace_exhausted && m->fq_n == 0 && m->rob_count == 0)) {
        if (step(m)) return -1;
        if (m->measure_frozen) break;
        if (m->has_max_cycles && (m->abs_cycle - m->base) >= m->max_cycles)
            break;
    }
    if (m->warm) flush_sample(m);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Machine construction / teardown.                                    */
/* ------------------------------------------------------------------ */

static void free_machine(Machine *m) {
    cache_free(&m->l1i);
    cache_free(&m->l1d);
    cache_free(&m->l2);
    pred_free(&m->pred);
    rf_free_struct(&m->rf_int);
    rf_free_struct(&m->rf_fp);
    free(m->fu_limits);
    free(m->fu_used);
    free(m->fu_issues);
    free(m->iq_valid);
    free(m->iq_rob);
    free(m->iq_ready_cycle);
    free(m->iq_age_arr);
    free(m->iq_fu);
    free(m->iq_nwait);
    free(m->iq_wait);
    free(m->iq_bank_counts);
    free(m->rob_dyn);
    free(m->rob_state);
    free(m->rob_flags);
    free(m->rob_latency);
    free(m->rob_mem);
    free(m->rob_ndest);
    free(m->rob_nsrc);
    free(m->rob_nfreed);
    free(m->rob_dest);
    free(m->rob_src);
    free(m->rob_freed);
    free(m->tag_ready);
    if (m->cons) {
        int32_t total = m->int_phys + (m->rf_fp.nphys ? m->rf_fp.nphys : 0);
        for (int32_t i = 0; i < total; i++) free(m->cons[i].slots);
        free(m->cons);
    }
    free(m->ready);
    if (m->ring) {
        for (int64_t i = 0; i < m->ring_size; i++) free(m->ring[i].items);
        free(m->ring);
    }
    free(m->fq_idx);
    free(m->fq_ready);
    {
        Window *w = m->d_win;
        while (w) {
            Window *next = w->next;
            free_window(w);
            w = next;
        }
    }
    Py_XDECREF(m->next_window);
    Py_XDECREF(m->hook);
    free(m);
}

static int get_ll(PyObject *params, const char *key, int64_t *out) {
    PyObject *v = PyDict_GetItemString(params, key); /* borrowed */
    if (!v) {
        PyErr_Format(PyExc_KeyError, "native params missing %s", key);
        return -1;
    }
    int64_t x = PyLong_AsLongLong(v);
    if (x == -1 && PyErr_Occurred()) return -1;
    *out = x;
    return 0;
}

#define GET(key, field) \
    do { \
        int64_t tmp_; \
        if (get_ll(params, key, &tmp_)) goto fail; \
        field = tmp_; \
    } while (0)

static Machine *build_machine(PyObject *params) {
    Machine *m = (Machine *)calloc(1, sizeof(Machine));
    if (!m) {
        PyErr_NoMemory();
        return NULL;
    }
    int64_t v;

    GET("fetch_width", m->fetch_width);
    GET("dispatch_width", m->dispatch_width);
    GET("issue_width", m->issue_width);
    GET("commit_width", m->commit_width);
    GET("fetch_queue_entries", m->fq_cap);
    GET("decode_latency", m->decode_latency);
    GET("branch_mispredict_penalty", m->mispredict_penalty);
    GET("rob_entries", m->rob_cap);
    GET("iq_entries", m->iq_cap);
    GET("iq_bank_size", m->iq_bank_size);
    m->iq_num_banks = (m->iq_cap + m->iq_bank_size - 1) / m->iq_bank_size;
    m->cmp_full_per_broadcast = 2 * m->iq_cap;

    int64_t int_phys, fp_phys, rf_bank, int_arch, fp_arch;
    GET("int_phys_regs", int_phys);
    GET("fp_phys_regs", fp_phys);
    GET("regfile_bank_size", rf_bank);
    GET("num_int_arch", int_arch);
    GET("num_fp_arch", fp_arch);
    m->int_phys = (int32_t)int_phys;
    m->fp_offset = (int32_t)int_phys;
    if (rf_init(&m->rf_int, (int32_t)int_phys, (int32_t)int_arch, (int32_t)rf_bank))
        goto fail_mem;
    if (rf_init(&m->rf_fp, (int32_t)fp_phys, (int32_t)fp_arch, (int32_t)rf_bank))
        goto fail_mem;

    int64_t sets, assoc, line, hit;
    GET("l1i_sets", sets);
    GET("l1i_assoc", assoc);
    GET("l1i_line", line);
    GET("l1i_hit", hit);
    if (cache_init(&m->l1i, sets, assoc, line)) goto fail_mem;
    m->l1i_line_bytes = line;
    m->l1i_hit_lat = hit;
    GET("l1d_sets", sets);
    GET("l1d_assoc", assoc);
    GET("l1d_line", line);
    GET("l1d_hit", hit);
    if (cache_init(&m->l1d, sets, assoc, line)) goto fail_mem;
    m->l1d_hit_lat = hit;
    int64_t l2_hit, l2_miss;
    GET("l2_sets", sets);
    GET("l2_assoc", assoc);
    GET("l2_line", line);
    GET("l2_hit", l2_hit);
    GET("l2_miss_latency", l2_miss);
    if (cache_init(&m->l2, sets, assoc, line)) goto fail_mem;
    m->l1i_l2 = m->l1i_hit_lat + l2_hit;
    m->l1i_mem = m->l1i_l2 + l2_miss;
    m->l1d_l2 = m->l1d_hit_lat + l2_hit;
    m->l1d_mem = m->l1d_l2 + l2_miss;

    int64_t gn, bn, sn, hb, btb_sets, btb_assoc, ras;
    GET("gshare_entries", gn);
    GET("bimodal_entries", bn);
    GET("selector_entries", sn);
    GET("history_bits", hb);
    GET("btb_sets", btb_sets);
    GET("btb_assoc", btb_assoc);
    GET("ras_entries", ras);
    if (pred_init(&m->pred, gn, bn, sn, hb, btb_sets, btb_assoc, ras))
        goto fail_mem;

    GET("f_hint", m->F_HINT);
    GET("f_nop", m->F_NOP);
    GET("f_branch", m->F_BRANCH);
    GET("f_call", m->F_CALL);
    GET("f_ret", m->F_RET);
    GET("f_load", m->F_LOAD);
    GET("f_store", m->F_STORE);
    m->F_CONTROL = m->F_BRANCH | m->F_CALL | m->F_RET;

    GET("uses_hints", m->uses_hints);
    GET("iq_bank_gating", m->iq_bank_gating);
    GET("rf_bank_gating", m->rf_bank_gating);
    GET("has_cycle_end", m->has_cycle_end);
    GET("warmup_instructions", m->warmup_instructions);
    GET("max_cycles", m->max_cycles);
    m->has_max_cycles = m->max_cycles >= 0;
    GET("has_measure", m->has_measure);
    GET("measure_limit", m->measure_limit);
    GET("initially_frozen", m->measure_frozen);
    GET("global_limit", m->iq_global_limit);
    GET("max_new_range", m->iq_max_new_range);
    GET("rob_limit", m->rob_limit);
    GET("new_head", m->iq_new_head);
    m->warm = m->warmup_instructions == 0;

    /* Functional-unit limits, indexed by FU_ORDER ordinal. */
    {
        PyObject *limits = PyDict_GetItemString(params, "fu_limits");
        if (!limits) {
            PyErr_SetString(PyExc_KeyError, "native params missing fu_limits");
            goto fail;
        }
        PyObject *fast = PySequence_Fast(limits, "fu_limits must be a sequence");
        if (!fast) goto fail;
        m->n_fu = (int)PySequence_Fast_GET_SIZE(fast);
        m->fu_limits = (int64_t *)malloc((size_t)m->n_fu * sizeof(int64_t));
        m->fu_used = (int64_t *)calloc((size_t)m->n_fu, sizeof(int64_t));
        m->fu_issues = (int64_t *)calloc((size_t)m->n_fu, sizeof(int64_t));
        if (!m->fu_limits || !m->fu_used || !m->fu_issues) {
            Py_DECREF(fast);
            goto fail_mem;
        }
        PyObject **items = PySequence_Fast_ITEMS(fast);
        for (int i = 0; i < m->n_fu; i++) {
            m->fu_limits[i] = PyLong_AsLongLong(items[i]);
            if (m->fu_limits[i] == -1 && PyErr_Occurred()) {
                Py_DECREF(fast);
                goto fail;
            }
        }
        Py_DECREF(fast);
    }

    /* Issue queue. */
    m->iq_valid = (uint8_t *)calloc((size_t)m->iq_cap, 1);
    m->iq_rob = (int32_t *)malloc((size_t)m->iq_cap * sizeof(int32_t));
    m->iq_ready_cycle = (int64_t *)malloc((size_t)m->iq_cap * sizeof(int64_t));
    m->iq_age_arr = (int64_t *)malloc((size_t)m->iq_cap * sizeof(int64_t));
    m->iq_fu = (uint8_t *)malloc((size_t)m->iq_cap);
    m->iq_nwait = (uint8_t *)malloc((size_t)m->iq_cap);
    m->iq_wait = (int32_t *)malloc((size_t)m->iq_cap * 8 * sizeof(int32_t));
    m->iq_bank_counts = (int32_t *)calloc((size_t)m->iq_num_banks, sizeof(int32_t));
    if (!m->iq_valid || !m->iq_rob || !m->iq_ready_cycle || !m->iq_age_arr ||
        !m->iq_fu || !m->iq_nwait || !m->iq_wait || !m->iq_bank_counts)
        goto fail_mem;

    /* ROB. */
    m->rob_dyn = (int64_t *)malloc((size_t)m->rob_cap * sizeof(int64_t));
    m->rob_state = (uint8_t *)calloc((size_t)m->rob_cap, 1);
    m->rob_flags = (uint8_t *)malloc((size_t)m->rob_cap);
    m->rob_latency = (uint8_t *)malloc((size_t)m->rob_cap);
    m->rob_mem = (int64_t *)malloc((size_t)m->rob_cap * sizeof(int64_t));
    m->rob_ndest = (uint8_t *)malloc((size_t)m->rob_cap);
    m->rob_nsrc = (uint8_t *)malloc((size_t)m->rob_cap);
    m->rob_nfreed = (uint8_t *)malloc((size_t)m->rob_cap);
    m->rob_dest = (int32_t *)malloc((size_t)m->rob_cap * 8 * sizeof(int32_t));
    m->rob_src = (int32_t *)malloc((size_t)m->rob_cap * 8 * sizeof(int32_t));
    m->rob_freed = (int32_t *)malloc((size_t)m->rob_cap * 8 * sizeof(int32_t));
    if (!m->rob_dyn || !m->rob_state || !m->rob_flags || !m->rob_latency ||
        !m->rob_mem || !m->rob_ndest || !m->rob_nsrc || !m->rob_nfreed ||
        !m->rob_dest || !m->rob_src || !m->rob_freed)
        goto fail_mem;

    /* Scoreboard, consumers, ready set. */
    {
        int32_t total_tags = (int32_t)(int_phys + fp_phys);
        m->tag_ready = (uint8_t *)malloc((size_t)total_tags);
        m->cons = (Cons *)calloc((size_t)total_tags, sizeof(Cons));
        if (!m->tag_ready || !m->cons) goto fail_mem;
        memset(m->tag_ready, 1, (size_t)total_tags);
    }
    m->ready = (ReadyEnt *)malloc((size_t)m->iq_cap * sizeof(ReadyEnt));
    if (!m->ready) goto fail_mem;

    /* Completion calendar ring: power of two covering the longest
     * possible latency (base <= 255 plus the full d-cache miss path). */
    {
        int64_t horizon = 255 + m->l1d_mem + 2;
        m->ring_size = 1;
        while (m->ring_size < horizon) m->ring_size <<= 1;
        m->ring_mask = m->ring_size - 1;
        m->ring = (Bucket *)calloc((size_t)m->ring_size, sizeof(Bucket));
        if (!m->ring) goto fail_mem;
    }

    /* Fetch queue. */
    m->fq_idx = (int64_t *)malloc((size_t)m->fq_cap * sizeof(int64_t));
    m->fq_ready = (int64_t *)malloc((size_t)m->fq_cap * sizeof(int64_t));
    if (!m->fq_idx || !m->fq_ready) goto fail_mem;

    /* Front-end state. */
    m->blocked_seq = -1;
    m->last_fetch_line = LINE_NONE;
    m->sample_dirty = 1;

    /* First window + callables. */
    {
        PyObject *first = PyDict_GetItemString(params, "first_window");
        PyObject *nw = PyDict_GetItemString(params, "next_window");
        PyObject *hook = PyDict_GetItemString(params, "hook");
        if (!first || !nw || !hook) {
            PyErr_SetString(PyExc_KeyError,
                            "native params missing first_window/next_window/hook");
            goto fail;
        }
        m->next_window = Py_NewRef(nw);
        m->hook = Py_NewRef(hook);
        Window *w = lower_window(first, m->uses_hints, m->F_HINT);
        if (!w) goto fail;
        m->d_win = m->f_win = w;
        m->d_limit = m->f_limit = w->length;
        m->resident = 1;
        m->max_resident = 1;
    }
    (void)v;
    return m;

fail_mem:
    if (!PyErr_Occurred()) PyErr_NoMemory();
fail:
    free_machine(m);
    return NULL;
}

#undef GET

/* ------------------------------------------------------------------ */
/* Module entry point.                                                 */
/* ------------------------------------------------------------------ */

static int set_ll(PyObject *d, const char *key, int64_t value) {
    PyObject *v = PyLong_FromLongLong(value);
    if (!v) return -1;
    int rc = PyDict_SetItemString(d, key, v);
    Py_DECREF(v);
    return rc;
}

static PyObject *native_run(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *params;
    if (!PyArg_ParseTuple(args, "O!", &PyDict_Type, &params)) return NULL;
    Machine *m = build_machine(params);
    if (!m) return NULL;
    if (run_machine(m)) {
        free_machine(m);
        return NULL;
    }
    PyObject *out = PyDict_New();
    if (!out) {
        free_machine(m);
        return NULL;
    }
    int rc = 0;
#define X(name) rc |= set_ll(out, #name, m->st.name);
    STAT_FIELDS(X)
#undef X
    rc |= set_ll(out, "cycles", m->warm ? m->abs_cycle - m->base : 0);
    rc |= set_ll(out, "max_resident_windows", m->max_resident);
    rc |= set_ll(out, "structural_stalls", m->structural_stalls);
    free_machine(m);
    if (rc) {
        Py_DECREF(out);
        return NULL;
    }
    return out;
}

static PyMethodDef native_methods[] = {
    {"run", native_run, METH_VARARGS,
     "Replay a pre-decoded trace stream; returns the statistics dict."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "_native_replay",
    "Compiled replay kernel for the repro out-of-order timing model.",
    -1,
    native_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC PyInit__native_replay(void) {
    return PyModule_Create(&native_module);
}



