"""Parallel, persistently-cached experiment engine.

Every figure in the paper is a (benchmark × technique) grid of mutually
independent simulations, which makes the evaluation embarrassingly
parallel: this module fans the grid out over a process pool and backs it
with the content-addressed disk cache of :mod:`repro.harness.cache` so a
cell is never simulated twice — not within a run, and not across runs.

Usage::

    from repro.harness import ParallelSuiteRunner, RunConfig

    runner = ParallelSuiteRunner(
        RunConfig(max_instructions=20_000, warmup_instructions=6_000),
        workers=8,                     # default: REPRO_WORKERS or cpu_count
        cache_dir="results-cache",     # default: no on-disk cache
    )
    runner.run_suite()                 # simulate every cell, in parallel
    fig6 = figures.figure6(runner)     # figure assembly hits only caches

Semantics:

* **Determinism** — each simulation is a pure function of its inputs, so
  results are identical for any worker count; ``run_suite`` collects
  completed cells back into grid order, so iteration order is also stable.
* **Cache location** — ``cache_dir`` names a directory (created on
  demand) holding one JSON file per cell, named by the SHA-256 of the
  cell's full input set (benchmark traits, compiler/processor/energy
  configuration, technique, instruction budgets).  Pass the same
  directory across processes and sessions to share it; it is safe under
  concurrent writers.
* **Invalidation** — never explicit: changing any input changes the
  cell's hash, so stale entries are simply never read again.  Delete the
  directory to reclaim space.  ``CACHE_FORMAT_VERSION`` participates in
  the hash, so simulator semantic changes invalidate everything at once.
* **Workers** — ``workers=1`` runs every job in-process (no pool, no
  pickling), which tier-1 tests use to exercise this path
  deterministically; ``workers>1`` uses a ``ProcessPoolExecutor`` with
  picklable job specs.  The ``REPRO_WORKERS`` environment variable
  supplies the default.
* **Compilations** are not cached on disk: they are cheap relative to
  simulation, required in-process anyway for table 2 and the
  per-result ``compilation`` field, and already memoised per runner.
* **Decoded traces** are cached one level below the results: a
  ``traces/`` subdirectory of ``cache_dir`` (override with
  ``trace_cache_dir``) holds each benchmark's pre-decoded dynamic stream
  (:mod:`repro.uarch.trace`), keyed by program content + budget +
  emulator source and stored in independently loadable windows.  A
  result-cache miss that only changed the technique or the
  processor/energy configuration re-times the benchmark without
  re-emulating it, in-process and across pool workers.  Budgets above
  the trace window (``trace_window``; default ~16k instructions) replay
  window by window with decode memory bounded by the window size.
  Workers return their trace-cache hit/miss/store counter deltas with
  each job result and the runner folds them into its own
  ``trace_cache``, so traffic reports are exact for any worker count.
* **Bounding** — pass ``cache_max_entries`` to cap the result cache and
  ``trace_cache_max_bytes`` to cap the trace directory; stores prune
  least-recently-used entries (hits refresh recency via file mtimes, so
  the bounds hold across processes sharing the directory).
* **Backends** — ``backend="local"`` (the default) runs uncached cells
  in-process or over a ``ProcessPoolExecutor``; ``backend="queue"``
  publishes them to the file-backed work queue inside the shared cache
  directory (:mod:`repro.harness.queue`) so any number of worker
  processes — this host or others sharing the directory — lease,
  heartbeat and complete them.  The runner blocks on completion
  markers, re-leases jobs whose worker stopped heartbeating, folds each
  marker's trace-cache counter deltas, and (``queue_assist``, on by
  default) pitches in on unclaimed jobs itself so a queue with no
  external workers still drains.  Results are bit-identical between
  backends for any worker count.
* **Replay engines** — ``engine="scalar"|"columnar"`` selects the
  replay kernel (:mod:`repro.uarch.engine`) every job runs under; None
  (the default) lets each executing host resolve its own
  ``REPRO_REPLAY_KERNEL``.  Statistics are bit-identical between
  kernels, so the engine is transport like the worker count: it never
  participates in cache fingerprints, results cached under one kernel
  are hits under any other, and queue completion markers stay
  idempotent even when a re-leased job reruns on a host with a
  different kernel.
* **Window sharding** — ``shard_span_windows=N`` splits every cell's
  budget into measure spans of N trace windows
  (:mod:`repro.harness.shard`), fans the shards over the chosen backend
  and stitches the per-shard statistics.  With the default
  ``shard_overlap="full"`` each shard warms up over the entire
  preceding trace and the stitched statistics are bit-identical to the
  sequential run's; a finite overlap (entries) trades a small,
  validated approximation for genuinely parallel work.  Sharded cells
  are cached under a fingerprint that includes the sharding plan.
"""

from __future__ import annotations

import os
import subprocess
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core import compile_program
from repro.harness.cache import ResultCache, simulation_fingerprint, stats_from_dict, stats_to_dict
from repro.harness.experiment import (
    BenchmarkResult,
    RunConfig,
    SOFTWARE_TECHNIQUES,
    SuiteRunner,
    TECHNIQUES,
    make_policy,
)
from repro.power import build_power_report
from repro.uarch import SimulationStats, TraceCache, simulate
from repro.workloads import ALL_TRAITS, build_benchmark


@dataclass
class SimulationJob:
    """Picklable description of one (benchmark, technique) simulation.

    ``trace_cache_dir`` names the shared on-disk decoded-trace cache (see
    :mod:`repro.uarch.trace`), ``trace_cache_max_bytes`` its LRU byte
    cap, ``trace_window`` the decoded-trace window size threaded into
    the replay core (None: library default), and ``engine`` the replay
    kernel (:mod:`repro.uarch.engine`; None: the executing host's
    ``REPRO_REPLAY_KERNEL`` default, so heterogeneous grids may run each
    host on whichever kernel is fastest there).  All four are transport,
    not identity — replay statistics are bit-identical for every window
    size, cache setting and engine — so none participates in
    :meth:`fingerprint`, and a result produced by one kernel is a cache
    hit for every other.
    """

    benchmark: str
    technique: str
    config: RunConfig
    trace_cache_dir: Optional[str] = None
    trace_window: Optional[int] = None
    trace_cache_max_bytes: Optional[int] = None
    engine: Optional[str] = None
    # Queue-backend retry budget (None: the queue's default).  Like the
    # transport fields above it never participates in fingerprint():
    # how often a job may be retried doesn't change what it computes.
    max_attempts: Optional[int] = None
    # Queue scheduling band (None: the queue's default band).  Pure
    # transport as well — when a worker runs this job has no bearing on
    # what it computes, so a high-priority service request is a cache
    # hit for an identical batch cell and vice versa.
    priority: Optional[int] = None

    def fingerprint(self) -> str:
        """Content hash of the job's full input set (see :mod:`.cache`)."""
        config = self.config
        return simulation_fingerprint(
            ALL_TRAITS[self.benchmark],
            self.technique,
            config.compiler_config,
            config.processor_config,
            config.energy_params,
            config.max_instructions,
            config.warmup_instructions,
            config.abella_interval,
        )


def run_simulation_job(job: SimulationJob, program=None, trace_cache=None) -> dict:
    """Execute one grid cell; return ``{"stats": ..., "trace_cache": ...}``.

    Runs inside pool workers, so it takes and returns only picklable
    values.  The in-process path passes ``program`` from the runner's
    compilation memo so software-technique cells are not compiled twice,
    and ``trace_cache`` (the runner's live
    :class:`~repro.uarch.trace.TraceCache`) so trace-cache traffic
    accumulates there directly; pool workers instead build a private
    ``TraceCache`` over ``job.trace_cache_dir`` and ship its counter
    deltas back under the ``"trace_cache"`` key, which the runner folds
    into its own cache — without this, every hit/miss/store observed in
    a worker process would be silently dropped and ``--cache-stats``
    would underreport traffic on parallel runs.
    """
    config = job.config
    policy = make_policy(job.technique, config)
    if program is None:
        if job.technique in SOFTWARE_TECHNIQUES:
            compilation = compile_program(
                build_benchmark(job.benchmark), config.compiler_config, mode=job.technique
            )
            program = compilation.instrumented_program
        else:
            program = build_benchmark(job.benchmark)
    local_cache = trace_cache
    if local_cache is None and job.trace_cache_dir is not None:
        local_cache = TraceCache(
            job.trace_cache_dir, max_bytes=job.trace_cache_max_bytes
        )
    stats = simulate(
        program,
        policy,
        config=config.processor_config,
        max_instructions=config.max_instructions,
        warmup_instructions=config.warmup_instructions,
        trace_cache=local_cache,
        trace_window=job.trace_window,
        engine=job.engine,
    )
    payload: dict = {"stats": stats_to_dict(stats)}
    if local_cache is not None and local_cache is not trace_cache:
        payload["trace_cache"] = {
            "hits": local_cache.hits,
            "misses": local_cache.misses,
            "stores": local_cache.stores,
            "evictions": local_cache.evictions,
        }
    return payload


def execute_job(job) -> dict:
    """Pool-worker dispatcher over the two picklable job shapes.

    ``pool.map`` needs one top-level callable; grids fan out
    :class:`SimulationJob` cells, window-sharded grids fan out
    :class:`~repro.harness.shard.ShardJob` spans, and both return the
    same ``{"stats": ..., "trace_cache": ...}`` payload contract.
    """
    if isinstance(job, SimulationJob):
        return run_simulation_job(job)
    from repro.harness.shard import run_shard_job

    return run_shard_job(job)


class ParallelSuiteRunner(SuiteRunner):
    """Drop-in :class:`SuiteRunner` with fan-out and a persistent cache.

    Attributes:
        workers: process-pool size (1 means run jobs in-process).
        cache: the :class:`ResultCache`, or None when running uncached.
        simulations_run: cells actually simulated by this runner.
        backend: ``"local"`` (in-process / process pool) or ``"queue"``
            (the shared-directory work queue of
            :mod:`repro.harness.queue`).
        engine: replay kernel jobs are pinned to (None: each executing
            host's ``REPRO_REPLAY_KERNEL`` default).
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache_max_entries: Optional[int] = None,
        trace_cache_dir: Optional[str] = None,
        trace_cache_max_bytes: Optional[int] = None,
        trace_window: Optional[int] = None,
        backend: str = "local",
        queue_workers: int = 0,
        queue_ttl: float = 60.0,
        queue_poll: float = 0.2,
        queue_assist: bool = True,
        queue_timeout: Optional[float] = 600.0,
        queue_max_attempts: Optional[int] = None,
        queue_priority: Optional[int] = None,
        shard_span_windows: Optional[int] = None,
        shard_overlap: Union[str, int] = "full",
        shard_slack: Optional[int] = None,
        engine: Optional[str] = None,
    ):
        super().__init__(config)
        if engine is not None:
            # Fail at construction, not inside a worker: statistics are
            # engine-invariant but a typo should not surface as a grid
            # of failed jobs.
            from repro.uarch.engine import resolve_engine_name

            engine = resolve_engine_name(engine)
        self.engine = engine
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS") or 0) or os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        if backend not in ("local", "queue"):
            raise ValueError(f"backend must be 'local' or 'queue', got {backend!r}")
        if backend == "queue" and cache_dir is None:
            raise ValueError(
                "backend='queue' needs cache_dir: the queue lives inside the "
                "shared cache directory the workers mount"
            )
        if queue_workers < 0:
            raise ValueError("queue_workers must be a non-negative integer")
        if queue_max_attempts is not None and queue_max_attempts < 1:
            raise ValueError("queue_max_attempts must be a positive integer or None")
        self.workers = workers
        self.queue_max_attempts = queue_max_attempts
        self.queue_priority = queue_priority
        self.backend = backend
        self.queue_workers = queue_workers
        self.queue_ttl = queue_ttl
        self.queue_poll = queue_poll
        self.queue_assist = queue_assist
        self.queue_timeout = queue_timeout
        # Window sharding: resolved to an entry-count plan that also
        # participates in sharded cells' cache fingerprints.
        if shard_span_windows is not None:
            from repro.harness.shard import DEFAULT_SHARD_SLACK, shard_span_entries

            self._sharding: Optional[dict] = {
                "span_entries": shard_span_entries(shard_span_windows, trace_window),
                "overlap": shard_overlap,
                "slack": DEFAULT_SHARD_SLACK if shard_slack is None else shard_slack,
            }
        else:
            self._sharding = None
        self.cache = (
            ResultCache(cache_dir, max_entries=cache_max_entries)
            if cache_dir is not None
            else None
        )
        # Decoded traces are shared one level below the result cache: a
        # result-cache miss (new technique, changed processor/energy
        # config) still reuses the benchmark's emulation if the trace
        # cache holds it.  Defaults to a ``traces/`` subdirectory of the
        # result cache so both travel together.
        if trace_cache_dir is None and cache_dir is not None:
            trace_cache_dir = str(Path(cache_dir) / "traces")
        self.trace_cache_dir = trace_cache_dir
        self.trace_cache_max_bytes = trace_cache_max_bytes
        self.trace_cache = (
            TraceCache(trace_cache_dir, max_bytes=trace_cache_max_bytes)
            if trace_cache_dir is not None
            else None
        )
        self.trace_window = trace_window
        self.simulations_run = 0

    # ------------------------------------------------------------------
    def _job(self, benchmark: str, technique: str) -> SimulationJob:
        return SimulationJob(
            benchmark,
            technique,
            self.config,
            trace_cache_dir=self.trace_cache_dir,
            trace_window=self.trace_window,
            trace_cache_max_bytes=self.trace_cache_max_bytes,
            engine=self.engine,
            max_attempts=self.queue_max_attempts,
            priority=self.queue_priority,
        )

    def _fold_trace_counters(self, payload: dict) -> None:
        """Fold a worker's trace-cache counter deltas into the runner's.

        The in-process path simulates against ``self.trace_cache``
        directly (no ``"trace_cache"`` key in the payload), so nothing is
        ever double counted.
        """
        deltas = payload.get("trace_cache")
        if deltas is None or self.trace_cache is None:
            return
        cache = self.trace_cache
        cache.hits += deltas["hits"]
        cache.misses += deltas["misses"]
        cache.stores += deltas["stores"]
        cache.evictions += deltas["evictions"]

    def result(self, benchmark: str, technique: str) -> BenchmarkResult:
        """One cell, consulting memory first, then disk, then simulating."""
        key = (benchmark, technique)
        if key in self._results:
            return self._results[key]
        job = self._job(benchmark, technique)
        stats = self._cached_stats(job)
        if stats is None:
            stats = self._execute_pending([job])[0]
            self.simulations_run += 1
            self._store(job, stats)
        result = self._build_result(job, stats)
        self._results[key] = result
        return result

    def run_suite(
        self,
        techniques: Iterable[str] = TECHNIQUES,
        benchmarks: Optional[Iterable[str]] = None,
    ) -> dict[tuple[str, str], BenchmarkResult]:
        """Populate the whole grid, fanning uncached cells over the backend.

        Returns the results in deterministic grid order (benchmarks outer,
        techniques inner) regardless of worker completion order — on the
        local pool, on the shared work queue, sharded or not.
        """
        grid = self.grid(techniques, benchmarks)
        pending: list[SimulationJob] = []
        stats_by_key: dict[tuple[str, str], SimulationStats] = {}
        for benchmark, technique in grid:
            if (benchmark, technique) in self._results:
                continue
            job = self._job(benchmark, technique)
            cached = self._cached_stats(job)
            if cached is not None:
                stats_by_key[(benchmark, technique)] = cached
            else:
                pending.append(job)

        if pending:
            stats_list = self._execute_pending(pending)
            self.simulations_run += len(pending)
            for job, stats in zip(pending, stats_list):
                self._store(job, stats)
                stats_by_key[(job.benchmark, job.technique)] = stats

        for benchmark, technique in grid:
            key = (benchmark, technique)
            if key not in self._results:
                job = self._job(benchmark, technique)
                self._results[key] = self._build_result(job, stats_by_key[key])
        return {key: self._results[key] for key in grid}

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _execute_pending(self, pending: list[SimulationJob]) -> list[SimulationStats]:
        """Simulate the uncached cells, in order, over the active backend."""
        if self._sharding is not None:
            return self._execute_pending_sharded(pending)
        payloads = self._execute_jobs(pending)
        stats_list = []
        for payload in payloads:
            self._fold_trace_counters(payload)
            stats_list.append(stats_from_dict(payload["stats"]))
        return stats_list

    def _execute_pending_sharded(
        self, pending: list[SimulationJob]
    ) -> list[SimulationStats]:
        """Fan every cell's measure spans over the backend and stitch.

        Planning happens here, once per cell: the plan needs the trace's
        commit mask, whose emulation lands in the shared trace cache so
        the shard executors (pool workers or queue workers on other
        hosts) replay it instead of re-emulating.
        """
        from repro.harness.shard import ShardJob, plan_shards, stitch_payloads

        sharding = self._sharding
        shard_jobs: list[ShardJob] = []
        groups: list[tuple[int, int]] = []
        for job in pending:
            spans = plan_shards(
                self._program_for(job),
                job.config.max_instructions,
                job.config.warmup_instructions,
                sharding["span_entries"],
                overlap=sharding["overlap"],
                slack=sharding["slack"],
                cache=self.trace_cache,
            )
            start = len(shard_jobs)
            cell_fingerprint = self._fingerprint(job)
            for span in spans:
                shard_jobs.append(
                    ShardJob(
                        job.benchmark,
                        job.technique,
                        job.config,
                        span,
                        cell_fingerprint=cell_fingerprint,
                        trace_cache_dir=self.trace_cache_dir,
                        trace_window=self.trace_window,
                        trace_cache_max_bytes=self.trace_cache_max_bytes,
                        engine=self.engine,
                        max_attempts=self.queue_max_attempts,
                        priority=self.queue_priority,
                    )
                )
            groups.append((start, len(spans)))
        payloads = self._execute_jobs(shard_jobs)
        for payload in payloads:
            self._fold_trace_counters(payload)
        return [
            stitch_payloads(payloads[start : start + count])
            for start, count in groups
        ]

    def _execute_jobs(self, jobs: list) -> list[dict]:
        """Run a list of (simulation or shard) jobs; payloads in order."""
        if self.backend == "queue":
            return self._execute_jobs_queue(jobs)
        if self.workers == 1:
            return [self._execute_in_process(job) for job in jobs]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(execute_job, jobs))

    def _execute_in_process(self, job) -> dict:
        """One job in this process, reusing the runner's memos and cache."""
        program = self._program_for(job)
        if isinstance(job, SimulationJob):
            return run_simulation_job(job, program, self.trace_cache)
        from repro.harness.shard import run_shard_job

        return run_shard_job(job, program, self.trace_cache)

    def _execute_jobs_queue(self, jobs: list) -> list[dict]:
        """Publish jobs to the shared work queue and await their markers.

        Spawns ``queue_workers`` local worker subprocesses for the
        duration of the batch (external workers on other hosts join by
        simply running ``python -m repro.harness.queue <cache_dir>``),
        re-leases jobs whose heartbeat lapsed, and — with
        ``queue_assist`` — claims unassigned jobs itself between polls
        so progress never depends on anyone else being alive.
        """
        from repro.harness.queue import WorkQueue, spawn_local_workers
        from repro.telemetry import spans as tracing

        # The driver is the trace root: with REPRO_TELEMETRY=1 it mints
        # one request id here, every enqueue stamps it into the job
        # envelope, and the claiming workers' spans carry it onward —
        # one connected driver→enqueue→claim→replay→complete trace per
        # batch.  Disabled (the default), both calls are no-ops and the
        # envelopes carry no trace key at all.
        tracing.install_from_env(self.cache.directory)
        queue = WorkQueue(self.cache.directory, ttl=self.queue_ttl)
        with tracing.maybe_trace_scope():
            with tracing.span(
                "driver.grid",
                cells=len(jobs),
                backend="queue",
                queue_workers=self.queue_workers,
            ):
                fingerprints = [queue.enqueue(job) for job in jobs]
                procs = (
                    spawn_local_workers(
                        self.cache.directory,
                        self.queue_workers,
                        ttl=self.queue_ttl,
                        poll_interval=self.queue_poll,
                    )
                    if self.queue_workers
                    else []
                )
                try:
                    markers = self._await_markers(queue, fingerprints)
                finally:
                    for proc in procs:
                        proc.terminate()
                    for proc in procs:
                        try:
                            proc.wait(timeout=10)
                        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                            proc.kill()
        payloads = []
        for job, fingerprint in zip(jobs, fingerprints):
            marker = markers[fingerprint]
            if marker.get("error") or marker.get("payload") is None:
                raise RuntimeError(
                    f"queue job {marker.get('benchmark')}/{marker.get('technique')} "
                    f"failed on worker {marker.get('worker')!r}:\n{marker.get('error')}"
                )
            payloads.append(marker["payload"])
        return payloads

    def _await_markers(self, queue, fingerprints: list[str]) -> dict[str, dict]:
        """Await completion markers on the shared event-driven core.

        This used to be a fixed-interval sleep-poll loop; it now
        subscribes the batch's fingerprints on a
        :class:`~repro.harness.completion.QueueEventCore` — the same
        selector loop the experiment service daemon multiplexes client
        sockets on — whose scan cadence adapts between ``queue_poll/4``
        and ``queue_poll*4`` with queue activity.  Semantics are
        unchanged: ``queue_timeout`` bounds *stall* (it re-arms on every
        marker, heartbeat and assisted job, so slow-but-live fleets
        never trip it), a job escalated to ``poison/`` fails the batch
        immediately with the recorded reason, and ``queue_assist``
        claims unassigned jobs between scans so progress never depends
        on anyone else being alive.
        """
        from repro.harness.completion import QueueEventCore

        with QueueEventCore(
            queue,
            poll_floor=max(0.01, self.queue_poll / 4.0),
            poll_ceiling=max(self.queue_poll * 4.0, self.queue_poll),
            assist=self.queue_assist,
            stall_timeout=self.queue_timeout,
        ) as core:
            return core.wait_for_markers(fingerprints)

    # ------------------------------------------------------------------
    def _program_for(self, job):
        """The job's program, via the runner's compilation memo in-process."""
        if job.technique in SOFTWARE_TECHNIQUES:
            return self.compilation(job.benchmark, job.technique).instrumented_program
        return build_benchmark(job.benchmark)

    def _fingerprint(self, job: SimulationJob) -> str:
        """The cell's cache key; sharded runs key on the plan as well."""
        if self._sharding is None:
            return job.fingerprint()
        config = job.config
        return simulation_fingerprint(
            ALL_TRAITS[job.benchmark],
            job.technique,
            config.compiler_config,
            config.processor_config,
            config.energy_params,
            config.max_instructions,
            config.warmup_instructions,
            config.abella_interval,
            sharding=self._sharding,
        )

    def _cached_stats(self, job: SimulationJob) -> Optional[SimulationStats]:
        if self.cache is None:
            return None
        return self.cache.load(self._fingerprint(job))

    def _store(self, job: SimulationJob, stats: SimulationStats) -> None:
        if self.cache is not None:
            self.cache.store(
                self._fingerprint(job),
                stats,
                benchmark=job.benchmark,
                technique=job.technique,
            )

    def _build_result(self, job: SimulationJob, stats: SimulationStats) -> BenchmarkResult:
        """Assemble the full result record from (possibly cached) counters.

        Power reports are pure functions of the counters, so they are
        recomputed on every load rather than persisted.
        """
        policy = make_policy(job.technique, self.config)
        compilation = None
        if job.technique in SOFTWARE_TECHNIQUES:
            compilation = self.compilation(job.benchmark, job.technique)
        power = build_power_report(stats, policy, self.config.energy_params)
        return BenchmarkResult(
            benchmark=job.benchmark,
            technique=job.technique,
            stats=stats,
            power=power,
            policy_name=policy.name,
            compilation=compilation,
        )
