"""chaoskit: deterministic fault injection, retry/poison, degradation.

Three layers of coverage, bottom up:

1. unit tests over :mod:`repro.harness.faults` itself — plan spec
   round-trips, decision determinism, fire budgets, the
   :class:`RetryPolicy` contract, and the atomicio hook behaviours
   (clean transient errors vs. orphan-leaving injected crashes);
2. degradation tests — corrupt :class:`ResultCache`/:class:`TraceCache`
   entries are quarantined once and re-missed cleanly, stores that
   cannot persist fall back to memory with a warn-once, quarantine
   directories expire under ``cache gc`` on the consumed-marker bound,
   and an injected mid-job worker death is recovered by the TTL
   re-lease path;
3. the chaos soak gate — the 6-cell queue-backed grid run under a
   matrix of seeded fault plans produces statistics **bit-identical**
   to the fault-free run, every job terminates, and the post-run cache
   tree holds no leases, no orphaned temp files and no undocumented
   queue state.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import time

import pytest

from repro.atomicio import TMP_PREFIX, publish_atomically
from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.cache import (
    QUARANTINE_DIR_NAME,
    ResultCache,
    gc_cache_tree,
)
from repro.harness.faults import (
    FAULT_PLAN_ENV,
    FAULT_PRESETS,
    FAULT_SITES,
    WORKER_DEATH_EXIT_CODE,
    FaultInjector,
    FaultPlan,
    InjectedCrashError,
    InjectedFaultError,
    RetryPolicy,
    active_injector,
    installed,
    maybe_fire,
    maybe_filter_names,
    maybe_stall,
)
from repro.harness.queue import WorkQueue, process_claimed_job, spawn_local_workers
from repro.uarch.stats import SimulationStats
from repro.uarch.trace import TraceCache, emulate_trace, trace_fingerprint
from repro.workloads import build_benchmark

TINY_CONFIG = RunConfig(
    benchmarks=("gzip", "mcf"),
    max_instructions=2_500,
    warmup_instructions=500,
)

#: The 6-cell grid the soak matrix runs: 2 benchmarks × 3 techniques.
SOAK_TECHNIQUES = ("baseline", "abella", "noop")


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector unit tests
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan(
            seed=3,
            rate=0.25,
            fire_limit=2,
            sites=("queue.listing", "atomicio.write"),
            sleep_scale=0.1,
            worker_death=True,
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_json_spec(self):
        plan = FaultPlan.from_spec('{"seed": 7, "rate": 0.5, "sites": ["cache.load"]}')
        assert plan.seed == 7 and plan.rate == 0.5
        assert plan.sites == ("cache.load",)

    def test_presets_parse(self):
        for name in FAULT_PRESETS:
            plan = FaultPlan.from_spec(name)
            assert 0.0 < plan.rate <= 1.0

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(sites=("no.such.site",))
        with pytest.raises(ValueError, match="unknown fault plan field"):
            FaultPlan.from_spec("seed=1,bogus=2")
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)

    def test_environment_round_trip(self, monkeypatch):
        from repro.harness import faults

        plan = FaultPlan(seed=9, rate=0.1, fire_limit=1, sleep_scale=0.2)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_spec())
        injector = faults.install_from_env()
        try:
            assert injector is not None and injector.plan == plan
            assert active_injector() is injector
        finally:
            faults.install(None)


class TestFaultInjector:
    def test_decisions_are_deterministic(self):
        def run() -> list[bool]:
            injector = FaultInjector(FaultPlan(seed=5, rate=0.5, fire_limit=3))
            return [
                injector.decide("cache.load", f"key{i % 4}") for i in range(64)
            ]

        first, second = run(), run()
        assert first == second
        assert any(first), "a rate-0.5 plan over 64 calls should fire"

    def test_fire_limit_bounds_each_site_key_pair(self):
        injector = FaultInjector(FaultPlan(seed=1, rate=1.0, fire_limit=2))
        fired = sum(injector.decide("cache.load", "k") for _ in range(50))
        assert fired == 2  # then permanently quiet: liveness under chaos

    def test_site_whitelist(self):
        injector = FaultInjector(
            FaultPlan(seed=1, rate=1.0, fire_limit=5, sites=("queue.listing",))
        )
        assert not injector.decide("cache.load", "k")
        assert injector.decide("queue.listing", "k")

    def test_no_injector_hooks_are_noops(self):
        assert active_injector() is None
        maybe_fire("cache.load", "k")  # must not raise
        assert maybe_filter_names("queue.listing", "pending", ["a", "b"]) == ["a", "b"]
        assert maybe_stall("queue.heartbeat", "k") is False

    def test_listing_filter_reveals_within_budget(self):
        with installed(FaultPlan(seed=2, rate=1.0, fire_limit=2)):
            hidden = 0
            for _ in range(10):
                if maybe_filter_names("queue.listing", "pending", ["job.json"]) == []:
                    hidden += 1
                else:
                    break
            assert hidden == 2  # budget spent: the entry must reappear
            assert maybe_filter_names("queue.listing", "pending", ["job.json"]) == [
                "job.json"
            ]

    def test_worker_death_requires_plan_opt_in(self):
        # worker_death=False (the default) must never exit the process,
        # even with the site eligible at rate 1.
        with installed(FaultPlan(seed=1, rate=1.0, fire_limit=5)) as injector:
            injector.maybe_die("job")  # still alive == pass


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky() -> str:
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=0.0, jitter=0.0)
        assert policy.call(flaky) == "ok"
        assert calls["n"] == 3

    def test_raises_after_budget(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)

        def always() -> None:
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            policy.call(always)

    def test_drop_mode_returns_default(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)

        def always() -> None:
            raise OSError("persistent")

        assert policy.call(always, on_exhausted="drop", default=7) == 7

    def test_delays_are_seeded_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.3, jitter=0.5)
        first = list(policy.delays("key"))
        assert first == list(policy.delays("key"))  # deterministic
        assert first != list(policy.delays("other"))  # desynchronised
        assert len(first) == 4
        assert all(0.1 <= delay <= 0.3 * 1.5 for delay in first)
        assert first[1] >= first[0]  # exponential growth under the cap

    def test_sleep_scale_compresses_waits(self):
        from repro.harness import faults

        with installed(FaultPlan(seed=1, rate=0.0, sleep_scale=0.0)):
            start = time.monotonic()
            faults.sleep(10.0)  # scaled to zero: returns immediately
            assert time.monotonic() - start < 1.0


# ----------------------------------------------------------------------
# atomicio hook behaviours
# ----------------------------------------------------------------------
def _publish(path, text="payload"):
    return publish_atomically(path, lambda handle: handle.write(text))


def _tmp_files(directory):
    return [p.name for p in directory.iterdir() if p.name.startswith(TMP_PREFIX)]


class TestAtomicioHooks:
    def test_write_fault_is_transient_and_clean(self, tmp_path):
        target = tmp_path / "cell.json"
        with installed(
            FaultPlan(seed=1, rate=1.0, fire_limit=1, sites=("atomicio.write",))
        ):
            with pytest.raises(InjectedFaultError):
                _publish(target)
            assert not target.exists()
            assert _tmp_files(tmp_path) == []  # cleanup ran: no orphan
            _publish(target)  # budget spent: the retry succeeds
        assert target.read_text() == "payload"

    def test_torn_write_leaves_truncated_orphan(self, tmp_path):
        target = tmp_path / "cell.json"
        with installed(
            FaultPlan(seed=1, rate=1.0, fire_limit=1, sites=("atomicio.torn",))
        ):
            with pytest.raises(InjectedCrashError):
                _publish(target, "0123456789")
        assert not target.exists()  # the rename never happened
        [orphan] = _tmp_files(tmp_path)
        content = (tmp_path / orphan).read_bytes()
        assert 0 < len(content) < 10  # torn mid-write, exactly the gc debris
        # The documented sweep reclaims it.
        gc_cache_tree(tmp_path, tmp_max_age_seconds=0.0)
        assert _tmp_files(tmp_path) == []

    def test_crash_before_replace_preserves_temp(self, tmp_path):
        target = tmp_path / "cell.json"
        with installed(
            FaultPlan(
                seed=1, rate=1.0, fire_limit=1, sites=("atomicio.crash-before-replace",)
            )
        ):
            with pytest.raises(InjectedCrashError):
                _publish(target)
        assert not target.exists()
        [orphan] = _tmp_files(tmp_path)
        assert (tmp_path / orphan).read_text() == "payload"  # full temp file

    def test_crash_after_replace_publishes_then_raises(self, tmp_path):
        target = tmp_path / "cell.json"
        with installed(
            FaultPlan(
                seed=1, rate=1.0, fire_limit=1, sites=("atomicio.crash-after-replace",)
            )
        ):
            with pytest.raises(InjectedCrashError):
                _publish(target)
        # The writer "died" after os.replace: the publication is live
        # (callers retrying must treat re-publication as idempotent).
        assert target.read_text() == "payload"
        assert _tmp_files(tmp_path) == []


# ----------------------------------------------------------------------
# Cache degradation: quarantine + in-memory fallback
# ----------------------------------------------------------------------
def _store_cell(cache: ResultCache, fingerprint: str = "f" * 8) -> str:
    cache.store(fingerprint, SimulationStats(cycles=42), benchmark="gzip")
    return fingerprint


class TestResultCacheQuarantine:
    @pytest.mark.parametrize(
        "corruption",
        ["truncated", "bad-magic", "not-json", "wrong-shape"],
    )
    def test_corrupt_entry_is_quarantined_once(self, tmp_path, corruption):
        cache = ResultCache(tmp_path)
        fingerprint = _store_cell(cache)
        path = cache.path_for(fingerprint)
        if corruption == "truncated":
            path.write_text(path.read_text()[: 10])
        elif corruption == "bad-magic":
            path.write_text(json.dumps({"format": -1, "stats": {}}))
        elif corruption == "not-json":
            path.write_bytes(b"\x00\x01\x02 not json at all")
        else:
            path.write_text(json.dumps({"format": 2, "stats": "not-a-mapping"}))

        assert cache.load(fingerprint) is None  # clean miss, no crash
        assert cache.quarantined == 1
        assert not path.exists()
        quarantined = cache.quarantine_path(fingerprint)
        assert quarantined.exists()  # visible for post-mortem

        # Second lookup: plain miss, nothing new to quarantine.
        assert cache.load(fingerprint) is None
        assert cache.quarantined == 1

        # A fresh store lands cleanly and hits.
        _store_cell(cache, fingerprint)
        assert cache.load(fingerprint).cycles == 42
        stats = cache.cache_stats()
        assert stats["quarantined"] == 1

    def test_read_error_is_a_miss_not_a_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        fingerprint = _store_cell(cache)
        with installed(
            FaultPlan(seed=1, rate=1.0, fire_limit=1, sites=("cache.load",))
        ):
            assert cache.load(fingerprint) is None  # injected EIO: miss
        assert cache.quarantined == 0
        assert cache.path_for(fingerprint).exists()  # file left alone
        assert cache.load(fingerprint).cycles == 42  # intact afterwards

    def test_unwritable_directory_falls_back_to_memory(self, tmp_path):
        cache = ResultCache(tmp_path / "cells")
        # Every publication attempt fails: the directory is effectively
        # read-only for the whole test (budget far above the retries).
        with installed(
            FaultPlan(seed=1, rate=1.0, fire_limit=1000, sites=("atomicio.write",))
        ):
            with pytest.warns(RuntimeWarning, match="in-memory"):
                _store_cell(cache, "a" * 8)
            _store_cell(cache, "b" * 8)  # second store: no second warning
            assert cache.memory_stores == 2
            assert cache.load("a" * 8).cycles == 42  # served from memory
            assert cache.load("b" * 8).cycles == 42
        assert len(cache) == 0  # nothing reached the disk


class TestTraceCacheQuarantine:
    @pytest.fixture()
    def stored_trace(self, tmp_path):
        program = build_benchmark("gzip")
        trace = emulate_trace(program, 200)
        cache = TraceCache(tmp_path)
        fingerprint = trace_fingerprint(program, 200)
        cache.store(fingerprint, trace)
        return cache, fingerprint, program

    @pytest.mark.parametrize("corruption", ["truncated", "bad-magic", "bad-header"])
    def test_corrupt_trace_is_quarantined_once(self, stored_trace, corruption):
        cache, fingerprint, program = stored_trace
        path = cache.path_for(fingerprint)
        blob = path.read_bytes()
        if corruption == "truncated":
            path.write_bytes(blob[: len(blob) // 2])
        elif corruption == "bad-magic":
            path.write_bytes(b'{"format": -1}\n' + blob.split(b"\n", 1)[1])
        else:
            path.write_bytes(b"not a header\n" + blob.split(b"\n", 1)[1])

        assert cache.load(fingerprint, program) is None  # clean miss
        assert cache.quarantined == 1
        assert not path.exists()
        assert (cache.directory / "quarantine" / path.name).exists()

        # The re-store lands cleanly and round-trips.
        writer_stores = cache.stores
        program2 = build_benchmark("gzip")
        cache.store(fingerprint, emulate_trace(program2, 200))
        assert cache.stores == writer_stores + 1
        assert cache.load(fingerprint, program).length == 200

    def test_degraded_store_never_raises(self, tmp_path):
        program = build_benchmark("gzip")
        trace = emulate_trace(program, 100)
        cache = TraceCache(tmp_path / "traces")
        fingerprint = trace_fingerprint(program, 100)
        with installed(
            FaultPlan(seed=1, rate=1.0, fire_limit=1000, sites=("atomicio.write",))
        ):
            with pytest.warns(RuntimeWarning, match="re-emulated"):
                cache.store(fingerprint, trace)  # must not raise
        assert cache.degraded_stores == 1
        assert cache.stores == 0
        assert len(cache) == 0


class TestQuarantineGc:
    def test_gc_sweeps_quarantine_on_marker_age_bound(self, tmp_path):
        now = time.time()
        old = now - 8 * 24 * 3600  # past the one-week done-marker bound
        for directory, name in (
            (tmp_path / QUARANTINE_DIR_NAME, "dead.json"),
            (tmp_path / "traces" / QUARANTINE_DIR_NAME, "dead.trace.bin"),
        ):
            directory.mkdir(parents=True)
            stale = directory / name
            stale.write_bytes(b"corpse")
            os.utime(stale, (old, old))
            fresh = directory / ("fresh-" + name)
            fresh.write_bytes(b"recent")

        gc_cache_tree(tmp_path, now=now)
        assert not (tmp_path / QUARANTINE_DIR_NAME / "dead.json").exists()
        assert not (
            tmp_path / "traces" / QUARANTINE_DIR_NAME / "dead.trace.bin"
        ).exists()
        # Fresh quarantine evidence survives for post-mortem.
        assert (tmp_path / QUARANTINE_DIR_NAME / "fresh-dead.json").exists()
        assert (
            tmp_path / "traces" / QUARANTINE_DIR_NAME / "fresh-dead.trace.bin"
        ).exists()


# ----------------------------------------------------------------------
# Injected worker death → TTL re-lease recovery (real subprocess)
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_killed_worker_is_recovered_by_ttl_relese(self, tmp_path):
        from repro.harness.parallel import SimulationJob

        queue = WorkQueue(tmp_path, ttl=5)
        job = SimulationJob("gzip", "baseline", TINY_CONFIG)
        fingerprint = queue.enqueue(job)

        plan = FaultPlan(
            seed=1,
            rate=1.0,
            fire_limit=1,
            sites=("queue.worker-death",),
            worker_death=True,
        )
        os.environ[FAULT_PLAN_ENV] = plan.to_spec()
        try:
            # spawn_local_workers copies the environment, so the worker
            # self-installs the death-enabled plan at startup.
            [proc] = spawn_local_workers(
                tmp_path, 1, ttl=5, poll_interval=0.05, drain=True
            )
            proc.wait(timeout=120)
        finally:
            os.environ.pop(FAULT_PLAN_ENV, None)
        assert proc.returncode == WORKER_DEATH_EXIT_CODE  # died mid-job
        assert queue.lease_path(fingerprint).exists()  # orphaned lease
        assert not queue.done_path(fingerprint).exists()

        # Heartbeats stopped with the worker: expire, re-lease, recover
        # in-process (no plan installed here — the fault budget belongs
        # to the dead worker's process).
        stale = time.time() - 60
        os.utime(queue.lease_path(fingerprint), (stale, stale))
        assert queue.requeue_expired() == [fingerprint]
        rescued = queue.claim("rescuer")
        assert rescued is not None
        assert process_claimed_job(queue, rescued, "rescuer") is True
        assert queue.done_marker(fingerprint)["payload"] is not None
        assert queue.is_idle()


# ----------------------------------------------------------------------
# The chaos soak gate
# ----------------------------------------------------------------------
#: The soak matrix: ≥ 5 seeded plans over every non-lethal site.  Worker
#: death stays out (the driver itself assists in-process); it is covered
#: by the dedicated subprocess test above.
SOAK_PLANS = tuple(
    FaultPlan(seed=seed, rate=0.15, fire_limit=1, sleep_scale=0.05)
    for seed in (1, 2, 3, 4, 5)
)

#: Queue-state files a healthy post-run tree may contain, by directory.
DOCUMENTED_QUEUE_DIRS = {"pending", "leases", "done", "poison", "workers"}


def _run_grid(cache_dir) -> dict[tuple[str, str], dict]:
    runner = ParallelSuiteRunner(
        TINY_CONFIG,
        workers=1,
        cache_dir=str(cache_dir),
        backend="queue",
        queue_workers=0,  # the driver's assist path serves every job
        queue_assist=True,
        queue_poll=0.05,
        queue_ttl=30,
        queue_timeout=300,
    )
    results = runner.run_suite(techniques=SOAK_TECHNIQUES)
    return {
        key: dataclasses.asdict(result.stats) for key, result in results.items()
    }


def _assert_tree_clean(cache_dir) -> None:
    """No leases, no temp orphans, no undocumented queue state."""
    queue_root = cache_dir / "queue"
    assert sorted(p.name for p in queue_root.iterdir()) == sorted(
        DOCUMENTED_QUEUE_DIRS
    )
    assert list((queue_root / "leases").iterdir()) == []
    assert list((queue_root / "pending").iterdir()) == []
    assert list((queue_root / "poison").iterdir()) == []
    for path in cache_dir.rglob(TMP_PREFIX + "*"):
        raise AssertionError(f"orphaned temp file survived the sweep: {path}")


class TestChaosSoak:
    def test_grid_is_bit_identical_under_fault_matrix(self, tmp_path):
        baseline = _run_grid(tmp_path / "fault-free")
        assert len(baseline) == 6

        for plan in SOAK_PLANS:
            cache_dir = tmp_path / f"seed{plan.seed}"
            with installed(plan) as injector:
                chaos = _run_grid(cache_dir)
                fired = injector.fired_total()
            # Bit-identical statistics, cell by cell.
            assert chaos == baseline, f"stats diverged under {plan.to_spec()}"
            # Every job terminated with a completion marker; none poisoned.
            queue = WorkQueue(cache_dir)
            assert len(queue.list_done()) == 6
            assert queue.list_poisoned() == set()
            # Injected crashes may leave orphan temp debris *by design*;
            # the documented sweep must reclaim every byte of it.
            gc_cache_tree(cache_dir, tmp_max_age_seconds=0.0)
            _assert_tree_clean(cache_dir)
            assert fired >= 0  # schedule ran (some seeds fire, all may not)

    def test_soak_matrix_fires_faults_somewhere(self, tmp_path):
        """The matrix is only a gate if it actually injects: across the
        5 seeds at rate 0.15 the schedule must fire a healthy number of
        faults in aggregate (a silent matrix would vacuously pass)."""
        total = 0
        for plan in SOAK_PLANS:
            cache_dir = tmp_path / f"seed{plan.seed}"
            with installed(plan) as injector:
                _run_grid(cache_dir)
                total += injector.fired_total()
        assert total >= 10, f"fault matrix only fired {total} fault(s)"
