"""Print regenerated figures, optionally from a cached-results directory.

Used two ways:

* imported by the figure benchmarks for the :func:`report` banner helper;
* run as a script to regenerate the paper's figures outside pytest::

      PYTHONPATH=src python benchmarks/figure_report.py \\
          --cache-dir benchmarks/.figure-cache --workers 4

  With ``--cache-dir`` pointing at a directory populated by a previous
  run (the figure benchmarks share ``benchmarks/.figure-cache``), cells
  whose configuration is unchanged are loaded instead of re-simulated,
  so re-rendering every figure is nearly instant.
"""

from __future__ import annotations

import argparse


def report(title: str, figure) -> None:
    """Print a regenerated figure next to the paper's headline numbers."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    print(figure.to_text())


def print_cache_stats(runner) -> None:
    """Print the result-cache and trace-cache ``--cache-stats`` report."""
    from repro.uarch.trace import trace_events

    if runner.cache is not None:
        stats = runner.cache.cache_stats()
        cap = stats["max_entries"] if stats["max_entries"] is not None else "unbounded"
        print(
            f"result cache: {stats['entries']} entries "
            f"({stats['total_bytes'] / 1024:.1f} KiB, cap {cap}) — "
            f"{stats['hits']} hits / {stats['misses']} misses / "
            f"{stats['stores']} stores / {stats['evictions']} evictions "
            f"[{stats['directory']}]"
        )
    if runner.trace_cache is not None:
        stats = runner.trace_cache.cache_stats()
        cap = (
            f"{stats['max_bytes'] / 1024:.0f} KiB"
            if stats["max_bytes"] is not None
            else "unbounded"
        )
        # Workers ship their counter deltas back with each job result and
        # the runner folds them in, so these totals are exact for any
        # worker count.
        print(
            f"trace cache: {stats['traces']} traces "
            f"({stats['total_bytes'] / 1024:.1f} KiB, cap {cap}) — "
            f"{stats['hits']} hits / {stats['misses']} misses / "
            f"{stats['stores']} stores / {stats['evictions']} evictions "
            f"[{stats['directory']}]"
        )
    if getattr(runner, "backend", "local") == "queue" and runner.cache is not None:
        # Fleet view for queue-backed runs: every worker publishes a
        # host-tagged counters file under queue/workers/ after each
        # claim batch, so the rollup shows which machines actually
        # swept, claimed, and completed — not just process totals.
        from repro.harness.queue import WorkQueue

        fleet = WorkQueue(runner.cache.directory).worker_stats()
        print(
            f"queue fleet: {fleet['workers']} worker(s) on "
            f"{len(fleet['hosts'])} host(s) — {fleet['claimed']} claims in "
            f"{fleet['claim_batches']} batches "
            f"(mean {fleet['mean_batch_size']}), "
            f"{fleet['jobs_done']} done / {fleet['jobs_failed']} failed, "
            f"{fleet['gc_sweeps']} gc sweeps"
        )
        for host in sorted(fleet["hosts"]):
            per_host = fleet["hosts"][host]
            print(
                f"  host {host or '<untagged>'}: {per_host['workers']} "
                f"worker(s) — {per_host['claimed']} claims, "
                f"{per_host['jobs_done']} done / "
                f"{per_host['jobs_failed']} failed, "
                f"{per_host['gc_sweeps']} gc sweeps"
            )
    events = trace_events
    print(
        f"emulations this process: {events['emulations']} "
        f"(memo hits {events['memo_hits']}, disk hits {events['disk_hits']})"
    )
    if runner.workers > 1:
        # Unlike the folded trace-cache counters above, the module-level
        # trace_events live in each worker process; emulation/memo work
        # done in the pool is invisible here.
        print(
            f"(note: {runner.workers} workers — emulation/memo counters are "
            f"per-process; the folded trace-cache line above is exact)"
        )


def print_telemetry(cache_dir) -> None:
    """Print the fleetscope ``--telemetry`` rollup for one cache tree.

    Three planes over the shared directory: the span store (request
    traces and the queue latency percentiles derived from completion
    spans), the worker fleet's kernel-throughput probes with each host's
    auto-picked engine, and a pointer at the perf-trajectory CLI for the
    longitudinal view.
    """
    from repro.harness.queue import WorkQueue
    from repro.telemetry import spans as tracing

    latency = tracing.queue_latency_summary(cache_dir)
    print(f"telemetry: {latency['spans']} span(s) under {cache_dir}/telemetry/spans")
    for stage in ("enqueue_to_claim", "claim_to_done"):
        summary = latency[stage]
        if summary is None:
            print(f"  {stage}: no completion spans recorded")
        else:
            print(
                f"  {stage}: p50 {summary['p50'] * 1000:.1f}ms / "
                f"p90 {summary['p90'] * 1000:.1f}ms / "
                f"p99 {summary['p99'] * 1000:.1f}ms "
                f"over {summary['count']} completion(s)"
            )
    traces = {
        record["trace"]
        for record in tracing.read_spans(cache_dir)
        if record.get("trace")
    }
    print(f"  distinct traces: {len(traces)}")
    fleet = WorkQueue(cache_dir).worker_stats()
    for host in sorted(fleet["hosts"]):
        per_host = fleet["hosts"][host]
        probes = per_host.get("probes") or {}
        preferred = per_host.get("preferred_engines") or []
        if not probes and not preferred:
            continue
        rates = ", ".join(
            f"{engine} {rate:,.0f} cyc/s" for engine, rate in sorted(probes.items())
        )
        print(
            f"  host {host or '<untagged>'}: probes [{rates or 'none'}], "
            f"preferred engine(s): {', '.join(preferred) or 'unprobed'}"
        )
    print("  trend: python -m repro.telemetry.trend (perf-trajectory gate)")


def _shard_overlap(value: str):
    """argparse type for --shard-overlap: 'full' or an entry count."""
    if value == "full":
        return "full"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be 'full' or an integer entry count, got {value!r}"
        )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of cached simulation results (created if missing)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="LRU size cap for the result cache (default: unbounded)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print result-cache and trace-cache size/traffic reports",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="trace this run (REPRO_TELEMETRY semantics) and print the "
        "fleetscope rollup: span counts, queue latency percentiles, "
        "per-host kernel probes (needs --cache-dir)",
    )
    parser.add_argument(
        "--max-trace-bytes",
        type=int,
        default=None,
        help="LRU byte cap for the decoded-trace cache (default: unbounded)",
    )
    parser.add_argument(
        "--trace-window",
        type=int,
        default=None,
        help="decoded-trace window size in instructions (default: "
        "REPRO_TRACE_WINDOW or ~16k; 0 forces monolithic decode)",
    )
    parser.add_argument("--workers", type=int, default=None, help="pool size")
    # Choices come from the engine registry so new kernels need no edit
    # here (this import is cheap; the heavy harness imports stay lazy).
    from repro.uarch.engine import available_engines

    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="replay kernel for every simulation (default: the executing "
        "host's REPRO_REPLAY_KERNEL, else scalar); statistics are "
        "bit-identical between kernels, so cached results are shared",
    )
    parser.add_argument(
        "--backend",
        choices=("local", "queue"),
        default="local",
        help="execution backend: in-process/pool, or the shared-directory "
        "work queue any number of hosts can serve (needs --cache-dir)",
    )
    parser.add_argument(
        "--queue-workers",
        type=int,
        default=0,
        help="local worker subprocesses to spawn for a --backend queue run "
        "(remote hosts join with: python -m repro.harness.queue <cache-dir>)",
    )
    parser.add_argument(
        "--queue-ttl",
        type=float,
        default=60.0,
        help="heartbeat TTL before a dead worker's job is re-leased (s)",
    )
    parser.add_argument(
        "--shard-windows",
        type=int,
        default=None,
        help="window-shard every cell: measure spans of N trace windows "
        "replayed in parallel and stitched",
    )
    parser.add_argument(
        "--shard-overlap",
        type=_shard_overlap,
        default="full",
        help="shard warm-up: 'full' (bit-exact stitching) or an entry "
        "count (approximate, embarrassingly parallel)",
    )
    parser.add_argument(
        "--gc",
        action="store_true",
        help="garbage-collect --cache-dir first (orphaned .tmp-* files, "
        "offline cap enforcement) and print a summary",
    )
    parser.add_argument("--max-instructions", type=int, default=100_000)
    parser.add_argument("--warmup-instructions", type=int, default=20_000)
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="benchmark subset (default: the paper's eleven)",
    )
    args = parser.parse_args(argv)

    from repro.harness import ParallelSuiteRunner, RunConfig, figures
    from repro.harness.reporting import overall_processor_savings

    if args.telemetry:
        if args.cache_dir is None:
            parser.error("--telemetry needs --cache-dir (spans live in the tree)")
        import os

        from repro.telemetry import spans as tracing

        # Export the switch so spawned queue workers self-install too,
        # then enable in-process for the driver's own spans.
        os.environ[tracing.ENV_VAR] = "1"
        tracing.enable(args.cache_dir)

    if args.gc:
        from repro.harness.cache import format_gc_summary, gc_cache_tree

        if args.cache_dir is None:
            parser.error("--gc needs --cache-dir")
        print(
            format_gc_summary(
                gc_cache_tree(
                    args.cache_dir,
                    max_entries=args.cache_max_entries,
                    max_trace_bytes=args.max_trace_bytes,
                )
            )
        )

    config_kwargs = dict(
        max_instructions=args.max_instructions,
        warmup_instructions=args.warmup_instructions,
    )
    if args.benchmarks:
        config_kwargs["benchmarks"] = tuple(args.benchmarks)
    runner = ParallelSuiteRunner(
        RunConfig(**config_kwargs),
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        trace_cache_max_bytes=args.max_trace_bytes,
        trace_window=args.trace_window,
        backend=args.backend,
        queue_workers=args.queue_workers,
        queue_ttl=args.queue_ttl,
        shard_span_windows=args.shard_windows,
        shard_overlap=args.shard_overlap,
        engine=args.engine,
    )
    runner.run_suite()
    if runner.cache is not None:
        print(
            f"cache: {runner.cache.hits} hits, {runner.simulations_run} simulated "
            f"({runner.cache.directory})"
        )
    if args.cache_stats:
        print_cache_stats(runner)
    if args.telemetry:
        print_telemetry(runner.cache.directory)

    report("Figure 6 - IPC loss, NOOP technique", figures.figure6(runner))
    report("Figure 7 - issue-queue occupancy", figures.figure7(runner))
    report("Figure 8 - issue-queue power, NOOP", figures.figure8(runner))
    report("Figure 9 - register-file power, NOOP", figures.figure9(runner))
    report("Figure 10 - IPC loss, extensions", figures.figure10(runner))
    report("Figure 11 - issue-queue power, extensions", figures.figure11(runner))
    report("Figure 12 - register-file power, extensions", figures.figure12(runner))
    print()
    for technique in ("noop", "extension", "improved"):
        savings = overall_processor_savings(runner, technique)
        print(f"overall processor power saving, {technique:10s}: {savings:5.2f}%")


if __name__ == "__main__":
    main()
