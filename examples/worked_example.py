#!/usr/bin/env python3
"""The paper's worked examples (figures 1, 3 and 4), step by step.

Shows the compiler-side analyses on the exact code fragments the paper uses
to explain the technique:

* figure 1/3: per-basic-block pseudo-issue-queue scheduling,
* figure 4: cyclic-dependence-set loop analysis.

Run with::

    python examples/worked_example.py
"""

from __future__ import annotations

from repro.core import CompilerConfig
from repro.core.loop_analysis import analyse_loop_body
from repro.core.pseudo_queue import PseudoIssueQueue
from repro.isa import Instruction, Opcode
from repro.isa.registers import int_reg as r


def figure1() -> None:
    print("=== Figure 1: a basic block needing only 2 issue-queue entries ===")
    block = [
        Instruction.alu(Opcode.ADD, r(1), [r(1)], imm=1, comment="a"),
        Instruction.alu(Opcode.ADD, r(2), [r(2)], imm=2, comment="b"),
        Instruction.alu(Opcode.ADD, r(3), [r(1)], imm=5, comment="c"),
        Instruction.alu(Opcode.ADD, r(4), [r(2)], imm=5, comment="d"),
        Instruction.alu(Opcode.ADD, r(5), [r(3), r(4)], comment="e"),
        Instruction.alu(Opcode.ADD, r(6), [r(2), r(4)], comment="f"),
    ]
    schedule = PseudoIssueQueue(CompilerConfig()).schedule(block)
    for instr, cycle in zip(block, schedule.issue_cycle):
        print(f"  {instr.comment}: {instr}   -> issues in cycle {cycle}")
    print(f"  entries needed: {schedule.entries_needed} (paper: 2)\n")


def figure3() -> None:
    print("=== Figure 3: DAG analysis of a 6-instruction block ===")
    block = [
        Instruction.alu(Opcode.ADD, r(1), [r(10)], comment="a"),
        Instruction.alu(Opcode.ADD, r(2), [r(1)], comment="b"),
        Instruction.alu(Opcode.ADD, r(3), [r(2)], comment="c"),
        Instruction.alu(Opcode.ADD, r(4), [r(1)], comment="d"),
        Instruction.alu(Opcode.ADD, r(5), [r(4)], comment="e"),
        Instruction.alu(Opcode.ADD, r(6), [r(4)], comment="f"),
    ]
    schedule = PseudoIssueQueue(CompilerConfig()).schedule(block)
    for cycle in range(max(schedule.issue_cycle) + 1):
        names = [block[i].comment for i, c in enumerate(schedule.issue_cycle) if c == cycle]
        need = schedule.per_cycle_need[cycle] if cycle < len(schedule.per_cycle_need) else 0
        print(f"  iteration {cycle}: {', '.join(names)} issue -> needs {need} entries")
    print(f"  overall: {schedule.entries_needed} entries (paper: 4)\n")


def figure4() -> None:
    print("=== Figure 4: loop analysis via cyclic dependence sets ===")
    loop = [
        Instruction.alu(Opcode.ADD, r(1), [r(1)], imm=1, comment="a"),
        Instruction.alu(Opcode.ADD, r(2), [r(1)], imm=1, comment="b"),
        Instruction.alu(Opcode.ADD, r(3), [r(2)], imm=1, comment="c"),
        Instruction.alu(Opcode.ADD, r(4), [r(2)], imm=1, comment="d"),
        Instruction.alu(Opcode.ADD, r(5), [r(4)], imm=1, comment="e"),
        Instruction.alu(Opcode.ADD, r(6), [r(3)], imm=1, comment="f"),
    ]
    requirement = analyse_loop_body(loop, CompilerConfig())
    print(f"  initiation interval (critical recurrence): {requirement.initiation_interval:.1f}")
    for instr, offset in zip(loop, requirement.iteration_offsets):
        print(f"  {instr.comment}_i issues together with a_(i+{offset})")
    print(f"  entries needed: {requirement.raw_entries} (paper: 15)\n")


if __name__ == "__main__":
    figure1()
    figure3()
    figure4()
