#!/usr/bin/env python3
"""Many concurrent clients against one experiment-service daemon.

Demonstrates the simulation-as-a-service front end
(:mod:`repro.service`): a long-lived daemon owns a shared cache
directory, accepts simulation/grid requests from any number of clients
over a newline-delimited-JSON socket protocol, collapses identical
in-flight requests onto one queued job (every subscriber gets the same
result), schedules by priority band, and sheds load explicitly when the
admission bounds are hit.

This script starts the daemon in-process (the same loop ``python -m
repro.service <cache_dir>`` serves), spawns worker subprocesses to
execute, then drives it with N threads that all submit *overlapping*
grids — most cells are shared between clients, so the counters printed
at the end show the collapse: one enqueue per unique cell, everything
else answered by subscription or from the cache.  A final low/high
priority pair and a deliberately over-sized request show band ordering
and the ``rejected: overload`` path.

Against a real deployment, point :class:`repro.service.ServiceClient`
at the daemon's host/port instead — the in-process setup here is only
so the demo is self-contained.

Run with::

    PYTHONPATH=src python examples/service_demo.py
    PYTHONPATH=src python examples/service_demo.py --clients 12
"""

from __future__ import annotations

import argparse
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.harness import RunConfig
from repro.harness.queue import spawn_local_workers
from repro.service import ServiceClient
from repro.service.client import ServiceError
from repro.service.daemon import ExperimentService

BENCHMARKS = ("gzip", "mcf", "parser")
TECHNIQUES = ("baseline", "abella", "noop")
CONFIG = {"max_instructions": 4_000, "warmup_instructions": 1_000}


def one_client(index: int, host: str, port: int) -> dict:
    """Submit an overlapping grid: every client shares two benchmarks
    with every other client and adds one rotating third."""
    benchmarks = ["gzip", "mcf", BENCHMARKS[index % len(BENCHMARKS)]]
    events = {"progress": 0}

    def observe(event: dict) -> None:
        if event["event"] == "progress":
            events["progress"] += 1

    with ServiceClient(host, port) as client:
        start = time.perf_counter()
        cells = client.grid(
            sorted(set(benchmarks)), TECHNIQUES, config=CONFIG, on_event=observe
        )
        elapsed = time.perf_counter() - start
    return {"index": index, "cells": len(cells), "elapsed": elapsed,
            "progress": events["progress"]}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--cache-dir",
        default=str(Path(__file__).parent / ".service-cache"),
    )
    args = parser.parse_args()

    service = ExperimentService(
        args.cache_dir,
        config=RunConfig(benchmarks=BENCHMARKS),
        queue_ttl=30,
    )
    host, port = service.open()
    loop = threading.Thread(target=service.serve_forever, daemon=True)
    loop.start()
    workers = spawn_local_workers(
        args.cache_dir, args.workers, ttl=30, poll_interval=0.05
    )
    print(f"daemon on {host}:{port}, {args.workers} worker(s) spawned")

    try:
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            reports = list(
                pool.map(
                    lambda i: one_client(i, host, port), range(args.clients)
                )
            )
        for report in reports:
            print(
                f"  client {report['index']}: {report['cells']} cells in "
                f"{report['elapsed']:.1f}s ({report['progress']} progress "
                f"events)"
            )

        with ServiceClient(host, port) as client:
            # Priority bands: a batch backfill at band 0 and an urgent
            # cell at band 9 — workers drain the band-9 envelope first.
            client.simulate("twolf", "baseline", config=CONFIG, priority=9)
            # Admission control: blow past the per-client bound on
            # purpose and show the explicit rejection.
            try:
                client.grid(
                    ["gzip", "mcf", "parser", "twolf", "vortex", "bzip2"],
                    ["baseline", "abella", "noop"],
                    config={"max_instructions": 5_000,
                            "warmup_instructions": 1_000},
                )
            except ServiceError as exc:
                print(f"over-sized request refused: {exc}")
            status = client.status()

        counters = status["service"]["counters"]
        total = sum(report["cells"] for report in reports)
        print(
            f"\n{args.clients} clients asked for {total} cells; the service "
            f"enqueued {counters['cells_enqueued']} unique jobs and answered "
            f"{counters['cells_deduped']} by subscription + "
            f"{counters['cells_cached']} from cache "
            f"({counters['requests_accepted']} accepted / "
            f"{counters['requests_rejected']} rejected)"
        )
        print(
            f"queue: {status['queue']['done']} done, pending by band "
            f"{status['queue']['pending_by_priority']}"
        )
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=10)
        service.stop()
        loop.join(timeout=30)


if __name__ == "__main__":
    main()
