"""Ablation: the cost of carrying hints in NOOPs versus instruction tags.

Isolates section 5.3's Extension argument: the same compiler analysis, the
same hardware mechanism, only the encoding differs.  The NOOP encoding
consumes fetch and dispatch bandwidth, so it can only be slower.
"""

from repro.core import CompilerConfig, compile_program
from repro.techniques import BaselinePolicy, SoftwareDirectedPolicy
from repro.uarch import simulate
from repro.workloads import build_benchmark


# The window must be wide enough that the measured segments of the three
# runs (whose warm-up boundaries fall at different cycles once hint NOOPs
# shift the commit stream) average out start-of-window noise.
BUDGET = dict(max_instructions=12_000, warmup_instructions=3_000)


def run_encoding_comparison():
    results = {}
    for name in ("vortex", "gcc"):
        program = build_benchmark(name)
        baseline = simulate(program, BaselinePolicy(), **BUDGET)
        per_mode = {}
        for mode in ("noop", "extension"):
            compilation = compile_program(program, CompilerConfig(), mode=mode)
            stats = simulate(
                compilation.instrumented_program, SoftwareDirectedPolicy(mode), **BUDGET
            )
            per_mode[mode] = (
                100 * (1 - stats.ipc / baseline.ipc),
                stats.hint_noops_stripped,
            )
        results[name] = per_mode
    return results


def test_noop_overhead_ablation(benchmark):
    results = benchmark.pedantic(run_encoding_comparison, rounds=1, iterations=1)
    print()
    for name, per_mode in results.items():
        for mode, (loss, noops) in per_mode.items():
            print(f"  {name:8s} {mode:10s}: IPC loss {loss:5.1f}%  hint NOOPs executed {noops}")
        # Tagging removes every dynamic NOOP and never costs more IPC.
        assert per_mode["extension"][1] == 0
        assert per_mode["noop"][1] > 0
        assert per_mode["extension"][0] <= per_mode["noop"][0] + 0.5
