"""Tests for the synthetic SPECint2000-like workload suite."""

from __future__ import annotations

import pytest

from repro.isa import Opcode
from repro.uarch import FunctionalEmulator
from repro.workloads import (
    ALL_BENCHMARKS,
    EXTENDED_BENCHMARKS,
    EXTENDED_TRAITS,
    SPECINT_BENCHMARKS,
    SPECINT_TRAITS,
    build_benchmark,
    build_suite,
    generate_program,
)
from repro.workloads.traits import BenchmarkTraits


class TestTraits:
    def test_eleven_benchmarks_defined(self):
        assert len(SPECINT_BENCHMARKS) == 11
        assert set(SPECINT_BENCHMARKS) == set(SPECINT_TRAITS)
        assert "eon" not in SPECINT_BENCHMARKS  # excluded by the paper too

    def test_trait_fractions_are_sane(self):
        for traits in SPECINT_TRAITS.values():
            assert 0 <= traits.mem_fraction <= 1
            assert 0 <= traits.mul_fraction <= 1
            assert 0 <= traits.predictable_branch_fraction <= 1
            assert traits.loop_body_size[0] <= traits.loop_body_size[1]
            assert traits.working_set_bytes > 0

    def test_benchmark_specific_characteristics(self):
        assert SPECINT_TRAITS["mcf"].pointer_chase
        assert SPECINT_TRAITS["mcf"].working_set_bytes > SPECINT_TRAITS["gzip"].working_set_bytes
        assert SPECINT_TRAITS["vortex"].call_in_loop_prob > SPECINT_TRAITS["gzip"].call_in_loop_prob
        assert SPECINT_TRAITS["gcc"].num_switch_kernels > 0
        assert SPECINT_TRAITS["vortex"].leaf_mul_heavy
        assert SPECINT_TRAITS["bzip2"].leaf_mul_heavy


class TestGenerator:
    @pytest.mark.parametrize("name", SPECINT_BENCHMARKS)
    def test_programs_validate(self, name):
        program = build_benchmark(name)
        program.validate()
        assert program.entry == "main"
        assert program.num_instructions > 100

    def test_generation_is_deterministic(self):
        a = generate_program(SPECINT_TRAITS["parser"])
        b = generate_program(SPECINT_TRAITS["parser"])
        assert [str(i) for i in a.procedures["main"].instructions()] == [
            str(i) for i in b.procedures["main"].instructions()
        ]

    def test_cache_returns_same_object_and_fresh_builds_new(self):
        assert build_benchmark("gap") is build_benchmark("gap")
        assert build_benchmark("gap", fresh=True) is not build_benchmark("gap")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("spice")

    def test_build_suite_subset(self):
        suite = build_suite(["gzip", "mcf"])
        assert set(suite) == {"gzip", "mcf"}

    def test_gcc_is_the_largest_program(self):
        sizes = {name: build_benchmark(name).num_basic_blocks for name in SPECINT_BENCHMARKS}
        assert max(sizes, key=sizes.get) == "gcc"

    def test_library_procedures_exist_and_are_marked(self):
        program = build_benchmark("perlbmk")
        libraries = [p for p in program.procedures.values() if p.is_library]
        assert libraries
        assert all(p.name.startswith("lib_") for p in libraries)

    def test_call_kernels_contain_calls(self):
        program = build_benchmark("vortex")
        call_count = program.count_opcode(Opcode.CALL)
        assert call_count >= 5

    def test_switch_kernel_has_high_fan_in_join(self):
        from repro.cfg import build_cfg

        program = build_benchmark("gcc")
        switch_procs = [p for n, p in program.procedures.items() if n.startswith("switch_kernel")]
        assert switch_procs
        cfg = build_cfg(switch_procs[0])
        max_preds = max(len(cfg.pred(label)) for label in cfg.labels)
        assert max_preds >= SPECINT_TRAITS["gcc"].switch_fanout


class TestWorkloadExecution:
    @pytest.mark.parametrize("name", ["gzip", "mcf", "vortex", "gcc"])
    def test_benchmarks_execute_without_error(self, name):
        emulator = FunctionalEmulator(build_benchmark(name))
        trace = list(emulator.run(max_instructions=3000))
        assert len(trace) == 3000  # long-running driver loop never exits early

    def test_mcf_misses_more_than_gzip(self):
        from repro.techniques import BaselinePolicy
        from repro.uarch import simulate

        gzip_stats = simulate(
            build_benchmark("gzip"), BaselinePolicy(), max_instructions=12000, warmup_instructions=5000
        )
        mcf_stats = simulate(
            build_benchmark("mcf"), BaselinePolicy(), max_instructions=12000, warmup_instructions=5000
        )
        # mcf's serial pointer chase keeps its IPC below the loop-parallel
        # gzip workload, mirroring the real benchmarks' relative behaviour.
        assert mcf_stats.ipc < gzip_stats.ipc

    def test_custom_traits_program_runs(self):
        traits = BenchmarkTraits(
            name="custom",
            seed=7,
            num_loop_kernels=1,
            num_dag_kernels=1,
            outer_trips=3,
            loop_trip_count=(4, 6),
        )
        program = generate_program(traits)
        trace = list(FunctionalEmulator(program).run(max_instructions=50_000))
        assert trace[-1].static.is_halt  # small program actually terminates


class TestExtendedFamilies:
    def test_registry_contains_both_suites(self):
        assert set(ALL_BENCHMARKS) == set(SPECINT_BENCHMARKS) | set(EXTENDED_BENCHMARKS)
        assert {"fpstream", "branchstorm", "ptrthrash"} <= set(EXTENDED_TRAITS)
        # The paper's figure suite is untouched by the extensions.
        assert len(SPECINT_BENCHMARKS) == 11
        assert not set(SPECINT_BENCHMARKS) & set(EXTENDED_BENCHMARKS)

    @pytest.mark.parametrize("name", sorted(EXTENDED_TRAITS))
    def test_extended_programs_validate_and_run(self, name):
        program = build_benchmark(name)
        program.validate()
        trace = list(FunctionalEmulator(program).run(max_instructions=2000))
        assert len(trace) == 2000

    def test_fpstream_executes_floating_point(self):
        fp_opcodes = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
        trace = FunctionalEmulator(build_benchmark("fpstream")).run(max_instructions=3000)
        fp_count = sum(1 for dyn in trace if dyn.static.opcode in fp_opcodes)
        assert fp_count > 300  # fp_fraction=0.4 of generated body work

    def test_branchstorm_is_branch_hostile(self):
        from repro.techniques import BaselinePolicy
        from repro.uarch import simulate

        budget = dict(max_instructions=6000, warmup_instructions=1000)
        storm = simulate(build_benchmark("branchstorm"), BaselinePolicy(), **budget)
        calm = simulate(build_benchmark("gzip"), BaselinePolicy(), **budget)
        assert storm.branch_mispredict_rate > 1.5 * calm.branch_mispredict_rate

    def test_ptrthrash_thrashes_the_data_cache(self):
        from repro.techniques import BaselinePolicy
        from repro.uarch import simulate

        budget = dict(max_instructions=6000, warmup_instructions=1000)
        thrash = simulate(build_benchmark("ptrthrash"), BaselinePolicy(), **budget)
        mcf = simulate(build_benchmark("mcf"), BaselinePolicy(), **budget)
        # The counter-mixed chase defeats the short cached cycle mcf's
        # fixed chase settles into, and serialised misses crush IPC.
        assert thrash.l1d_miss_rate > 5 * mcf.l1d_miss_rate
        assert thrash.ipc < mcf.ipc
