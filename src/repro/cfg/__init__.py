"""Control-flow and data-dependence analysis substrate.

This package replaces the MachineSUIF analysis libraries the paper relies
on: control-flow graph construction, dominator computation, natural-loop
detection, DAG-region formation (the regions between procedure calls that
the paper analyses block-by-block) and data-dependence-graph construction
with instruction latencies.
"""

from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.cfg.dominators import compute_dominators, immediate_dominators
from repro.cfg.natural_loops import NaturalLoop, find_natural_loops
from repro.cfg.dag_regions import DagRegion, find_dag_regions
from repro.cfg.ddg import DataDependenceGraph, DependenceEdge, build_ddg

__all__ = [
    "ControlFlowGraph",
    "build_cfg",
    "compute_dominators",
    "immediate_dominators",
    "NaturalLoop",
    "find_natural_loops",
    "DagRegion",
    "find_dag_regions",
    "DataDependenceGraph",
    "DependenceEdge",
    "build_ddg",
]
