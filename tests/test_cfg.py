"""Unit tests for control-flow and dependence analysis (:mod:`repro.cfg`)."""

from __future__ import annotations

import pytest

from repro.cfg import (
    build_cfg,
    build_ddg,
    compute_dominators,
    find_dag_regions,
    find_natural_loops,
    immediate_dominators,
)
from repro.cfg.natural_loops import blocks_in_any_loop
from repro.isa import Instruction, Opcode, Program
from repro.isa.registers import int_reg


def diamond_program() -> Program:
    """entry -> (then | else) -> join -> exit, no loops."""
    program = Program(name="diamond")
    main = program.new_procedure("main")
    entry = main.add_block("entry")
    entry.append(Instruction.alu(Opcode.CMP_EQ, int_reg(1), [int_reg(2)], imm=0))
    entry.append(Instruction.branch_nez(int_reg(1), "else_b"))
    then_b = main.add_block("then_b")
    then_b.append(Instruction.alu(Opcode.ADD, int_reg(3), [int_reg(3)], imm=1))
    then_b.append(Instruction.jump("join"))
    else_b = main.add_block("else_b")
    else_b.append(Instruction.alu(Opcode.ADD, int_reg(3), [int_reg(3)], imm=2))
    join = main.add_block("join")
    join.append(Instruction.alu(Opcode.ADD, int_reg(4), [int_reg(3)], imm=1))
    join.append(Instruction.halt())
    program.validate()
    return program


def nested_loop_program() -> Program:
    """An outer loop containing an inner loop."""
    program = Program(name="nested")
    main = program.new_procedure("main")
    init = main.add_block("init")
    init.append(Instruction.load_imm(int_reg(1), 4))
    outer = main.add_block("outer")
    outer.append(Instruction.load_imm(int_reg(2), 3))
    inner = main.add_block("inner")
    inner.append(Instruction.alu(Opcode.ADD, int_reg(3), [int_reg(3)], imm=1))
    inner.append(Instruction.alu(Opcode.SUB, int_reg(2), [int_reg(2)], imm=1))
    inner.append(Instruction.branch_nez(int_reg(2), "inner"))
    latch = main.add_block("latch")
    latch.append(Instruction.alu(Opcode.SUB, int_reg(1), [int_reg(1)], imm=1))
    latch.append(Instruction.branch_nez(int_reg(1), "outer"))
    done = main.add_block("done")
    done.append(Instruction.halt())
    program.validate()
    return program


class TestControlFlowGraph:
    def test_diamond_edges(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        assert set(cfg.succ("entry")) == {"then_b", "else_b"}
        assert cfg.succ("then_b") == ["join"]
        assert cfg.succ("else_b") == ["join"]
        assert cfg.succ("join") == []
        assert set(cfg.pred("join")) == {"then_b", "else_b"}

    def test_reverse_postorder_starts_at_entry(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        order = cfg.reverse_postorder()
        assert order[0] == "entry"
        assert order.index("join") > order.index("then_b")

    def test_loop_back_edge_present(self, counted_loop_program):
        cfg = build_cfg(counted_loop_program.procedures["main"])
        assert "loop" in cfg.succ("loop")

    def test_call_block_falls_through(self, call_program):
        cfg = build_cfg(call_program.procedures["main"])
        assert cfg.succ("loop") == ["after_call"]

    def test_unknown_block_lookup_raises(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        with pytest.raises(KeyError):
            cfg.block("missing")


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        dominators = compute_dominators(cfg)
        for label, doms in dominators.items():
            assert "entry" in doms

    def test_branch_arms_do_not_dominate_join(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        dominators = compute_dominators(cfg)
        assert "then_b" not in dominators["join"]
        assert "else_b" not in dominators["join"]

    def test_immediate_dominators(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        idom = immediate_dominators(cfg)
        assert idom["then_b"] == "entry"
        assert idom["else_b"] == "entry"
        assert idom["join"] == "entry"

    def test_loop_header_dominates_body(self):
        cfg = build_cfg(nested_loop_program().procedures["main"])
        dominators = compute_dominators(cfg)
        assert "outer" in dominators["inner"]
        assert "outer" in dominators["latch"]


class TestNaturalLoops:
    def test_self_loop_body_is_only_the_header(self, counted_loop_program):
        cfg = build_cfg(counted_loop_program.procedures["main"])
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        assert loops[0].body == {"loop"}

    def test_nested_loops_detected_with_depths(self):
        cfg = build_cfg(nested_loop_program().procedures["main"])
        loops = find_natural_loops(cfg)
        assert len(loops) == 2
        by_header = {loop.header: loop for loop in loops}
        assert by_header["inner"].depth == 2
        assert by_header["outer"].depth == 1
        # Inner loop's blocks are excluded from the outer loop's analysis set.
        assert "inner" not in by_header["outer"].exclusive_body

    def test_loops_returned_innermost_first(self):
        cfg = build_cfg(nested_loop_program().procedures["main"])
        loops = find_natural_loops(cfg)
        assert loops[0].depth >= loops[-1].depth

    def test_loop_free_procedure_has_no_loops(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        assert find_natural_loops(cfg) == []

    def test_blocks_in_any_loop(self):
        cfg = build_cfg(nested_loop_program().procedures["main"])
        loops = find_natural_loops(cfg)
        assert blocks_in_any_loop(loops) == {"outer", "inner", "latch"}


class TestDagRegions:
    def test_diamond_is_one_region(self):
        cfg = build_cfg(diamond_program().procedures["main"])
        regions = find_dag_regions(cfg, [])
        assert len(regions) == 1
        assert set(regions[0].blocks) == {"entry", "then_b", "else_b", "join"}

    def test_loop_blocks_excluded(self, counted_loop_program):
        cfg = build_cfg(counted_loop_program.procedures["main"])
        loops = find_natural_loops(cfg)
        regions = find_dag_regions(cfg, loops)
        region_blocks = {label for region in regions for label in region.blocks}
        assert "loop" not in region_blocks
        assert "init" in region_blocks and "done" in region_blocks

    def test_post_call_block_starts_a_region(self, call_program):
        cfg = build_cfg(call_program.procedures["main"])
        loops = find_natural_loops(cfg)
        regions = find_dag_regions(cfg, loops)
        starts = {region.start for region in regions}
        assert "done" in starts  # follows the library call in "tail"

    def test_every_loop_free_block_assigned_exactly_once(self, call_program):
        cfg = build_cfg(call_program.procedures["main"])
        loops = find_natural_loops(cfg)
        regions = find_dag_regions(cfg, loops)
        assigned = [label for region in regions for label in region.blocks]
        assert len(assigned) == len(set(assigned))


class TestDataDependenceGraph:
    def test_raw_dependence(self):
        instrs = [
            Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(2)]),
            Instruction.alu(Opcode.ADD, int_reg(3), [int_reg(1)]),
        ]
        ddg = build_ddg(instrs)
        assert any(e.src == 0 and e.dst == 1 and e.distance == 0 for e in ddg.edges)

    def test_no_dependence_between_independent_instructions(self):
        instrs = [
            Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(2)]),
            Instruction.alu(Opcode.ADD, int_reg(3), [int_reg(4)]),
        ]
        ddg = build_ddg(instrs)
        assert ddg.edges == []

    def test_memory_dependence_on_nearest_store(self):
        instrs = [
            Instruction.store(int_reg(1), int_reg(2), 0),
            Instruction.load(int_reg(3), int_reg(4), 0),
        ]
        ddg = build_ddg(instrs)
        assert any(e.src == 0 and e.dst == 1 for e in ddg.edges)

    def test_loop_carried_edge_for_accumulator(self):
        instrs = [Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)], imm=1)]
        ddg = build_ddg(instrs, include_loop_carried=True)
        assert any(e.distance == 1 and e.src == 0 and e.dst == 0 for e in ddg.edges)

    def test_no_carried_edge_when_not_requested(self):
        instrs = [Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(1)], imm=1)]
        ddg = build_ddg(instrs, include_loop_carried=False)
        assert ddg.carried_edges() == []

    def test_edge_latency_matches_producer(self):
        instrs = [
            Instruction.alu(Opcode.MUL, int_reg(1), [int_reg(2)], imm=3),
            Instruction.alu(Opcode.ADD, int_reg(3), [int_reg(1)]),
        ]
        ddg = build_ddg(instrs)
        assert ddg.edges[0].latency == 3

    def test_zero_register_creates_no_dependence(self):
        instrs = [
            Instruction.alu(Opcode.ADD, int_reg(0), [int_reg(1)]),
            Instruction.alu(Opcode.ADD, int_reg(2), [int_reg(0)]),
        ]
        ddg = build_ddg(instrs)
        assert ddg.edges == []

    def test_roots(self):
        instrs = [
            Instruction.alu(Opcode.ADD, int_reg(1), [int_reg(2)]),
            Instruction.alu(Opcode.ADD, int_reg(3), [int_reg(1)]),
            Instruction.alu(Opcode.ADD, int_reg(4), [int_reg(5)]),
        ]
        ddg = build_ddg(instrs)
        assert set(ddg.roots()) == {0, 2}
