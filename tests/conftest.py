"""Shared fixtures for the test suite.

Simulation-based tests use deliberately small instruction budgets so the
whole suite stays fast; the benchmark harness under ``benchmarks/`` runs
the larger, figure-regenerating configurations.
"""

from __future__ import annotations

import pytest

from repro.core import CompilerConfig, compile_program
from repro.harness import RunConfig, SuiteRunner
from repro.isa import Instruction, Opcode, Program
from repro.isa.registers import int_reg
from repro.workloads import build_benchmark


def make_counted_loop_program(trips: int = 10, body_adds: int = 4) -> Program:
    """A tiny runnable program: one counted loop plus a halting main."""
    program = Program(name="counted-loop")
    main = program.new_procedure("main")
    init = main.add_block("init")
    init.append(Instruction.load_imm(int_reg(1), trips))
    init.append(Instruction.load_imm(int_reg(2), 0))
    loop = main.add_block("loop")
    for index in range(body_adds):
        loop.append(Instruction.alu(Opcode.ADD, int_reg(2), [int_reg(2)], imm=index + 1))
    loop.append(Instruction.alu(Opcode.SUB, int_reg(1), [int_reg(1)], imm=1))
    loop.append(Instruction.branch_nez(int_reg(1), "loop"))
    done = main.add_block("done")
    done.append(Instruction.halt())
    program.validate()
    return program


def make_call_program() -> Program:
    """A program with a procedure call, a library call and a loop."""
    program = Program(name="call-program")
    leaf = program.new_procedure("leaf")
    body = leaf.add_block("leaf_body")
    body.append(Instruction.alu(Opcode.MUL, int_reg(3), [int_reg(3)], imm=3))
    body.append(Instruction.alu(Opcode.ADD, int_reg(4), [int_reg(3), int_reg(4)]))
    body.append(Instruction.ret())

    lib = program.new_procedure("libfn", is_library=True)
    lib_body = lib.add_block("lib_body")
    lib_body.append(Instruction.alu(Opcode.ADD, int_reg(5), [int_reg(5)], imm=1))
    lib_body.append(Instruction.ret())

    main = program.new_procedure("main")
    init = main.add_block("init")
    init.append(Instruction.load_imm(int_reg(1), 6))
    init.append(Instruction.load_imm(int_reg(3), 2))
    loop = main.add_block("loop")
    loop.append(Instruction.alu(Opcode.ADD, int_reg(6), [int_reg(6)], imm=1))
    loop.append(Instruction.call("leaf"))
    after = main.add_block("after_call")
    after.append(Instruction.alu(Opcode.SUB, int_reg(1), [int_reg(1)], imm=1))
    after.append(Instruction.branch_nez(int_reg(1), "loop"))
    tail = main.add_block("tail")
    tail.append(Instruction.call("libfn"))
    done = main.add_block("done")
    done.append(Instruction.halt())
    program.validate()
    return program


@pytest.fixture
def counted_loop_program() -> Program:
    return make_counted_loop_program()


@pytest.fixture
def call_program() -> Program:
    return make_call_program()


@pytest.fixture(scope="session")
def gzip_program() -> Program:
    return build_benchmark("gzip")


@pytest.fixture(scope="session")
def gzip_compiled():
    return compile_program(build_benchmark("gzip"), CompilerConfig(), mode="noop")


@pytest.fixture(scope="session")
def tiny_runner() -> SuiteRunner:
    """A suite runner over two benchmarks with small budgets.

    The budget is the smallest at which the paper-shape orderings (e.g.
    Improved never losing more IPC than NOOP) hold: with the measurement
    clock fixed, shorter windows are dominated by which instructions the
    warm-up boundary happens to land on.
    """
    return SuiteRunner(
        RunConfig(
            benchmarks=("gzip", "mcf"),
            max_instructions=6000,
            warmup_instructions=1500,
        )
    )
