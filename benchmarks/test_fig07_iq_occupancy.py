"""Figure 7: issue-queue occupancy reduction for the NOOP technique."""

from figure_report import report
from repro.harness.figures import figure7


def test_figure7_occupancy_reduction(benchmark, runner):
    figure = benchmark.pedantic(figure7, args=(runner,), rounds=1, iterations=1)
    report("Figure 7 - IQ occupancy reduction, NOOP technique (paper: 23% average)", figure)
    series = figure.series["noop"]
    assert series["SPECINT"] > 0.0
    # Section 5.2.2's companion claims: banks are gated off and fewer
    # instructions are in flight under the software scheme.
    noop = runner.suite_metrics("noop")
    assert sum(m.iq_banks_off_pct for m in noop) / len(noop) > 10.0
    assert sum(m.inflight_reduction_pct for m in noop) / len(noop) > 0.0
