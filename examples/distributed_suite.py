#!/usr/bin/env python3
"""Two-worker distributed evaluation over a shared cache directory.

Demonstrates the work-queue execution backend
(:mod:`repro.harness.queue`): the driver enqueues every uncached
(benchmark × technique) cell into ``<cache-dir>/queue/``, two worker
*subprocesses* lease jobs atomically, heartbeat their leases while
simulating, publish results through the shared content-addressed caches
and write completion markers; the driver blocks on the markers, folds
each worker's trace-cache counter deltas (so cache statistics stay
exact), and assembles the figure.  Statistics are bit-identical to a
single-process run.

The same protocol scales beyond one host: point any number of machines
at one NFS-mounted cache directory and run on each of them::

    PYTHONPATH=src python -m repro.harness.queue /mnt/shared-cache

then start this driver (or ``benchmarks/figure_report.py
--backend queue --cache-dir /mnt/shared-cache``) from anywhere that
mounts the same directory.  A worker killed mid-job is recovered
automatically: its lease stops heartbeating, expires after the TTL and
is re-leased to a surviving worker.

Run with::

    PYTHONPATH=src python examples/distributed_suite.py
    PYTHONPATH=src python examples/distributed_suite.py --workers 4
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.harness import ParallelSuiteRunner, RunConfig, figures
from repro.harness.queue import WorkQueue
from repro.workloads import SPECINT_BENCHMARKS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=2, help="worker subprocesses to spawn"
    )
    parser.add_argument(
        "--cache-dir",
        default=str(Path(__file__).parent / ".distributed-cache"),
        help="shared cache directory (the queue lives inside it)",
    )
    parser.add_argument("--max-instructions", type=int, default=6_000)
    parser.add_argument("--warmup-instructions", type=int, default=1_500)
    args = parser.parse_args()

    runner = ParallelSuiteRunner(
        RunConfig(
            benchmarks=SPECINT_BENCHMARKS,
            max_instructions=args.max_instructions,
            warmup_instructions=args.warmup_instructions,
        ),
        workers=1,
        cache_dir=args.cache_dir,
        backend="queue",
        queue_workers=args.workers,
        queue_assist=False,  # let the workers do all the simulating
        queue_ttl=60,
        queue_poll=0.1,
    )

    start = time.perf_counter()
    runner.run_suite()
    elapsed = time.perf_counter() - start
    status = WorkQueue(args.cache_dir).status()
    print(
        f"grid of {len(SPECINT_BENCHMARKS)} benchmarks x 6 techniques in "
        f"{elapsed:.1f}s over {args.workers} queue worker(s): "
        f"{runner.simulations_run} simulated, "
        f"{runner.cache.hits} from cache; queue now "
        f"{status['pending']} pending / {status['leased']} leased / "
        f"{status['done']} done"
    )

    print(figures.figure6(runner).to_text())


if __name__ == "__main__":
    main()
