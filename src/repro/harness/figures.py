"""Reproduction of every figure in the paper's evaluation section.

Each ``figureN`` function returns a :class:`FigureData`: the per-benchmark
series the paper plots, the SPECINT average bar, and the comparison bars
(abella, nonEmpty) where the original figure includes them.  The functions
only *organise* results; all simulation happens in the
:class:`~repro.harness.experiment.SuiteRunner` passed in, so data is shared
and cached across figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.experiment import SuiteRunner


@dataclass
class FigureData:
    """One reproduced figure.

    Attributes:
        name: figure identifier ("figure6", ...).
        title: human-readable description.
        series: mapping from series name (e.g. "noop dynamic") to a mapping
            from bar label (benchmark or aggregate) to value.
        unit: unit of the values (always percent here).
        paper_reference: the headline numbers the paper reports, for
            side-by-side comparison in EXPERIMENTS.md.
    """

    name: str
    title: str
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    unit: str = "%"
    paper_reference: dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the figure as an ASCII table."""
        lines = [f"{self.name}: {self.title} (values in {self.unit})"]
        labels: list[str] = []
        for values in self.series.values():
            for label in values:
                if label not in labels:
                    labels.append(label)
        header = f"{'':16s}" + "".join(f"{name:>22s}" for name in self.series)
        lines.append(header)
        for label in labels:
            row = f"{label:16s}"
            for values in self.series.values():
                value = values.get(label)
                row += f"{value:22.1f}" if value is not None else f"{'-':>22s}"
            lines.append(row)
        if self.paper_reference:
            refs = ", ".join(f"{k}={v}" for k, v in self.paper_reference.items())
            lines.append(f"paper reference: {refs}")
        return "\n".join(lines)


def _per_benchmark(runner: SuiteRunner, technique: str, attribute: str) -> dict[str, float]:
    values = {
        metrics.benchmark: getattr(metrics, attribute)
        for metrics in runner.suite_metrics(technique)
    }
    values["SPECINT"] = runner.average(technique, attribute)
    return values


def figure6(runner: SuiteRunner) -> FigureData:
    """Normalised IPC loss for the NOOP technique (plus the abella average)."""
    series = {"noop": _per_benchmark(runner, "noop", "ipc_loss_pct")}
    series["noop"]["abella"] = runner.average("abella", "ipc_loss_pct")
    return FigureData(
        name="figure6",
        title="Normalised IPC loss for the NOOP technique",
        series=series,
        paper_reference={"SPECINT": 2.2, "abella": 3.1, "vortex": 5.4, "mcf": 0.4},
    )


def figure7(runner: SuiteRunner) -> FigureData:
    """Issue-queue occupancy reduction for the NOOP technique."""
    return FigureData(
        name="figure7",
        title="Normalised IQ occupancy reduction for the NOOP technique",
        series={"noop": _per_benchmark(runner, "noop", "occupancy_reduction_pct")},
        paper_reference={"SPECINT": 23.0},
    )


def figure8(runner: SuiteRunner) -> FigureData:
    """Dynamic and static IQ power savings for the NOOP technique."""
    dynamic = _per_benchmark(runner, "noop", "iq_dynamic_saving_pct")
    dynamic["abella"] = runner.average("abella", "iq_dynamic_saving_pct")
    dynamic["nonEmpty"] = runner.average("nonempty", "iq_dynamic_saving_pct")
    static = _per_benchmark(runner, "noop", "iq_static_saving_pct")
    static["abella"] = runner.average("abella", "iq_static_saving_pct")
    return FigureData(
        name="figure8",
        title="Normalised dynamic and static IQ power savings (NOOP)",
        series={"dynamic": dynamic, "static": static},
        paper_reference={
            "dynamic SPECINT": 47.0,
            "static SPECINT": 31.0,
            "dynamic abella": 39.0,
            "static abella": 30.0,
        },
    )


def figure9(runner: SuiteRunner) -> FigureData:
    """Dynamic and static register-file power savings for the NOOP technique."""
    dynamic = _per_benchmark(runner, "noop", "rf_dynamic_saving_pct")
    dynamic["abella"] = runner.average("abella", "rf_dynamic_saving_pct")
    static = _per_benchmark(runner, "noop", "rf_static_saving_pct")
    static["abella"] = runner.average("abella", "rf_static_saving_pct")
    return FigureData(
        name="figure9",
        title="Normalised dynamic and static register file power savings (NOOP)",
        series={"dynamic": dynamic, "static": static},
        paper_reference={
            "dynamic SPECINT": 22.0,
            "static SPECINT": 21.0,
            "dynamic abella": 14.0,
            "static abella": 17.0,
        },
    )


def figure10(runner: SuiteRunner) -> FigureData:
    """IPC loss for the Extension and Improved techniques."""
    series = {
        "extension": _per_benchmark(runner, "extension", "ipc_loss_pct"),
        "improved": _per_benchmark(runner, "improved", "ipc_loss_pct"),
    }
    series["extension"]["noop"] = runner.average("noop", "ipc_loss_pct")
    series["extension"]["abella"] = runner.average("abella", "ipc_loss_pct")
    return FigureData(
        name="figure10",
        title="Normalised IPC loss for Extension and Improved",
        series=series,
        paper_reference={"extension SPECINT": 1.7, "improved SPECINT": 1.3},
    )


def figure11(runner: SuiteRunner) -> FigureData:
    """Dynamic and static IQ power savings for Extension and Improved."""
    return FigureData(
        name="figure11",
        title="Normalised dynamic and static IQ power savings (Extension, Improved)",
        series={
            "extension dynamic": _per_benchmark(runner, "extension", "iq_dynamic_saving_pct"),
            "extension static": _per_benchmark(runner, "extension", "iq_static_saving_pct"),
            "improved dynamic": _per_benchmark(runner, "improved", "iq_dynamic_saving_pct"),
            "improved static": _per_benchmark(runner, "improved", "iq_static_saving_pct"),
        },
        paper_reference={"dynamic SPECINT": 45.0, "static SPECINT": 30.0},
    )


def figure12(runner: SuiteRunner) -> FigureData:
    """Dynamic and static register-file power savings for Extension and Improved."""
    return FigureData(
        name="figure12",
        title="Normalised dynamic and static register file power savings (Extension, Improved)",
        series={
            "extension dynamic": _per_benchmark(runner, "extension", "rf_dynamic_saving_pct"),
            "extension static": _per_benchmark(runner, "extension", "rf_static_saving_pct"),
            "improved dynamic": _per_benchmark(runner, "improved", "rf_dynamic_saving_pct"),
            "improved static": _per_benchmark(runner, "improved", "rf_static_saving_pct"),
        },
        paper_reference={
            "extension dynamic SPECINT": 21.0,
            "extension static SPECINT": 21.0,
            "improved dynamic SPECINT": 22.0,
            "improved static SPECINT": 20.0,
        },
    )


ALL_FIGURES = {
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
}


def reproduce_all(runner: SuiteRunner) -> dict[str, FigureData]:
    """Reproduce every evaluation figure with one shared runner."""
    return {name: build(runner) for name, build in ALL_FIGURES.items()}
