"""Per-kernel throughput probes for heterogeneous-fleet placement.

Every registered replay engine (:mod:`repro.uarch.engine`) is
bit-identical — statistics, fingerprints, and cached results are shared
between kernels — so the *only* defensible reason to pick one kernel
over another on a given host is measured throughput (the Mitrion-C
lesson from PAPERS.md: heterogeneous placement needs per-kernel
numbers, not folklore).  This module runs a short seeded calibration
replay per available engine and reports ``cycles_per_second`` for each,
so a queue worker can:

* publish the probe next to its counters in ``queue/workers/<id>.json``
  (fleet-visible: ``--status`` and the service ``status`` op show which
  host runs which kernel at what rate), and
* export the fastest kernel as its engine default, so claimed jobs that
  pin no engine (``job.engine is None`` resolves through
  ``REPRO_REPLAY_KERNEL``) execute on the host's best kernel — with
  bit-identity untouched, since engines never enter fingerprints.

An explicit operator pin always wins: if ``REPRO_REPLAY_KERNEL`` is
already set (or the worker was given ``--engine``), the probe still
measures and publishes, but never overrides the pin.

The calibration workload is deliberately tiny (a few thousand gzip
instructions, one warm-up round) so a worker is probing for well under
a second per kernel at startup and on the jittered refresh.
"""

from __future__ import annotations

import time

#: Calibration workload: small enough to finish in well under a second
#: per kernel, large enough that the per-cycle replay loop dominates.
PROBE_BENCHMARK = "gzip"
PROBE_INSTRUCTIONS = 4_000
PROBE_WARMUP_ROUNDS = 1


def calibrate_engines(
    benchmark: str = PROBE_BENCHMARK,
    max_instructions: int = PROBE_INSTRUCTIONS,
    engines=None,
) -> dict[str, float]:
    """Measure warm replay throughput per engine on this host.

    Returns ``{engine_name: cycles_per_second}`` for every engine that
    actually ran; engines whose optional dependency is missing (the
    columnar kernel without numpy, the native kernel without a C
    toolchain) are skipped, not failed — a probe must never take a
    worker down.  Unavailability is one exception type for all kernels
    (:class:`~repro.uarch.engine.base.EngineUnavailableError`), so a
    future kernel's probe degrades the same way without edits here.
    The timed round replays a memoised decoded trace, so the number is
    the steady-state (warm) rate a grid run would see.
    """
    # Heavy imports stay local so `import repro.telemetry.probes` (and
    # transitively the queue CLI) stays cheap until a probe actually runs.
    from repro.techniques import BaselinePolicy
    from repro.uarch import simulate
    from repro.uarch.engine import EngineUnavailableError, available_engines
    from repro.workloads import build_benchmark

    if engines is None:
        engines = available_engines()
    rates: dict[str, float] = {}
    for engine in engines:
        try:
            program = build_benchmark(benchmark)
            for _ in range(PROBE_WARMUP_ROUNDS):
                simulate(
                    program,
                    BaselinePolicy(),
                    max_instructions=max_instructions,
                    engine=engine,
                )
            start = time.perf_counter()
            stats = simulate(
                program,
                BaselinePolicy(),
                max_instructions=max_instructions,
                engine=engine,
            )
            elapsed = time.perf_counter() - start
        except EngineUnavailableError:
            continue
        if elapsed > 0.0 and stats.cycles > 0:
            rates[engine] = round(stats.cycles / elapsed, 1)
    return rates


def fastest_engine(rates: dict[str, float]) -> str | None:
    """The highest-throughput probed engine (stable on ties), or None."""
    if not rates:
        return None
    return max(sorted(rates), key=lambda engine: rates[engine])
