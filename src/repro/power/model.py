"""Turning simulation event counts into power figures and savings.

All of the paper's power results are *normalised savings*: the percentage
by which a technique reduces dynamic or static power in the issue queue
(figures 8 and 11) and the integer register file (figures 9 and 12),
relative to the conventional baseline machine.  Savings are computed here
as ``1 - P_technique / P_baseline`` where P is average power (energy per
cycle), so runs of slightly different length compare fairly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.params import EnergyParams
from repro.uarch.stats import SimulationStats


@dataclass
class IssueQueuePowerBreakdown:
    """Issue-queue energy for one run, split by component.

    Attributes:
        wakeup: CAM comparator energy over the run.
        dispatch_writes: RAM write energy at dispatch.
        issue_reads: RAM read energy at issue.
        selection: always-on selection-logic energy.
        static: leakage energy (bank gating applied where enabled).
        cycles: simulated cycles (for per-cycle power).
    """

    wakeup: float
    dispatch_writes: float
    issue_reads: float
    selection: float
    static: float
    cycles: int

    @property
    def dynamic(self) -> float:
        """Total dynamic energy."""
        return self.wakeup + self.dispatch_writes + self.issue_reads + self.selection

    @property
    def dynamic_power(self) -> float:
        """Average dynamic power (energy per cycle)."""
        return self.dynamic / max(1, self.cycles)

    @property
    def static_power(self) -> float:
        """Average static power (energy per cycle)."""
        return self.static / max(1, self.cycles)


@dataclass
class RegisterFilePowerBreakdown:
    """Integer register-file energy for one run."""

    access: float
    static: float
    cycles: int

    @property
    def dynamic(self) -> float:
        """Total dynamic energy."""
        return self.access

    @property
    def dynamic_power(self) -> float:
        """Average dynamic power."""
        return self.access / max(1, self.cycles)

    @property
    def static_power(self) -> float:
        """Average static power."""
        return self.static / max(1, self.cycles)


@dataclass
class PowerReport:
    """Issue-queue and register-file power for one simulation run."""

    iq: IssueQueuePowerBreakdown
    rf: RegisterFilePowerBreakdown
    gating: str
    iq_bank_gating: bool
    rf_bank_gating: bool


def _iq_breakdown(
    stats: SimulationStats, params: EnergyParams, gating: str, bank_gating: bool
) -> IssueQueuePowerBreakdown:
    comparisons = stats.iq_cmp_gated if gating == "nonempty" else stats.iq_cmp_full
    wakeup = comparisons * params.iq_cmp_energy
    writes = stats.iq_dispatch_writes * params.iq_write_energy
    reads = stats.iq_issue_reads * params.iq_read_energy
    selection = stats.sampled_cycles * params.iq_selection_energy_per_cycle

    total_bank_cycles = stats.sampled_cycles * stats.iq_banks_total
    on_bank_cycles = stats.iq_banks_on_sum if bank_gating else total_bank_cycles
    static = params.iq_bank_leakage * (
        params.iq_ungated_static_fraction * total_bank_cycles
        + (1.0 - params.iq_ungated_static_fraction) * on_bank_cycles
    )
    return IssueQueuePowerBreakdown(
        wakeup=wakeup,
        dispatch_writes=writes,
        issue_reads=reads,
        selection=selection,
        static=static,
        cycles=stats.sampled_cycles,
    )


def _rf_breakdown(
    stats: SimulationStats, params: EnergyParams, bank_gating: bool
) -> RegisterFilePowerBreakdown:
    accesses = stats.rf_reads + stats.rf_writes
    total_banks = max(1, stats.rf_banks_total)
    if bank_gating and stats.sampled_cycles:
        avg_banks_on = stats.rf_banks_on_sum / stats.sampled_cycles
    else:
        avg_banks_on = float(total_banks)
    access_energy = accesses * (
        params.rf_access_base + params.rf_access_per_bank * avg_banks_on
    )

    total_bank_cycles = stats.sampled_cycles * total_banks
    on_bank_cycles = stats.rf_banks_on_sum if bank_gating else total_bank_cycles
    static = params.rf_bank_leakage * (
        params.rf_ungated_static_fraction * total_bank_cycles
        + (1.0 - params.rf_ungated_static_fraction) * on_bank_cycles
    )
    return RegisterFilePowerBreakdown(
        access=access_energy, static=static, cycles=stats.sampled_cycles
    )


def build_power_report(
    stats: SimulationStats,
    policy,
    params: EnergyParams | None = None,
) -> PowerReport:
    """Cost a simulation run under ``policy``'s gating assumptions.

    Args:
        stats: event counts from the run.
        policy: the resizing policy the run used (its gating flags select
            which comparator count and bank counts apply).
        params: energy coefficients (defaults are the calibrated set).
    """
    params = params or EnergyParams()
    params.validate()
    return PowerReport(
        iq=_iq_breakdown(stats, params, policy.wakeup_gating, policy.iq_bank_gating),
        rf=_rf_breakdown(stats, params, policy.rf_bank_gating),
        gating=policy.wakeup_gating,
        iq_bank_gating=policy.iq_bank_gating,
        rf_bank_gating=policy.rf_bank_gating,
    )


@dataclass
class PowerSavings:
    """Savings of one technique relative to the baseline run (fractions)."""

    iq_dynamic: float
    iq_static: float
    rf_dynamic: float
    rf_static: float

    def as_percentages(self) -> dict[str, float]:
        """The four savings as percentages (for reports)."""
        return {
            "iq_dynamic_pct": 100.0 * self.iq_dynamic,
            "iq_static_pct": 100.0 * self.iq_static,
            "rf_dynamic_pct": 100.0 * self.rf_dynamic,
            "rf_static_pct": 100.0 * self.rf_static,
        }


def _saving(baseline_power: float, technique_power: float) -> float:
    if baseline_power <= 0:
        return 0.0
    return 1.0 - technique_power / baseline_power


def power_savings(baseline: PowerReport, technique: PowerReport) -> PowerSavings:
    """Normalised power savings of ``technique`` relative to ``baseline``."""
    return PowerSavings(
        iq_dynamic=_saving(baseline.iq.dynamic_power, technique.iq.dynamic_power),
        iq_static=_saving(baseline.iq.static_power, technique.iq.static_power),
        rf_dynamic=_saving(baseline.rf.dynamic_power, technique.rf.dynamic_power),
        rf_static=_saving(baseline.rf.static_power, technique.rf.static_power),
    )
