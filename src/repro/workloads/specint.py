"""The eleven-benchmark synthetic SPECint2000 suite.

The paper uses the SPEC CPU2000 integer benchmarks except ``eon`` (C++,
which SUIF cannot compile) and the floating-point suite.  The same eleven
names are used here; each maps to a deterministic synthetic program built
from the traits in :mod:`repro.workloads.traits`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.isa.program import Program
from repro.workloads.generator import generate_program
from repro.workloads.traits import ALL_TRAITS, EXTENDED_TRAITS, SPECINT_TRAITS


#: Benchmark names, in the order the paper's figures list them.
SPECINT_BENCHMARKS: tuple[str, ...] = (
    "gzip",
    "vpr",
    "gcc",
    "mcf",
    "crafty",
    "parser",
    "perlbmk",
    "gap",
    "vortex",
    "bzip2",
    "twolf",
)

#: Extended scenario families beyond the paper's suite (see
#: :data:`repro.workloads.traits.EXTENDED_TRAITS`).
EXTENDED_BENCHMARKS: tuple[str, ...] = tuple(EXTENDED_TRAITS)

#: Every benchmark the suite registry knows about.
ALL_BENCHMARKS: tuple[str, ...] = SPECINT_BENCHMARKS + EXTENDED_BENCHMARKS


@lru_cache(maxsize=None)
def _cached_benchmark(name: str) -> Program:
    traits = ALL_TRAITS[name]
    return generate_program(traits)


def build_benchmark(name: str, fresh: bool = False) -> Program:
    """Build (or return a cached copy of) the synthetic benchmark ``name``.

    Args:
        name: one of :data:`SPECINT_BENCHMARKS`.
        fresh: when True a brand-new program object is generated instead of
            the cached one.  Use this when the caller will mutate the
            program (e.g. instrument it in place); the normal compile path
            copies before instrumenting, so the cache is safe to share.
    """
    if name not in ALL_TRAITS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(ALL_BENCHMARKS)}"
        )
    if fresh:
        return generate_program(ALL_TRAITS[name])
    return _cached_benchmark(name)


def build_suite(names: tuple[str, ...] | list[str] | None = None) -> dict[str, Program]:
    """Build every benchmark in ``names`` (default: the full suite)."""
    selected = tuple(names) if names is not None else SPECINT_BENCHMARKS
    return {name: build_benchmark(name) for name in selected}
