"""The native replay kernel: the per-cycle loop compiled to C.

``NativeEngine`` executes the same machine as the scalar reference —
commit, writeback, issue, dispatch, fetch, event-driven sampling — but
as a single C extension (``_native.c``), built lazily on first use by
:class:`~repro.uarch.engine.build.ExtensionCompiler` and loaded into the
process.  The C loop owns every per-cycle structure (issue queue, ROB,
rename, caches, predictor) in flat arrays; Python keeps only the pieces
that are inherently Python-facing:

* **Trace windows** stream in through a callback: the kernel lowers each
  :class:`~repro.uarch.trace.DecodedTrace` window into C arrays as fetch
  crosses a window boundary, so the windowed replay's decode-memory
  bound (and ``max_resident_windows`` semantics) are preserved exactly.
* **Policies stay Python.**  The kernel calls back on exactly the events
  the scalar core exposes — ``on_hint`` at dispatch, ``on_cycle_end``
  (only for policies that override it), ``on_measurement_start`` at the
  warm-up flip — against a :class:`NativeCore` facade carrying real
  :class:`~repro.uarch.issue_queue.BankedIssueQueue` /
  :class:`~repro.uarch.rob.ReorderBuffer` views, so policy code (and its
  clamping semantics) runs unmodified; the resulting limits flow back
  into the C loop through the callback's return value.

Bit-identity is the contract, not a goal: the equivalence suite
(``tests/test_engines.py``) asserts byte-identical statistics against
the scalar kernel for all six techniques at every window size including
1, across warm-up boundaries and ``simulate_span`` freezes.  Because of
that, the engine never enters cache fingerprints — a grid cached under
``scalar`` is a pure hit under ``native``.

The C toolchain is optional (the ``native`` install extra): this module
imports with or without it, and selecting the native engine on a host
without a compiler raises :class:`NativeUnavailableError` naming the
extra — never a raw build error from callsite depth.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.uarch.config import ProcessorConfig
from repro.uarch.engine.base import (
    EngineUnavailableError,
    ReplayEngine,
    register_engine,
)
from repro.uarch.engine.build import ExtensionCompiler
from repro.uarch.issue_queue import BankedIssueQueue
from repro.uarch.rob import ReorderBuffer
from repro.uarch.functional_units import FU_ORDER
from repro.uarch.stats import SimulationStats
from repro.uarch.trace import (
    F_BRANCH,
    F_CALL,
    F_HINT,
    F_LOAD,
    F_NOP,
    F_RET,
    F_STORE,
    DecodedTrace,
    TraceWindowStream,
)


class NativeUnavailableError(EngineUnavailableError):
    """The native kernel was selected but cannot be built on this host."""


#: The compiler harness over this kernel's single translation unit.  A
#: second compiled backend is a one-file add: its module instantiates
#: another ExtensionCompiler over its own source and registers an engine.
_COMPILER = ExtensionCompiler(
    os.path.join(os.path.dirname(__file__), "_native.c"), "_native_replay"
)

_MODULE = None


def native_available() -> bool:
    """True when the native kernel can be built (or already was) here."""
    return _COMPILER.unavailable_reason() is None


def native_unavailable_reason() -> Optional[str]:
    """Why the native kernel cannot run here, or ``None`` when it can."""
    return _COMPILER.unavailable_reason()


def load_native_module():
    """Build (first use only) and return the ``_native_replay`` module.

    Raises :class:`NativeUnavailableError` naming the ``native`` extra
    for *any* failure — missing compiler, missing ``Python.h``, or a
    compile error — so a worker that probes the kernel can degrade on
    one exception type.
    """
    global _MODULE
    if _MODULE is None:
        reason = _COMPILER.unavailable_reason()
        if reason is None:
            try:
                _MODULE = _COMPILER.load()
            except (RuntimeError, OSError, ImportError) as error:
                reason = str(error)
        if _MODULE is None:
            raise NativeUnavailableError(
                "the native replay engine needs a C toolchain (a C compiler "
                "and the Python development headers) to build its kernel: "
                f"{reason}; install the 'native' extra (pip install "
                "repro-hpca2005[native]) on a host with cc/gcc available, "
                "or select the scalar engine"
            )
    return _MODULE


class NativeCore:
    """One native-kernel replay over a trace stream.

    The facade policies see: ``cycle``, ``_committed_total``, ``config``,
    ``iq`` and ``rob`` mirror the scalar core's attributes (the two views
    are real structures, so policy-side clamping — ``set_global_limit``'s
    bank floor, ``set_limit``'s minimum of 1 — behaves identically); the
    per-cycle state itself lives in the C machine for the duration of
    :meth:`run`.
    """

    def __init__(
        self,
        trace,
        config: Optional[ProcessorConfig] = None,
        policy=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
        measure_instructions: Optional[int] = None,
    ):
        # Fail at construction, not mid-run: a missing toolchain surfaces
        # as the named error before any simulation state exists.
        self._module = load_native_module()
        self.config = config or ProcessorConfig.hpca2005()
        self.config.validate()
        if policy is None:
            from repro.techniques.fixed import BaselinePolicy

            policy = BaselinePolicy()
        self.policy = policy
        self.warmup_instructions = warmup_instructions
        self.max_cycles = max_cycles
        self.measure_instructions = measure_instructions

        if isinstance(trace, TraceWindowStream):
            stream = trace
        elif isinstance(trace, DecodedTrace):
            stream = TraceWindowStream.single(trace)
        else:
            stream = TraceWindowStream.single(
                DecodedTrace.from_dynamic_stream(trace)
            )
        self._stream = stream

        cfg = self.config
        # Policy-facing views (see class docstring).
        self.iq = BankedIssueQueue(cfg.iq_entries, cfg.iq_bank_size)
        self.rob = ReorderBuffer(cfg.rob_entries)
        self.cycle = 0
        self._committed_total = 0
        self.max_resident_windows = 1
        self.stats = SimulationStats(
            iq_banks_total=cfg.iq_banks, rf_banks_total=cfg.int_regfile_banks
        )

        # Same zero-length-span semantics as the scalar core.
        self._initially_frozen = (
            measure_instructions is not None
            and measure_instructions <= 0
            and warmup_instructions == 0
        )

        from repro.techniques.base import ResizingPolicy

        self._has_cycle_end = (
            type(policy).on_cycle_end is not ResizingPolicy.on_cycle_end
        )

        self.policy.on_simulation_start(self)
        self._finished = False

    # ------------------------------------------------------------------
    def _hook(self, kind, arg, cycle, committed, iq_tail, iq_new_head):
        """Policy dispatch from the C loop (see ``call_hook`` in _native.c).

        Synchronises the facade, runs the policy event, and returns the
        four limits the C loop needs back, ``None`` encoded as -1.
        """
        self.cycle = cycle
        self._committed_total = committed
        iq = self.iq
        iq.tail = iq_tail
        iq.new_head = iq_new_head
        if kind == 0:
            self.policy.on_hint(self, arg)
        elif kind == 1:
            self.policy.on_cycle_end(self)
        else:
            self.policy.on_measurement_start(self, arg)
        max_new_range = iq.max_new_range
        global_limit = iq.global_limit
        rob_limit = self.rob.limit
        return (
            iq.new_head,
            -1 if max_new_range is None else max_new_range,
            -1 if global_limit is None else global_limit,
            -1 if rob_limit is None else rob_limit,
        )

    def _params(self, first_window: DecodedTrace) -> dict:
        cfg = self.config
        branch = cfg.branch
        iq = self.iq
        return {
            "fetch_width": cfg.fetch_width,
            "dispatch_width": cfg.dispatch_width,
            "issue_width": cfg.issue_width,
            "commit_width": cfg.commit_width,
            "fetch_queue_entries": cfg.fetch_queue_entries,
            "decode_latency": cfg.decode_latency,
            "branch_mispredict_penalty": cfg.branch_mispredict_penalty,
            "rob_entries": cfg.rob_entries,
            "iq_entries": cfg.iq_entries,
            "iq_bank_size": cfg.iq_bank_size,
            "int_phys_regs": cfg.int_phys_regs,
            "fp_phys_regs": cfg.fp_phys_regs,
            "regfile_bank_size": cfg.regfile_bank_size,
            "num_int_arch": 32,
            "num_fp_arch": 16,
            "l1i_sets": cfg.l1i.num_sets,
            "l1i_assoc": cfg.l1i.assoc,
            "l1i_line": cfg.l1i.line_bytes,
            "l1i_hit": cfg.l1i.hit_latency,
            "l1d_sets": cfg.l1d.num_sets,
            "l1d_assoc": cfg.l1d.assoc,
            "l1d_line": cfg.l1d.line_bytes,
            "l1d_hit": cfg.l1d.hit_latency,
            "l2_sets": cfg.l2.num_sets,
            "l2_assoc": cfg.l2.assoc,
            "l2_line": cfg.l2.line_bytes,
            "l2_hit": cfg.l2.hit_latency,
            "l2_miss_latency": cfg.l2_miss_latency,
            "gshare_entries": branch.gshare_entries,
            "bimodal_entries": branch.bimodal_entries,
            "selector_entries": branch.selector_entries,
            "history_bits": branch.history_bits,
            "btb_sets": max(1, branch.btb_entries // branch.btb_assoc),
            "btb_assoc": branch.btb_assoc,
            "ras_entries": branch.ras_entries,
            "f_hint": F_HINT,
            "f_nop": F_NOP,
            "f_branch": F_BRANCH,
            "f_call": F_CALL,
            "f_ret": F_RET,
            "f_load": F_LOAD,
            "f_store": F_STORE,
            "uses_hints": int(self.policy.uses_hints),
            "iq_bank_gating": int(self.policy.iq_bank_gating),
            "rf_bank_gating": int(self.policy.rf_bank_gating),
            "has_cycle_end": int(self._has_cycle_end),
            "warmup_instructions": self.warmup_instructions,
            "max_cycles": -1 if self.max_cycles is None else self.max_cycles,
            "has_measure": int(self.measure_instructions is not None),
            "measure_limit": (
                0 if self.measure_instructions is None else self.measure_instructions
            ),
            "initially_frozen": int(self._initially_frozen),
            "global_limit": -1 if iq.global_limit is None else iq.global_limit,
            "max_new_range": -1 if iq.max_new_range is None else iq.max_new_range,
            "rob_limit": -1 if self.rob.limit is None else self.rob.limit,
            "new_head": iq.new_head,
            "fu_limits": [cfg.fu_counts.get(fu, 0) for fu in FU_ORDER],
            "first_window": first_window,
            "next_window": self._next_window,
            "hook": self._hook,
        }

    def _next_window(self) -> Optional[DecodedTrace]:
        return self._stream.next_window()

    def run(self) -> SimulationStats:
        """Replay the stream in the compiled loop; return the statistics."""
        if self._finished:
            return self.stats
        first = self._stream.next_window()
        if first is None:
            first = DecodedTrace()
        result = self._module.run(self._params(first))
        stats = self.stats
        for name, value in result.items():
            if name == "max_resident_windows":
                self.max_resident_windows = value
            elif name != "structural_stalls":
                setattr(stats, name, value)
        self._finished = True
        return stats


@register_engine
class NativeEngine(ReplayEngine):
    """The compiled C kernel (``engine="native"``, the ``native`` extra)."""

    name = "native"

    def unavailable_reason(self) -> Optional[str]:
        return native_unavailable_reason()

    def build_core(
        self,
        trace,
        *,
        config=None,
        policy=None,
        warmup_instructions: int = 0,
        max_cycles: Optional[int] = None,
        measure_instructions: Optional[int] = None,
    ) -> NativeCore:
        return NativeCore(
            trace,
            config=config,
            policy=policy,
            warmup_instructions=warmup_instructions,
            max_cycles=max_cycles,
            measure_instructions=measure_instructions,
        )
