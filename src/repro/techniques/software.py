"""The paper's technique: software-directed issue-queue resizing.

The compiler (see :mod:`repro.core`) annotates the program with the number
of issue-queue entries each region needs.  At dispatch the processor reads
the hint (from a stripped special NOOP or an instruction tag), points
``new_head`` at the tail and sets ``max_new_range``; dispatch then stops
whenever the current region already occupies its allotted entries.

The NOOP, Extension and Improved variants of the paper use this same
policy; they differ only in how the program was instrumented (NOOP
insertion versus tagging, and whether the inter-procedural refinement was
applied), which is a property of the compiled program, not of the hardware
policy.
"""

from __future__ import annotations

from repro.techniques.base import ResizingPolicy


class SoftwareDirectedPolicy(ResizingPolicy):
    """Honour compiler hints through the ``new_head``/``max_new_range`` mechanism."""

    name = "software"
    wakeup_gating = "nonempty"
    iq_bank_gating = True
    rf_bank_gating = True
    uses_hints = True

    def __init__(self, variant: str = "noop", min_region_entries: int = 2):
        """Create the policy.

        Args:
            variant: label recorded in reports ("noop", "extension" or
                "improved"); the hardware behaviour is identical.
            min_region_entries: lower clamp applied to incoming hints
                (guards against a malformed zero-sized request).
        """
        self.variant = variant
        self.min_region_entries = min_region_entries
        self.name = f"software-{variant}"
        self.hints_applied = 0
        self.last_hint_value = 0

    def on_hint(self, core, value: int) -> None:
        entries = max(self.min_region_entries, int(value))
        core.iq.start_new_region(entries)
        self.hints_applied += 1
        self.last_hint_value = entries
