"""The reprolint framework: rules, findings, suppressions, file walking.

Every correctness property this reproduction stands on — bit-identical
replay engines, crash-safe atomic-rename queue transitions, engine-free
cache fingerprints — is prose in ROADMAP.md and a handful of runtime
assertions in the test suite.  This module turns those contracts into
statically checked invariants: each :class:`Rule` walks a file's AST and
emits :class:`Finding` objects with exact source locations, and the
whole pass gates tier-1 (``tests/test_analysis.py``) so a violation
fails the build instead of shipping silently until a test happens to
exercise it.

Vocabulary:

* **Rule** — one invariant, identified by a stable kebab-case
  ``rule_id`` and registered via :func:`register_rule`.  A rule decides
  which files it applies to from the file's path (e.g. determinism only
  inside ``repro/uarch/``), so fixture files in tests opt into a rule
  simply by living under a matching relative path.
* **Finding** — one violation: rule id, path, 1-based line, 0-based
  column, message.  Formats as ``path:line:col: [rule-id] message``.
* **Suppression** — the comment pragma ``# repro: allow[rule-id]``,
  placed either on the offending line or alone on the line directly
  above it, acknowledges a finding.  Append a justification after the
  bracket (``# repro: allow[exception-hygiene] pickle may raise
  anything``); suppressed findings are counted and reportable, never
  silently dropped.

The public entry points are :func:`lint_source` (one string — unit
tests), :func:`lint_file` and :func:`lint_paths` (files/trees — the CLI
and the tier-1 gate).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

#: ``# repro: allow[rule-id]`` with an optional trailing justification.
#: Several ids may share one pragma, comma-separated.
PRAGMA_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\- ]+)\]")

#: Rule id reserved for files the parser itself rejects.
SYNTAX_RULE_ID = "syntax-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"


class Rule:
    """Base class for one statically checked invariant.

    Subclasses set :attr:`rule_id` (stable, kebab-case — it is the
    suppression key and the CLI ``--select`` token) and
    :attr:`contract` (the one-line statement of the repo contract the
    rule encodes, shown by ``--list-rules``), and implement
    :meth:`check`.  Override :meth:`applies_to` to scope the rule to a
    path subset; it receives the file's POSIX-style path string.
    """

    rule_id: str = ""
    contract: str = ""

    def applies_to(self, posix_path: str) -> bool:
        return True

    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, path: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s source location."""
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Ids must be unique and non-empty — the suppression syntax and the
    CLI both address rules by id, so a collision would make one of the
    two rules unreachable.
    """
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rules(select: Optional[Sequence[str]] = None) -> list[Rule]:
    """Rules to run: all of them, or the ``select`` subset by id."""
    if select is None:
        return all_rules()
    unknown = sorted(set(select) - set(_REGISTRY))
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown rule id(s) {unknown}; known: {known}")
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(select))]


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids allowed on them.

    A pragma sharing a line with code covers that line; a pragma on a
    comment-only line covers the next line (the conventional place when
    the offending line has no room).  Ids are not validated here — an
    unknown id simply never matches a finding, so a typo'd pragma
    suppresses nothing (and the finding it failed to cover surfaces).
    """
    allowed: dict[int, set[str]] = {}
    for index, text in enumerate(source.splitlines(), start=1):
        match = PRAGMA_PATTERN.search(text)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = index + 1 if text.lstrip().startswith("#") else index
        allowed.setdefault(target, set()).update(ids)
    return allowed


@dataclass
class LintResult:
    """Aggregated outcome of one lint pass."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files += other.files

    def by_rule(self) -> dict[str, int]:
        """Finding counts per rule id (for the advisory summary)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


def lint_source(
    source: str, path: str | Path, rules: Optional[Sequence[Rule]] = None
) -> LintResult:
    """Lint one source string as though it lived at ``path``.

    ``path`` drives rule scoping (see :meth:`Rule.applies_to`), so unit
    tests exercise a path-scoped rule by naming their fixture
    accordingly (``tmp/repro/uarch/mod.py``).  Unparseable source yields
    a single :data:`SYNTAX_RULE_ID` finding rather than an exception —
    the advisory trees may hold scratch files.
    """
    posix = Path(path).as_posix()
    result = LintResult(files=1)
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as error:
        result.findings.append(
            Finding(
                rule_id=SYNTAX_RULE_ID,
                path=posix,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
            )
        )
        return result
    allowed = parse_suppressions(source)
    for rule in all_rules() if rules is None else rules:
        if not rule.applies_to(posix):
            continue
        for finding in rule.check(tree, posix):
            if finding.rule_id in allowed.get(finding.line, ()):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result


def lint_file(path: str | Path, rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint one file from disk; undecodable bytes read as a syntax finding."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        result = LintResult(files=1)
        result.findings.append(
            Finding(
                rule_id=SYNTAX_RULE_ID,
                path=path.as_posix(),
                line=1,
                col=0,
                message=f"file cannot be read as UTF-8 source: {error}",
            )
        )
        return result
    return lint_source(source, path, rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` in sorted order.

    Hidden directories (``.git``, the caches' dot-prefixed state) and
    ``__pycache__`` are skipped.  A path that is itself a file is
    yielded as-is, so the CLI accepts files and trees alike.
    """
    for entry in paths:
        entry = Path(entry)
        if entry.is_file():
            yield entry
            continue
        for path in sorted(entry.rglob("*.py")):
            relative = path.relative_to(entry)
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in relative.parts[:-1]
            ):
                continue
            if path.name.startswith("."):
                continue
            yield path


def lint_paths(
    paths: Iterable[str | Path], rules: Optional[Sequence[Rule]] = None
) -> LintResult:
    """Lint every Python file under ``paths``; the main entry point."""
    result = LintResult()
    for path in iter_python_files(paths):
        result.extend(lint_file(path, rules))
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result
