"""Control-flow graph construction.

Control flow in the IR is structural: a block's successors are determined by
its terminating instruction (branch target plus fall-through, unconditional
jump target, return/halt with no successors) or, with no terminator, the
next block in layout order.  Calls transfer control to another procedure and
return, so for intra-procedural analysis a call behaves like a fall-through
edge; DAG-region formation (see :mod:`repro.cfg.dag_regions`) treats the
call as a region boundary instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa.program import BasicBlock, Procedure


@dataclass
class ControlFlowGraph:
    """A per-procedure control-flow graph over basic-block labels.

    Attributes:
        procedure: the procedure the graph describes.
        successors: mapping from block label to successor labels, in
            (taken-target, fall-through) order where applicable.
        predecessors: reverse adjacency.
    """

    procedure: Procedure
    successors: dict[str, list[str]] = field(default_factory=dict)
    predecessors: dict[str, list[str]] = field(default_factory=dict)

    @property
    def entry(self) -> str:
        """Label of the procedure's entry block."""
        return self.procedure.entry_block.label

    @property
    def labels(self) -> list[str]:
        """All block labels in layout order."""
        return [block.label for block in self.procedure.blocks]

    def block(self, label: str) -> BasicBlock:
        """Return the basic block named ``label``."""
        found = self.procedure.find_block(label)
        if found is None:
            raise KeyError(f"no block {label!r} in procedure {self.procedure.name}")
        return found

    def succ(self, label: str) -> list[str]:
        """Successor labels of ``label``."""
        return self.successors.get(label, [])

    def pred(self, label: str) -> list[str]:
        """Predecessor labels of ``label``."""
        return self.predecessors.get(label, [])

    def reverse_postorder(self) -> list[str]:
        """Blocks reachable from the entry, in reverse post-order."""
        visited: set[str] = set()
        postorder: list[str] = []

        def visit(label: str) -> None:
            stack = [(label, iter(self.succ(label)))]
            visited.add(label)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for nxt in successors:
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, iter(self.succ(nxt))))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(current)
                    stack.pop()

        visit(self.entry)
        return list(reversed(postorder))

    def reachable(self) -> set[str]:
        """Labels of blocks reachable from the entry."""
        return set(self.reverse_postorder())

    def __iter__(self) -> Iterator[str]:
        return iter(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self.successors


def _block_successors(procedure: Procedure, index: int) -> list[str]:
    """Compute successor labels for the block at layout position ``index``."""
    block = procedure.blocks[index]
    next_label: Optional[str] = None
    if index + 1 < len(procedure.blocks):
        next_label = procedure.blocks[index + 1].label

    term = block.terminator
    successors: list[str] = []
    if term is None:
        if next_label is not None:
            successors.append(next_label)
        return successors

    if term.is_branch:
        successors.append(term.target)  # taken path
        if next_label is not None:
            successors.append(next_label)  # fall-through path
    elif term.opcode.name == "JUMP":
        successors.append(term.target)
    elif term.is_call:
        # Control returns to the instruction after the call.
        if next_label is not None:
            successors.append(next_label)
    # RET and HALT have no intra-procedural successors.
    return successors


def build_cfg(procedure: Procedure) -> ControlFlowGraph:
    """Build the control-flow graph of ``procedure``."""
    cfg = ControlFlowGraph(procedure=procedure)
    for label in (block.label for block in procedure.blocks):
        cfg.successors[label] = []
        cfg.predecessors[label] = []
    for index, block in enumerate(procedure.blocks):
        for succ_label in _block_successors(procedure, index):
            cfg.successors[block.label].append(succ_label)
            cfg.predecessors[succ_label].append(block.label)
    return cfg
