"""chaoskit: deterministic fault injection and the unified retry policy.

The queue/cache substrate's crash-safety claims — atomic rename leases,
TTL re-lease, idempotent completions, the orphaned-``.tmp-*`` gc
contract — are only as strong as the faults they have been exercised
against.  This module makes those faults *injectable, seeded and
deterministic*, so the chaos soak gate (``tests/test_faults.py``) can
replay the same failure schedule on every run and assert that results
stay bit-identical to a fault-free run.

Three pieces:

* :class:`FaultPlan` — an immutable, serialisable description of a
  fault schedule: a seed, a base firing rate, a per-(site, key) fire
  budget, an optional site whitelist, a sleep scale (chaos runs
  compress retry backoff to keep soaks fast) and an explicit
  ``worker_death`` opt-in (``os._exit`` faults, for real worker
  subprocesses only).  Plans round-trip through a compact
  ``key=value,...`` spec or JSON via :meth:`FaultPlan.from_spec` /
  :meth:`FaultPlan.to_spec`, which is also the ``REPRO_FAULT_PLAN``
  environment encoding worker subprocesses inherit.
* :class:`FaultInjector` — the deterministic engine.  Every decision is
  a pure function of ``(seed, site, key, occurrence_index)`` via
  SHA-256, so a given plan fires the same faults at the same call
  sequence on every run, and the per-(site, key) fire budget guarantees
  every operation eventually succeeds (liveness under chaos).
* :class:`RetryPolicy` — the single transient-error handler for the
  harness layer: bounded attempts, exponential backoff, seeded jitter.
  All backoff (and polling) sleeps in the package go through
  :func:`sleep` below — the ``retry-discipline`` reprolint rule flags
  ``time.sleep`` anywhere else under ``src/`` so waiting stays
  centralised, seedable and chaos-scalable.

Hook points and the no-op contract
----------------------------------

The hooks live at the filesystem touchpoints of
:func:`repro.atomicio.publish_atomically` (EIO/ENOSPC on write, torn
temp files, crash before/after ``os.replace``), ``WorkQueue`` (delayed
directory visibility, heartbeat stalls, mid-job worker death) and
``ResultCache`` (read errors).  Every hook is a module-level function
that returns immediately while no injector is installed — one ``is
None`` test, no allocation — so the production hot path pays nothing.
:mod:`repro.atomicio` cannot import this module (it sits below the
harness layer), so :func:`install` pushes the hook into it through
``repro.atomicio._fault_hook``.

Fault hooks are **forbidden under** ``repro/uarch/`` (enforced by the
``retry-discipline`` rule): injection must never perturb the
bit-identical timing kernels.  ``TraceCache`` stores still come under
chaos because they publish through :mod:`repro.atomicio`; trace *reads*
are exercised by hand-corrupting files in the quarantine tests instead.

Activation: ``REPRO_FAULT_PLAN=<spec>`` in the environment (workers
call :func:`install_from_env` at startup and inherit the driver's
plan), ``pytest --faults <spec|preset>`` for a whole test session, or
:func:`installed` as a context manager in tests.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional, Sequence, TypeVar

#: Environment variable carrying the active plan's spec; worker
#: subprocesses inherit it from the driver (``spawn_local_workers``
#: copies the environment) and self-install at startup.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code of an injected worker death, distinct from real failures
#: so tests can tell "chaoskit killed it" from "it crashed".
WORKER_DEATH_EXIT_CODE = 47

#: The fault sites the injector knows.  Site ids are stable — plans
#: whitelist by these names and the fault-model doc catalogues them.
FAULT_SITES = (
    "atomicio.write",                 # EIO/ENOSPC before any byte lands
    "atomicio.torn",                  # temp file truncated mid-write, writer dies
    "atomicio.crash-before-replace",  # writer dies with a full temp file
    "atomicio.crash-after-replace",   # writer dies after publishing
    "cache.load",                     # read error on a result-cache cell
    "queue.listing",                  # directory entry temporarily invisible
    "queue.heartbeat",                # a heartbeat silently misses its beat
    "queue.worker-death",             # os._exit mid-job (plan opt-in only)
)

#: Named plans for ``pytest --faults light`` style invocations.  Both
#: keep ``fire_limit=1`` so the liveness inequality against
#: :data:`DEFAULT_RETRY_POLICY` holds (see its docstring); ``heavy``
#: turns the dial on density, not depth.
FAULT_PRESETS = {
    "light": "seed=1,rate=0.05,fire_limit=1,sleep_scale=0.1",
    "heavy": "seed=1,rate=0.5,fire_limit=1,sleep_scale=0.02",
}


class InjectedFaultError(OSError):
    """A transient filesystem fault injected by chaoskit.

    An ``OSError`` subclass so every handler and :class:`RetryPolicy`
    site that tolerates real EIO/ENOSPC tolerates the injected kind the
    same way — injection must never need its own error-handling paths.
    """


class InjectedCrashError(InjectedFaultError):
    """An injected *writer death*: the temp file must be left behind.

    ``preserve_temp`` is the contract with
    :func:`repro.atomicio.publish_atomically`: its failure cleanup skips
    the temp-file unlink for exceptions carrying this flag, simulating a
    process killed between ``mkstemp`` and ``os.replace`` — exactly the
    debris the gc sweeper's orphan contract exists for.
    """

    preserve_temp = True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable fault schedule.

    Attributes:
        seed: the determinism root; two runs of one plan fire
            identically for identical call sequences.
        rate: base probability in [0, 1] that an eligible site call
            fires (decided deterministically from the seed, never from
            a live RNG).
        fire_limit: faults per (site, key) pair before that pair goes
            permanently quiet — the liveness bound that keeps every
            retried operation terminating.  One publication traverses
            all four ``atomicio.*`` sites with a shared key, so a
            retried writer can see up to ``4 * fire_limit`` consecutive
            failures; keep that product below
            ``DEFAULT_RETRY_POLICY.attempts`` (and ``fire_limit`` below
            job ``max_attempts``) or chaos runs may legitimately fail
            publications and poison jobs.
        sites: site-id whitelist; empty means every site is eligible.
        sleep_scale: multiplier applied by :func:`sleep` to every
            backoff/poll sleep — soaks run with a near-zero scale so
            injected retries don't stretch wall-clock.
        worker_death: allow ``queue.worker-death`` to ``os._exit`` the
            process.  Off by default and never enabled implicitly: a
            driver running assist jobs in-process must not kill itself.
    """

    seed: int = 0
    rate: float = 0.2
    fire_limit: int = 1
    sites: tuple[str, ...] = ()
    sleep_scale: float = 1.0
    worker_death: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be a probability in [0, 1]")
        if self.fire_limit < 0:
            raise ValueError("fire_limit must be a non-negative integer")
        if self.sleep_scale < 0:
            raise ValueError("sleep_scale must be non-negative")
        unknown = sorted(set(self.sites) - set(FAULT_SITES))
        if unknown:
            known = ", ".join(FAULT_SITES)
            raise ValueError(f"unknown fault site(s) {unknown}; known: {known}")

    # ------------------------------------------------------------------
    # Spec round-trip (CLI flag, environment variable)
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a preset name, a JSON object, or ``key=value,...``.

        The compact form writes sites as a ``|``-separated list::

            seed=3,rate=0.25,fire_limit=2,sites=queue.listing|atomicio.write
        """
        text = spec.strip()
        if not text:
            raise ValueError("empty fault plan spec")
        if text in FAULT_PRESETS:
            text = FAULT_PRESETS[text]
        if text.startswith("{"):
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("fault plan JSON must be an object")
            if "sites" in payload:
                payload["sites"] = tuple(payload["sites"])
            return cls(**payload)
        payload = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"malformed fault plan fragment {part!r}")
            key, value = part.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key in ("seed", "fire_limit"):
                payload[key] = int(value)
            elif key in ("rate", "sleep_scale"):
                payload[key] = float(value)
            elif key == "worker_death":
                payload[key] = value.lower() in ("1", "true", "yes", "on")
            elif key == "sites":
                payload[key] = tuple(s for s in value.split("|") if s)
            else:
                raise ValueError(f"unknown fault plan field {key!r}")
        return cls(**payload)

    def to_spec(self) -> str:
        """The compact ``key=value,...`` encoding (``REPRO_FAULT_PLAN``)."""
        parts = [
            f"seed={self.seed}",
            f"rate={self.rate}",
            f"fire_limit={self.fire_limit}",
            f"sleep_scale={self.sleep_scale}",
        ]
        if self.sites:
            parts.append("sites=" + "|".join(self.sites))
        if self.worker_death:
            parts.append("worker_death=true")
        return ",".join(parts)


class FaultInjector:
    """Deterministic fault engine for one :class:`FaultPlan`.

    Decisions are pure: the ``n``-th call at ``(site, key)`` fires iff
    the plan covers the site, fewer than ``fire_limit`` faults have
    fired there, and ``SHA-256(seed|site|key|n)`` falls below the rate
    threshold.  No live RNG, no clock — a plan's schedule is a function
    of the call sequence alone, which is what lets the soak gate demand
    bit-identical results.  A lock guards the occurrence counters (the
    heartbeat thread shares the injector with the worker loop); the
    counters are the only mutable state.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.fired: dict[tuple[str, str], int] = {}
        self._calls: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()

    def decide(self, site: str, key: str = "") -> bool:
        """Deterministically decide whether this call faults."""
        plan = self.plan
        if plan.rate <= 0.0 or plan.fire_limit == 0:
            return False
        if plan.sites and site not in plan.sites:
            return False
        slot = (site, key)
        with self._lock:
            if self.fired.get(slot, 0) >= plan.fire_limit:
                return False
            index = self._calls.get(slot, 0)
            self._calls[slot] = index + 1
            token = f"{plan.seed}|{site}|{key}|{index}".encode("utf-8")
            digest = hashlib.sha256(token).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            if draw >= plan.rate:
                return False
            self.fired[slot] = self.fired.get(slot, 0) + 1
            return True

    def fired_total(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    # ------------------------------------------------------------------
    # The hook behaviours
    # ------------------------------------------------------------------
    def hook(self, site: str, key: str, temp_path: Optional[str] = None) -> None:
        """The :mod:`repro.atomicio` publication hook; may raise.

        ``atomicio.write`` raises a plain transient error (cleanup
        removes the temp file, callers retry).  The three crash sites
        raise :class:`InjectedCrashError` so the temp file survives as
        the orphan debris real writer deaths leave; ``atomicio.torn``
        additionally truncates the temp file first — the canonical torn
        write the rename discipline keeps readers from ever observing.
        """
        if not self.decide(site, key):
            return
        if site == "atomicio.write":
            code = errno.ENOSPC if len(key) % 2 == 0 else errno.EIO
            raise InjectedFaultError(code, os.strerror(code), key)
        if site == "atomicio.torn" and temp_path is not None:
            try:
                size = os.path.getsize(temp_path)
                os.truncate(temp_path, size // 2)
            except OSError:  # pragma: no cover - temp raced away
                pass
            raise InjectedCrashError(
                errno.EIO, "injected torn write (writer died mid-write)", key
            )
        raise InjectedCrashError(
            errno.EIO, f"injected writer death at {site}", key
        )

    def filter_names(self, site: str, scope: str, names: list[str]) -> list[str]:
        """Hide directory entries (NFS-style delayed visibility).

        Each hidden (entry, occurrence) consumes one fire from the
        entry's budget, so every file becomes visible after at most
        ``fire_limit`` listings — stale listings delay progress, never
        prevent it.
        """
        return [
            name for name in names if not self.decide(site, f"{scope}/{name}")
        ]

    def stall(self, site: str, key: str) -> bool:
        """True when this heartbeat should silently miss its beat."""
        return self.decide(site, key)

    def maybe_die(self, key: str) -> None:
        """``os._exit`` the process mid-job when the plan allows death.

        Only fires when the plan explicitly opted in — a driver serving
        assist jobs in-process shares the address space with the test
        run and must never be collateral.
        """
        if self.plan.worker_death and self.decide("queue.worker-death", key):
            os._exit(WORKER_DEATH_EXIT_CODE)


# ----------------------------------------------------------------------
# Module-level installation and the zero-overhead hook functions
# ----------------------------------------------------------------------
_INJECTOR: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install (or with None, remove) the process-wide injector.

    Also pushes the publication hook into :mod:`repro.atomicio`, which
    sits below the harness layer and therefore cannot import this
    module.  Returns the previously installed injector.
    """
    global _INJECTOR
    import repro.atomicio as atomicio

    previous = _INJECTOR
    _INJECTOR = injector
    atomicio._fault_hook = injector.hook if injector is not None else None
    return previous


def active_injector() -> Optional[FaultInjector]:
    """The installed injector, or None (the production default)."""
    return _INJECTOR


def install_from_env() -> Optional[FaultInjector]:
    """Install a plan from ``REPRO_FAULT_PLAN``; None when unset.

    Worker entry points call this at startup so a driver's chaos plan
    follows its spawned fleet.
    """
    spec = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not spec:
        return None
    injector = FaultInjector(FaultPlan.from_spec(spec))
    install(injector)
    return injector


class installed:
    """Context manager: run a block under ``plan``, restore on exit."""

    def __init__(self, plan: Optional[FaultPlan]):
        self.injector = FaultInjector(plan) if plan is not None else None
        self._previous: Optional[FaultInjector] = None

    def __enter__(self) -> Optional[FaultInjector]:
        self._previous = install(self.injector)
        return self.injector

    def __exit__(self, *exc_info) -> None:
        install(self._previous)


def maybe_filter_names(site: str, scope: str, names: list[str]) -> list[str]:
    """Directory-listing hook: a no-op unless an injector is installed."""
    if _INJECTOR is None:
        return names
    return _INJECTOR.filter_names(site, scope, names)


def maybe_stall(site: str, key: str = "") -> bool:
    """Heartbeat-stall hook: False (never stall) in production."""
    if _INJECTOR is None:
        return False
    return _INJECTOR.stall(site, key)


def maybe_fire(site: str, key: str = "") -> None:
    """Raise an injected transient error at ``site``; no-op by default."""
    if _INJECTOR is None:
        return
    if _INJECTOR.decide(site, key):
        raise InjectedFaultError(
            errno.EIO, f"injected read fault at {site}", key
        )


def maybe_die(key: str = "") -> None:
    """Worker-death hook: a no-op unless a death-enabled plan is live."""
    if _INJECTOR is not None:
        _INJECTOR.maybe_die(key)


def sleep(seconds: float) -> None:
    """The package's single ``time.sleep`` seam.

    Every poll and backoff wait routes through here (the
    ``retry-discipline`` reprolint rule enforces it), so waiting is
    centralised: an active chaos plan compresses it via ``sleep_scale``
    to keep fault soaks fast.  The event-driven completion core
    (:mod:`repro.harness.completion`) does not sleep at all — it blocks
    in a selector — but its wait *timeouts* pass through
    :func:`scale_timeout` below so chaos compression covers both seams.
    """
    injector = _INJECTOR
    if injector is not None:
        seconds *= injector.plan.sleep_scale
    if seconds > 0:
        time.sleep(seconds)


def scale_timeout(seconds: float) -> float:
    """Apply the active plan's ``sleep_scale`` to a wait *timeout*.

    The selector-based completion core never calls :func:`sleep` — its
    one wait is ``selector.select(timeout)``, which must stay a real
    blocking wait so socket readiness can interrupt it.  Routing the
    timeout value through here keeps that wait on the same chaos dial as
    every sleeping wait: a soak plan's ``sleep_scale`` compresses the
    event loop's idle ticks exactly like the workers' poll sleeps.
    """
    injector = _INJECTOR
    if injector is not None:
        return seconds * injector.plan.sleep_scale
    return seconds


# ----------------------------------------------------------------------
# The unified retry policy
# ----------------------------------------------------------------------
T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and seeded jitter.

    The one shape of transient-error handling in the harness layer:
    ``attempts`` tries at most, sleeping ``base_delay * 2**i`` (capped
    at ``max_delay``) between failures, each wait stretched by a
    deterministic jitter in ``[0, jitter]`` derived from ``(seed,
    key, attempt)`` — seeded like everything else in this module, so
    two processes retrying the same key desynchronise *reproducibly*
    rather than thundering in lockstep.

    ``call`` either re-raises the last error (``on_exhausted="raise"``)
    or swallows it and returns ``default`` (``on_exhausted="drop"``,
    for best-effort writers like worker stats that must never kill
    their process).
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be a positive integer")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delays(self, key: str = "") -> Iterator[float]:
        """The ``attempts - 1`` backoff waits for one retried operation."""
        for attempt in range(self.attempts - 1):
            base = min(self.max_delay, self.base_delay * (2 ** attempt))
            token = f"{self.seed}|{key}|{attempt}".encode("utf-8")
            digest = hashlib.sha256(token).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            yield base * (1.0 + self.jitter * draw)

    def call(
        self,
        operation: Callable[[], T],
        retry_on: tuple[type[BaseException], ...] = (OSError,),
        key: str = "",
        on_exhausted: str = "raise",
        default: Optional[T] = None,
    ) -> Optional[T]:
        """Run ``operation`` under this policy; see class docstring."""
        if on_exhausted not in ("raise", "drop"):
            raise ValueError("on_exhausted must be 'raise' or 'drop'")
        waits = self.delays(key)
        for attempt in range(self.attempts):
            try:
                return operation()
            except retry_on:
                if attempt + 1 >= self.attempts:
                    if on_exhausted == "drop":
                        return default
                    raise
                sleep(next(waits))
        return default  # pragma: no cover - loop always returns/raises


#: The harness-wide default for protocol/cache publications.  Six
#: attempts with sub-second backoff rides out transient ENOSPC/EIO —
#: and every ``fire_limit=1`` fault plan: one publication traverses all
#: four ``atomicio.*`` sites with a shared key, so its worst case is
#: ``4 * fire_limit`` consecutive failures, which 6 attempts beats with
#: headroom.  Keep that inequality when raising ``fire_limit``.
DEFAULT_RETRY_POLICY = RetryPolicy(attempts=6)

#: Best-effort writers (worker stats, idle gc) drop after a short
#: budget instead of raising — losing one stats file must never kill a
#: worker mid-fleet.
BEST_EFFORT_RETRY_POLICY = RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.5)
