"""Harness tests and cross-module integration tests.

The shape assertions here are the test-suite's version of the paper's
headline claims, evaluated on a two-benchmark subset with small budgets so
they run quickly; the full-suite reproduction lives in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.harness import RunConfig, SuiteRunner, TECHNIQUES, format_table
from repro.harness.experiment import make_policy
from repro.harness.figures import reproduce_all
from repro.harness.reporting import overall_processor_savings
from repro.harness.tables import table1, table2


class TestRunnerMechanics:
    def test_results_are_cached(self, tiny_runner):
        first = tiny_runner.result("gzip", "baseline")
        second = tiny_runner.result("gzip", "baseline")
        assert first is second

    def test_unknown_technique_rejected(self, tiny_runner):
        with pytest.raises(ValueError):
            make_policy("magic", tiny_runner.config)

    def test_all_techniques_run(self, tiny_runner):
        for technique in TECHNIQUES:
            result = tiny_runner.result("mcf", technique)
            assert result.stats.committed_instructions > 0
            assert result.power.iq.dynamic > 0

    def test_software_runs_use_instrumented_program(self, tiny_runner):
        result = tiny_runner.result("gzip", "noop")
        assert result.compilation is not None
        assert result.stats.hint_noops_stripped > 0
        baseline = tiny_runner.result("gzip", "baseline")
        assert baseline.compilation is None

    def test_metrics_relative_to_baseline(self, tiny_runner):
        metrics = tiny_runner.metrics("gzip", "baseline")
        assert metrics.ipc_loss_pct == pytest.approx(0.0, abs=1e-9)
        assert metrics.occupancy_reduction_pct == pytest.approx(0.0, abs=1e-9)

    def test_average_over_suite(self, tiny_runner):
        value = tiny_runner.average("noop", "ipc_loss_pct")
        per_bench = [m.ipc_loss_pct for m in tiny_runner.suite_metrics("noop")]
        assert value == pytest.approx(sum(per_bench) / len(per_bench))


class TestPaperShape:
    """The qualitative claims of the paper, on the small test configuration."""

    def test_software_reduces_occupancy(self, tiny_runner):
        assert tiny_runner.average("noop", "occupancy_reduction_pct") > 0

    def test_software_saves_more_dynamic_power_than_gating_alone(self, tiny_runner):
        ours = tiny_runner.average("noop", "iq_dynamic_saving_pct")
        nonempty = tiny_runner.average("nonempty", "iq_dynamic_saving_pct")
        assert ours > nonempty > 0

    def test_software_saves_static_power_but_nonempty_does_not(self, tiny_runner):
        assert tiny_runner.average("noop", "iq_static_saving_pct") > 0
        assert tiny_runner.average("nonempty", "iq_static_saving_pct") == pytest.approx(
            0.0, abs=1e-9
        )

    def test_register_file_savings_positive(self, tiny_runner):
        assert tiny_runner.average("noop", "rf_dynamic_saving_pct") > 0
        assert tiny_runner.average("noop", "rf_static_saving_pct") > 0

    def test_improved_loses_no_more_ipc_than_noop(self, tiny_runner):
        noop = tiny_runner.average("noop", "ipc_loss_pct")
        improved = tiny_runner.average("improved", "ipc_loss_pct")
        assert improved <= noop + 0.5

    def test_mcf_is_insensitive_to_resizing(self, tiny_runner):
        mcf = tiny_runner.metrics("mcf", "noop")
        assert mcf.ipc_loss_pct < 6.0

    def test_baseline_ipc_reasonable(self, tiny_runner):
        for benchmark in tiny_runner.config.benchmarks:
            metrics = tiny_runner.metrics(benchmark, "noop")
            assert 0.2 < metrics.baseline_ipc < 8.0


class TestFiguresAndTables:
    def test_all_figures_reproduce(self, tiny_runner):
        figures = reproduce_all(tiny_runner)
        assert set(figures) == {
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
        }
        for figure in figures.values():
            assert figure.series
            text = figure.to_text()
            assert figure.name in text
            assert "SPECINT" in text

    def test_figure6_contains_abella_bar(self, tiny_runner):
        from repro.harness.figures import figure6

        figure = figure6(tiny_runner)
        assert "abella" in figure.series["noop"]
        assert "SPECINT" in figure.series["noop"]

    def test_figure8_contains_nonempty_bar(self, tiny_runner):
        from repro.harness.figures import figure8

        figure = figure8(tiny_runner)
        assert "nonEmpty" in figure.series["dynamic"]

    def test_table1_mentions_table_values(self):
        text = table1()
        assert "80 entries" in text
        assert "128 entries" in text
        assert "112 entries" in text
        assert "2048 entries" in text

    def test_table2_rows(self, tiny_runner):
        result = table2(tiny_runner)
        names = [row.program_name for row in result.table.rows]
        assert names == list(tiny_runner.config.benchmarks)
        assert all(row.limited_seconds > 0 for row in result.table.rows)
        assert "benchmark" in result.to_text()

    def test_overall_processor_savings_positive(self, tiny_runner):
        value = overall_processor_savings(tiny_runner, technique="noop")
        assert 0 < value < 22 + 11

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "a" in text and "2.50" in text and "x" in text
