"""Pluggable replay engines for the per-cycle timing loop.

The simulator separates *what* a cycle does from *how* a kernel executes
it: :class:`~repro.uarch.engine.base.ReplayEngine` is the contract
(``run`` over a trace window stream, plus the ``run_span``
freeze-at-commit entry window sharding stitches), and three kernels
implement it —

* :class:`~repro.uarch.engine.scalar.ScalarEngine` (``"scalar"``): the
  pure-Python reference loop, behaviour frozen;
* :class:`~repro.uarch.engine.columnar.ColumnarEngine` (``"columnar"``):
  trace windows lowered into numpy structured arrays with batched
  tag-vector writeback and mask-based ready-set updates;
* :class:`~repro.uarch.engine.native.NativeEngine` (``"native"``): the
  per-cycle loop as a C extension, compiled lazily on first use by
  :mod:`repro.uarch.engine.build` and skipped cleanly on hosts without
  a toolchain (:class:`~repro.uarch.engine.native.NativeUnavailableError`).

Statistics are **bit-identical** between kernels for every technique at
every window size, so the engine choice is pure transport: it is
selectable per call (``engine=``), per process (``REPRO_REPLAY_KERNEL``)
and per run (``figure_report.py --engine``, ``pytest --engine``), and it
never participates in result-cache fingerprints.  The catalogue —
contract, measured throughput, and how to add a kernel — is
``docs/engines.md``.
"""

from repro.uarch.engine.base import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    EngineUnavailableError,
    ReplayEngine,
    available_engines,
    get_engine,
    register_engine,
    resolve_engine_name,
)
from repro.uarch.engine.scalar import OutOfOrderCore, ScalarEngine
from repro.uarch.engine.columnar import (
    ColumnarCore,
    ColumnarEngine,
    ColumnarUnavailableError,
    numpy_available,
)
from repro.uarch.engine.native import (
    NativeCore,
    NativeEngine,
    NativeUnavailableError,
    native_available,
    native_unavailable_reason,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "EngineUnavailableError",
    "ReplayEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "resolve_engine_name",
    "OutOfOrderCore",
    "ScalarEngine",
    "ColumnarCore",
    "ColumnarEngine",
    "ColumnarUnavailableError",
    "numpy_available",
    "NativeCore",
    "NativeEngine",
    "NativeUnavailableError",
    "native_available",
    "native_unavailable_reason",
]
