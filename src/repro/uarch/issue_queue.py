"""The banked, non-collapsing issue queue with compiler control hooks.

This models the paper's issue queue (section 3.1):

* a circular, **non-collapsing** buffer (issued entries leave holes; the
  head simply advances past them), as in Folegnani & González, Buyuktosunoglu
  et al. and Abella & González;
* organised in banks whose CAM and RAM arrays can be turned off together
  when the bank holds no valid entry;
* a conventional ``head``/``tail`` pair plus the paper's ``new_head``
  pointer and ``max_new_range`` register.  ``new_head`` marks the oldest
  entry of the *current program region*; dispatch stops whenever the
  distance from ``new_head`` to ``tail`` would exceed ``max_new_range``.
  When the entry ``new_head`` points at issues, the pointer slides towards
  the tail (figure 2), freeing dispatch slots for the region.

The queue also keeps the power-relevant event counts: waiting (non-ready,
non-empty) operands for gated wakeup energy, total slots for ungated wakeup
energy, and per-bank occupancy for static gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class IssueQueueEntry:
    """One valid issue-queue slot.

    Attributes:
        rob_index: the owning reorder-buffer entry.
        slot: slot index inside the queue.
        waiting_tags: physical-register tags still outstanding.
        num_source_operands: total source operands the entry arrived with.
        fu_class: functional-unit class needed to issue.
        ready_cycle: earliest cycle the entry may issue (used to enforce the
            one-cycle wakeup-to-issue ordering for operands that were ready
            at dispatch time).
        age: monotonically increasing allocation number.  The tail advances
            one slot per allocation and never overtakes the head, so
            allocation order equals head-to-tail (oldest-first) order; the
            ready set sorts on this instead of walking the circular buffer.
    """

    rob_index: int
    slot: int
    waiting_tags: set[int] = field(default_factory=set)
    num_source_operands: int = 0
    fu_class: object = None
    ready_cycle: int = 0
    age: int = 0

    @property
    def is_ready(self) -> bool:
        """True when all source operands have been produced."""
        return not self.waiting_tags


class BankedIssueQueue:
    """Circular non-collapsing issue queue with bank gating and ``new_head``."""

    def __init__(self, capacity: int, bank_size: int):
        if capacity <= 0 or bank_size <= 0:
            raise ValueError("issue queue capacity and bank size must be positive")
        self.capacity = capacity
        self.bank_size = bank_size
        self.num_banks = (capacity + bank_size - 1) // bank_size

        self.slots: list[Optional[IssueQueueEntry]] = [None] * capacity
        self.head = 0
        self.tail = 0
        self.new_head = 0
        self.count = 0
        self.span = 0  # slots between head and tail, holes included
        self.max_new_range: Optional[int] = None
        self.global_limit: Optional[int] = None

        self.bank_counts = [0] * self.num_banks
        self.waiting_operand_count = 0
        # Ungated comparator operations per result broadcast: every operand
        # slot of the whole queue precharges and compares (two per entry).
        self.cmp_full_per_broadcast = 2 * capacity
        # consumers maps a physical-register tag to the entries waiting on it.
        self._consumers: dict[int, list[IssueQueueEntry]] = {}
        # Incrementally maintained set of ready entries keyed by age, so the
        # per-cycle select stage never walks the whole circular buffer.
        self._ready_by_age: dict[int, IssueQueueEntry] = {}
        self._next_age = 0

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _distance(self, start: int, end: int) -> int:
        """Number of slots from ``start`` up to (not including) ``end``."""
        return (end - start) % self.capacity

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return self.count

    @property
    def free_physical_slots(self) -> int:
        """Slots the tail can still advance into before reaching the head."""
        return self.capacity - self.span

    @property
    def region_occupancy(self) -> int:
        """Slots between ``new_head`` and ``tail`` (the current region's extent)."""
        if self.span == 0:
            return 0
        return self._distance(self.new_head, self.tail)

    def enabled_banks(self, bank_gating: bool) -> int:
        """Number of banks that must be powered this cycle."""
        if not bank_gating:
            return self.num_banks
        return sum(1 for count in self.bank_counts if count > 0)

    # ------------------------------------------------------------------
    # Compiler / policy control
    # ------------------------------------------------------------------
    def start_new_region(self, max_new_range: int) -> None:
        """Begin a new program region: ``new_head`` <- ``tail`` (section 3.2)."""
        self.new_head = self.tail
        self.max_new_range = max(1, max_new_range)

    def clear_region_limit(self) -> None:
        """Remove any software-imposed region limit."""
        self.max_new_range = None

    def set_global_limit(self, limit: Optional[int]) -> None:
        """Set a hardware-imposed cap on total queue extent (abella-style)."""
        if limit is not None:
            limit = max(self.bank_size, min(limit, self.capacity))
        self.global_limit = limit

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def can_dispatch(self) -> tuple[bool, str]:
        """Whether one more instruction may be dispatched, and why not if not."""
        if self.span >= self.capacity:
            return False, "physical"
        if self.global_limit is not None and self.span >= self.global_limit:
            return False, "global_limit"
        if self.max_new_range is not None and self.region_occupancy >= self.max_new_range:
            return False, "region_limit"
        return True, ""

    def allocate(
        self,
        rob_index: int,
        waiting_tags: set[int],
        num_source_operands: int,
        fu_class,
        ready_cycle: int,
    ) -> IssueQueueEntry:
        """Insert a new entry at the tail and return it."""
        ok, reason = self.can_dispatch()
        if not ok:
            raise RuntimeError(f"allocate called while dispatch blocked ({reason})")
        slot = self.tail
        entry = IssueQueueEntry(
            rob_index=rob_index,
            slot=slot,
            waiting_tags=set(waiting_tags),
            num_source_operands=num_source_operands,
            fu_class=fu_class,
            ready_cycle=ready_cycle,
        )
        entry.age = self._next_age
        self._next_age += 1
        self.slots[slot] = entry
        self.tail = (self.tail + 1) % self.capacity
        self.count += 1
        self.span += 1
        self.bank_counts[slot // self.bank_size] += 1
        self.waiting_operand_count += len(entry.waiting_tags)
        if entry.waiting_tags:
            for tag in entry.waiting_tags:
                self._consumers.setdefault(tag, []).append(entry)
        else:
            self._ready_by_age[entry.age] = entry
        return entry

    # ------------------------------------------------------------------
    # Wakeup / select / remove
    # ------------------------------------------------------------------
    def broadcast(self, tag: int) -> int:
        """Wake every operand waiting on ``tag``; return how many woke up."""
        woken = 0
        consumers = self._consumers.pop(tag, None)
        if not consumers:
            return 0
        for entry in consumers:
            if self.slots[entry.slot] is entry and tag in entry.waiting_tags:
                entry.waiting_tags.discard(tag)
                self.waiting_operand_count -= 1
                woken += 1
                if not entry.waiting_tags:
                    self._ready_by_age[entry.age] = entry
        return woken

    def ready_entries_in_age_order(self) -> list[IssueQueueEntry]:
        """Valid, ready entries from oldest (head) to youngest (tail)."""
        ready = self._ready_by_age
        if not ready:
            return []
        return [ready[age] for age in sorted(ready)]

    def remove(self, entry: IssueQueueEntry) -> None:
        """Remove an issued entry, leaving a hole, and advance the pointers."""
        slot = entry.slot
        if self.slots[slot] is not entry:
            raise RuntimeError("attempt to remove an entry that is not resident")
        self.slots[slot] = None
        self.count -= 1
        self.bank_counts[slot // self.bank_size] -= 1
        self.waiting_operand_count -= len(entry.waiting_tags)
        self._ready_by_age.pop(entry.age, None)
        self._advance_pointers()

    def _advance_pointers(self) -> None:
        """Slide ``head`` and ``new_head`` past holes towards the tail."""
        while self.span > 0 and self.slots[self.head] is None:
            self.head = (self.head + 1) % self.capacity
            self.span -= 1
        if self.span == 0:
            self.head = self.tail
            self.new_head = self.tail
            return
        # new_head behaves like head but never falls behind it.
        if self._distance(self.head, self.new_head) > self.span:
            self.new_head = self.head
        while self.new_head != self.tail and self.slots[self.new_head] is None:
            self.new_head = (self.new_head + 1) % self.capacity

    # ------------------------------------------------------------------
    # Power-event sampling
    # ------------------------------------------------------------------
    def comparison_counts(self) -> tuple[int, int]:
        """(ungated, gated) comparator operations for one result broadcast.

        Ungated: every operand slot of the whole queue precharges and
        compares (``cmp_full_per_broadcast``).  Gated: only non-empty,
        non-ready operands are compared (Folegnani & González's precharge
        gating, which the resizing techniques inherit).  The hot path in
        the core reads the two underlying attributes directly.
        """
        return self.cmp_full_per_broadcast, self.waiting_operand_count
