"""Baseline (conventional) issue-queue policies."""

from __future__ import annotations

from repro.techniques.base import ResizingPolicy


class BaselinePolicy(ResizingPolicy):
    """The reference machine every saving is measured against.

    Full 80-entry queue, ungated wakeup (every operand slot precharged and
    compared on every broadcast), every bank of the issue queue and the
    register file permanently powered.
    """

    name = "baseline"
    wakeup_gating = "full"
    iq_bank_gating = False
    rf_bank_gating = False
    uses_hints = False


class FixedLimitPolicy(ResizingPolicy):
    """A statically limited queue (useful for ablations and tests).

    The queue never grows beyond ``limit`` occupied slots; wakeup gating and
    bank gating follow the software scheme so the only variable is the
    static limit itself.
    """

    name = "fixed-limit"
    wakeup_gating = "nonempty"
    iq_bank_gating = True
    rf_bank_gating = True
    uses_hints = False

    def __init__(self, limit: int):
        if limit <= 0:
            raise ValueError("fixed issue-queue limit must be positive")
        self.limit = limit
        self.name = f"fixed-{limit}"

    def on_simulation_start(self, core) -> None:
        core.iq.set_global_limit(self.limit)
