"""Text reporting helpers and the whole-processor savings estimate."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.harness.experiment import SuiteRunner


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], precision: int = 2
) -> str:
    """Render ``rows`` as a plain-text table with ``headers``."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:.{precision}f}")
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


#: Fractions of whole-processor power the paper attributes to the issue
#: queue and the integer register file in its section 6 estimate.
IQ_SHARE_OF_PROCESSOR = 0.22
RF_SHARE_OF_PROCESSOR = 0.11


def overall_processor_savings(
    runner: SuiteRunner,
    technique: str = "improved",
    iq_share: float = IQ_SHARE_OF_PROCESSOR,
    rf_share: float = RF_SHARE_OF_PROCESSOR,
) -> float:
    """Section 6's whole-processor dynamic-power estimate, in percent.

    The paper assumes the issue queue and integer register file consume 22%
    and 11% of whole-processor power and concludes roughly 11% overall
    dynamic savings for the Improved scheme.
    """
    iq_saving = runner.average(technique, "iq_dynamic_saving_pct")
    rf_saving = runner.average(technique, "rf_dynamic_saving_pct")
    return iq_share * iq_saving + rf_share * rf_saving
