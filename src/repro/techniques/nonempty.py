"""Folegnani & González precharge gating (the ``nonEmpty`` comparison point).

Figure 8's ``nonEmpty`` bar shows the dynamic power saved in the issue
queue "if only non-empty instructions are woken": the queue keeps its full
size and timing behaviour (so IPC is identical to the baseline), but the
wakeup CAM no longer precharges empty or already-ready operand slots.
No banks are turned off, so it provides no static savings.
"""

from __future__ import annotations

from repro.techniques.base import ResizingPolicy


class NonEmptyPolicy(ResizingPolicy):
    """Full-size queue with empty/ready operand wakeup gating."""

    name = "nonempty"
    wakeup_gating = "nonempty"
    iq_bank_gating = False
    rf_bank_gating = False
    uses_hints = False
