"""Setup shim so editable installs work without the `wheel` package.

This file enables the legacy `pip install -e .` code path on environments
whose setuptools cannot build PEP 660 editable wheels, declares the
optional extras of the columnar and native replay engines, and lists the
package tree (``repro`` is a namespace package, so discovery must be
explicit) including the :mod:`repro.analysis` static checker and its
``repro-lint`` console entry point.

numpy is deliberately an *extra*, not a hard requirement: the scalar
engine (and therefore the whole tier-1 suite) runs on a bare Python
toolchain, and hosts without numpy get a clear
``ColumnarUnavailableError`` naming this extra only when the columnar
kernel is actually selected (see ``repro.uarch.engine.columnar``) —
never an ``ImportError`` at callsite depth.  That contract is itself
statically enforced by reprolint's ``optional-deps`` rule
(``python -m repro.analysis``).
"""
from setuptools import find_namespace_packages, setup

setup(
    # ``repro`` has no __init__.py (namespace package), so the default
    # find_packages() would discover nothing; enumerate the namespace.
    packages=find_namespace_packages(where="src", include=["repro", "repro.*"]),
    package_dir={"": "src"},
    entry_points={
        "console_scripts": [
            # The reprolint CLI: strict over src/, advisory over
            # benchmarks/ and examples/ (same as python -m repro.analysis).
            "repro-lint = repro.analysis.cli:main",
            # The experiment-service daemon (same as python -m
            # repro.service <cache_dir>; see docs/service.md).
            "repro-service = repro.service.__main__:main",
        ],
    },
    extras_require={
        # The columnar replay kernel (engine="columnar",
        # REPRO_REPLAY_KERNEL=columnar) lowers trace windows into numpy
        # structured arrays; everything else runs without it.
        "columnar": ["numpy>=1.22"],
        # The native replay kernel (engine="native",
        # REPRO_REPLAY_KERNEL=native) compiles its per-cycle loop as a C
        # extension, lazily, on first use.  Its dependency is a host
        # *toolchain* (a C compiler plus the Python development
        # headers), not a Python package, so the extra is an empty
        # marker: installing it documents intent, and hosts without the
        # toolchain get a NativeUnavailableError naming this extra only
        # when the native kernel is actually selected (see
        # ``repro.uarch.engine.native``).
        "native": [],
    },
)
