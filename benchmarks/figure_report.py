"""Small helper to print regenerated figures under a visible banner."""

from __future__ import annotations


def report(title: str, figure) -> None:
    """Print a regenerated figure next to the paper's headline numbers."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    print(figure.to_text())
