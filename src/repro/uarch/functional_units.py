"""Functional-unit pool.

Table 1: 6 integer ALUs (1 cycle), 3 integer multipliers (3 cycles), 4 FP
ALUs (2 cycles) and 2 FP multiply/divide units, plus 2 memory ports.  Units
are modelled as fully pipelined: the constraint enforced each cycle is how
many instructions of each class may *begin* execution, which is what limits
issue; occupancy of long-latency operations is captured by their latency.
"""

from __future__ import annotations

from repro.isa.opcodes import FuClass


class FunctionalUnitPool:
    """Per-cycle issue bandwidth per functional-unit class."""

    def __init__(self, fu_counts: dict[FuClass, int]):
        self.fu_counts = dict(fu_counts)
        self._used_this_cycle: dict[FuClass, int] = {}
        self.issues_by_class: dict[FuClass, int] = {fu: 0 for fu in self.fu_counts}
        self.structural_stalls: int = 0

    def new_cycle(self) -> None:
        """Reset the per-cycle usage counters."""
        self._used_this_cycle = {}

    def try_acquire(self, fu_class: FuClass) -> bool:
        """Reserve a unit of ``fu_class`` for this cycle if one is available."""
        limit = self.fu_counts.get(fu_class, 0)
        used = self._used_this_cycle.get(fu_class, 0)
        if used >= limit:
            self.structural_stalls += 1
            return False
        self._used_this_cycle[fu_class] = used + 1
        self.issues_by_class[fu_class] = self.issues_by_class.get(fu_class, 0) + 1
        return True

    def available(self, fu_class: FuClass) -> int:
        """Units of ``fu_class`` still free this cycle."""
        limit = self.fu_counts.get(fu_class, 0)
        return max(0, limit - self._used_this_cycle.get(fu_class, 0))
