"""Compilation reporting (table 2 of the paper).

Table 2 compares the time to compile each benchmark without the pass
("Baseline") and with it ("Limited").  The equivalent quantities here are
the time to run only the structural analyses every compiler performs anyway
(CFG construction and loop discovery) versus the time for the full
issue-queue analysis and instrumentation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cfg.graph import build_cfg
from repro.cfg.natural_loops import find_natural_loops
from repro.core.config import CompilerConfig
from repro.core.pipeline import CompilationResult, compile_program
from repro.isa.program import Program


@dataclass
class CompilationReport:
    """Compile-time comparison for one program.

    Attributes:
        program_name: benchmark name.
        baseline_seconds: structural-analysis-only time (the stand-in for a
            compilation without the pass).
        limited_seconds: full-pass time (analysis + instrumentation).
        num_blocks: static basic-block count.
        num_instructions: static instruction count.
        hints_emitted: hint NOOPs or tags emitted by the pass.
    """

    program_name: str
    baseline_seconds: float
    limited_seconds: float
    num_blocks: int = 0
    num_instructions: int = 0
    hints_emitted: int = 0

    @property
    def slowdown(self) -> float:
        """Limited / baseline compile-time ratio."""
        if self.baseline_seconds <= 0:
            return float("inf")
        return self.limited_seconds / self.baseline_seconds


@dataclass
class CompileTimeTable:
    """The full table-2 analogue across a benchmark suite."""

    rows: list[CompilationReport] = field(default_factory=list)

    def row_for(self, program_name: str) -> CompilationReport:
        """Return the row for ``program_name``."""
        for row in self.rows:
            if row.program_name == program_name:
                return row
        raise KeyError(f"no compile-time row for {program_name!r}")

    def longest(self) -> CompilationReport:
        """The benchmark with the longest limited compile time."""
        if not self.rows:
            raise ValueError("empty compile-time table")
        return max(self.rows, key=lambda row: row.limited_seconds)


def measure_baseline_compile(program: Program) -> float:
    """Time the structural analyses a conventional compilation performs."""
    start = time.perf_counter()
    for procedure in program.analysable_procedures():
        cfg = build_cfg(procedure)
        find_natural_loops(cfg)
    return time.perf_counter() - start


def compare_compile_times(
    program: Program,
    config: CompilerConfig | None = None,
    mode: str = "noop",
    precomputed: CompilationResult | None = None,
) -> CompilationReport:
    """Produce one table-2 row for ``program``."""
    config = config or CompilerConfig()
    baseline_seconds = measure_baseline_compile(program)

    if precomputed is not None:
        result = precomputed
        limited_seconds = result.analysis_seconds
    else:
        start = time.perf_counter()
        result = compile_program(program, config, mode=mode)
        limited_seconds = time.perf_counter() - start

    stats = result.instrumentation
    hints = 0
    if stats is not None:
        hints = stats.hints_inserted + stats.instructions_tagged
    return CompilationReport(
        program_name=program.name,
        baseline_seconds=baseline_seconds,
        limited_seconds=limited_seconds,
        num_blocks=program.num_basic_blocks,
        num_instructions=program.num_instructions,
        hints_emitted=hints,
    )
