"""The columnar cross-over study: kernel throughput vs machine width.

PR 5's honestly-recorded finding was that the columnar (numpy
structured-array) kernel *loses* to the consumer-list scalar kernel at
table-1 machine sizes: with an 80-entry issue queue and at most 8
wakeups per cycle, the fixed per-cycle cost of the batched CAM pass
(one vectorised compare over the whole tag vector per broadcast)
outweighs what it saves over walking short per-producer consumer
lists.  The columnar design only pays off when each broadcast has
*many* potential consumers — i.e. on wider machines than the paper's.

This bench runs that experiment instead of leaving it folklore: the
same 12k-instruction gzip replay is timed warm (decoded trace
memoised, replay loop only) on every available kernel across a ladder
of machine widths, from the paper's table 1 up to a 512-entry-IQ,
32-wide-issue configuration.  Each (config, kernel) pair appends a
``kind: "crossover"`` entry to ``BENCH_trace.json`` — series key
``crossover/<config>/<kernel>`` under the trend gate
(``python -m repro.telemetry.trend``) — and the test prints the
per-config winner table that ``docs/engines.md`` reproduces.

Measured on the 1-core dev container (full table in docs/engines.md):
**there is no cross-over** on this ladder — the columnar/scalar ratio
*worsens* as the machine widens (0.67x at table 1, 0.46x at 256/16,
0.40x at 512/32).  The batched CAM pass is O(queue capacity) per
broadcast whether or not the entries are occupied, while the scalar
consumer-list walk is O(actual consumers); gzip's real ILP cannot fill
a 512-entry window, so widening the queue inflates columnar's fixed
cost without giving it more consumers to amortise over.  Columnar's
hypothesised win needs *occupancy*, not capacity — a finding that
closes the PR 5 ROADMAP question in the negative for this workload
suite.  The compiled native kernel wins every config by ~30-60x.  The
assertions below are deliberately *not* "columnar must win somewhere":
the recorded numbers are the deliverable, and the only hard gates are
that every kernel still replays the wide configs bit-identically
(checked cheaply here via total cycle counts; the full statistics
matrix lives in ``tests/test_engines.py``) and that no series
regresses its own trajectory.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.isa.opcodes import FuClass
from repro.techniques import BaselinePolicy
from repro.telemetry import trend
from repro.uarch import simulate
from repro.uarch.config import ProcessorConfig
from repro.uarch.engine import native_available, numpy_available
from repro.workloads import build_benchmark

from test_perf_simulator import TRAJECTORY_FILE, _record_trajectory

MAX_INSTRUCTIONS = 12_000

ENGINES = (
    ("scalar",)
    + (("columnar",) if numpy_available() else ())
    + (("native",) if native_available() else ())
)


def _fu_counts(scale: int) -> dict[FuClass, int]:
    """Table-1 functional units scaled up for a wider back end."""
    return {
        FuClass.INT_ALU: 6 * scale,
        FuClass.INT_MUL: 3 * scale,
        FuClass.FP_ALU: 4 * scale,
        FuClass.FP_MULDIV: 2 * scale,
        FuClass.MEM_PORT: 2 * scale,
        FuClass.NONE: 64,
    }


def _wide_config(
    width: int, iq_entries: int, iq_bank_size: int, scale: int
) -> ProcessorConfig:
    """A width-scaled machine: every structure the paper sizes to an
    8-wide core grows with the issue width so the queue, not some other
    structure, stays the bottleneck the study varies."""
    return ProcessorConfig(
        fetch_width=width,
        decode_width=width,
        dispatch_width=width,
        issue_width=width,
        commit_width=width,
        fetch_queue_entries=4 * width,
        rob_entries=2 * iq_entries,
        iq_entries=iq_entries,
        iq_bank_size=iq_bank_size,
        int_phys_regs=2 * iq_entries,
        fp_phys_regs=2 * iq_entries,
        regfile_bank_size=iq_bank_size,
        fu_counts=_fu_counts(scale),
    )


#: The width ladder.  ``table1`` is the paper's machine (the PR 5
#: status quo the study re-measures for comparison); the wide configs
#: hold bank geometry proportional (bank size = capacity / 8 banks) so
#: banked gating stays meaningful while capacity and wakeup width grow.
CONFIGS: dict[str, ProcessorConfig] = {
    "table1": ProcessorConfig.hpca2005(),
    "iq256-w16": _wide_config(16, 256, 32, 2),
    "iq512-w32": _wide_config(32, 512, 64, 4),
}


def _warm_rate(engine: str, config: ProcessorConfig) -> tuple[int, float]:
    """Best-of-3 warm replay rate: (cycles, cycles_per_second)."""
    program = build_benchmark("gzip")
    # One untimed round per engine memoises the decoded trace and
    # settles the container out of its idle-throttle state.
    simulate(
        program,
        BaselinePolicy(),
        config=config,
        max_instructions=MAX_INSTRUCTIONS,
        engine=engine,
    )
    best = 0.0
    cycles = 0
    for _ in range(3):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            stats = simulate(
                program,
                BaselinePolicy(),
                config=config,
                max_instructions=MAX_INSTRUCTIONS,
                engine=engine,
            )
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        cycles = stats.cycles
        if elapsed > 0.0:
            best = max(best, cycles / elapsed)
    return cycles, best


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_kernel_crossover(config_name):
    config = CONFIGS[config_name]
    config.validate()

    rates: dict[str, float] = {}
    cycle_counts: dict[str, int] = {}
    for engine in ENGINES:
        cycles, rate = _warm_rate(engine, config)
        assert cycles > 0 and rate > 0.0, (config_name, engine)
        cycle_counts[engine] = cycles
        rates[engine] = rate
        _record_trajectory(
            {
                "timestamp": time.time(),
                "kind": "crossover",
                "config": config_name,
                "engine": engine,
                "max_instructions": MAX_INSTRUCTIONS,
                "iq_entries": config.iq_entries,
                "issue_width": config.issue_width,
                "cycles": cycles,
                "cycles_per_second": round(rate),
            }
        )

    # Cheap cross-kernel identity check on the wide configs: every
    # kernel must simulate the exact same number of cycles (the full
    # per-statistic matrix is tier-1, in tests/test_engines.py).
    assert len(set(cycle_counts.values())) == 1, cycle_counts

    winner = max(sorted(rates), key=lambda engine: rates[engine])
    summary = ", ".join(
        f"{engine} {rate:,.0f}/s" for engine, rate in sorted(rates.items())
    )
    print(
        f"\n  [{config_name}] iq={config.iq_entries} width="
        f"{config.issue_width}: {summary} -> winner {winner}"
    )
    if "columnar" in rates:
        ratio = rates["columnar"] / rates["scalar"]
        print(
            f"  [{config_name}] columnar/scalar = {ratio:.2f}x "
            f"({'columnar' if ratio > 1.0 else 'scalar'} ahead)"
        )

    # Perf-trajectory gate: each (config, kernel) series must sit in
    # the noise band of its own history (too-short histories pass).
    for engine in ENGINES:
        series_key = f"crossover/{config_name}/{engine}"
        evaluation = trend.gate_series(series_key, TRAJECTORY_FILE)
        assert evaluation is None or evaluation["regressed"] is not True, (
            f"perf trajectory regression on {series_key}: "
            f"latest {evaluation['latest']:,.1f} vs median "
            f"{evaluation['median']:,.1f} "
            f"(tolerance {evaluation['tolerance']:,.1f}); see "
            f"python -m repro.telemetry.trend"
        )
