"""Data-dependence-graph construction.

The compiler's DAG analysis (section 4.2) and loop analysis (section 4.3)
both operate on a data-dependence graph whose edges are labelled with the
producing instruction's latency.  Nodes are positions (indices) into the
instruction sequence being analysed, which is either a basic block, a DAG
region in layout order, or a loop body.

Loop-carried register dependences (distance 1) are included when requested:
if an instruction reads a register with no earlier writer in the current
iteration, but some instruction in the body writes it, the dependence comes
from the previous iteration.  Memory dependences are handled conservatively:
every load or store depends on the nearest preceding store (no alias
analysis), matching the paper's conservative treatment of memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.isa.instruction import Instruction
from repro.isa.registers import ZERO_REG, Reg


@dataclass(frozen=True)
class DependenceEdge:
    """A dependence from producer ``src`` to consumer ``dst``.

    Attributes:
        src: index of the producing instruction.
        dst: index of the consuming instruction.
        latency: cycles after the producer issues before the consumer may issue.
        distance: iteration distance (0 = same iteration, 1 = previous iteration).
    """

    src: int
    dst: int
    latency: int
    distance: int = 0


@dataclass
class DataDependenceGraph:
    """A dependence graph over an instruction sequence.

    Attributes:
        instructions: the analysed instruction sequence.
        edges: every dependence edge.
        succs: adjacency list of outgoing edges per node.
        preds: adjacency list of incoming edges per node.
    """

    instructions: list[Instruction]
    edges: list[DependenceEdge] = field(default_factory=list)
    succs: dict[int, list[DependenceEdge]] = field(default_factory=dict)
    preds: dict[int, list[DependenceEdge]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index in range(len(self.instructions)):
            self.succs.setdefault(index, [])
            self.preds.setdefault(index, [])

    def add_edge(self, edge: DependenceEdge) -> None:
        """Insert ``edge`` into the graph."""
        self.edges.append(edge)
        self.succs[edge.src].append(edge)
        self.preds[edge.dst].append(edge)

    def intra_edges(self) -> list[DependenceEdge]:
        """Edges within one iteration (distance 0)."""
        return [edge for edge in self.edges if edge.distance == 0]

    def carried_edges(self) -> list[DependenceEdge]:
        """Loop-carried edges (distance >= 1)."""
        return [edge for edge in self.edges if edge.distance >= 1]

    def roots(self) -> list[int]:
        """Nodes with no same-iteration predecessors."""
        return [
            index
            for index in range(len(self.instructions))
            if not any(edge.distance == 0 for edge in self.preds[index])
        ]

    def __len__(self) -> int:
        return len(self.instructions)


def _written_regs(instruction: Instruction) -> Iterable[Reg]:
    """Registers architecturally written by the instruction (excluding r0)."""
    for reg in instruction.dests:
        if reg.is_fp or reg.index != ZERO_REG:
            yield reg


def _read_regs(instruction: Instruction) -> Iterable[Reg]:
    """Registers architecturally read by the instruction (excluding r0)."""
    for reg in instruction.srcs:
        if reg.is_fp or reg.index != ZERO_REG:
            yield reg


def build_ddg(
    instructions: Sequence[Instruction],
    include_loop_carried: bool = False,
    entry_latency: dict[Reg, int] | None = None,
) -> DataDependenceGraph:
    """Build the data-dependence graph of ``instructions``.

    Args:
        instructions: the sequence to analyse, in program order.  Hint NOOPs
            may be present; they produce and consume nothing so they simply
            become isolated nodes.
        include_loop_carried: when True, register and memory dependences
            that wrap around to the previous iteration are added with
            ``distance=1`` (used by the loop analysis).
        entry_latency: optional map from register to the number of cycles
            after region entry before that register's value is available.
            This is the conservative path summary the DAG analysis threads
            from block to block; it is not recorded as graph edges, but the
            pseudo-issue-queue scheduler consumes it alongside the graph.

    Returns:
        The dependence graph.  ``entry_latency`` is attached as the
        ``entry_latency`` attribute for downstream consumers.
    """
    instruction_list = list(instructions)
    ddg = DataDependenceGraph(instructions=instruction_list)

    last_writer: dict[Reg, int] = {}
    last_store: int | None = None

    for index, instr in enumerate(instruction_list):
        # Register RAW dependences within the iteration.
        for reg in _read_regs(instr):
            writer = last_writer.get(reg)
            if writer is not None:
                ddg.add_edge(
                    DependenceEdge(
                        src=writer,
                        dst=index,
                        latency=instruction_list[writer].latency,
                        distance=0,
                    )
                )
        # Conservative memory dependences: nearest preceding store.
        if instr.is_memory and last_store is not None:
            ddg.add_edge(
                DependenceEdge(
                    src=last_store,
                    dst=index,
                    latency=instruction_list[last_store].latency,
                    distance=0,
                )
            )
        for reg in _written_regs(instr):
            last_writer[reg] = index
        if instr.is_store:
            last_store = index

    if include_loop_carried:
        _add_loop_carried_edges(ddg, last_writer, last_store)

    ddg.entry_latency = dict(entry_latency or {})
    return ddg


def _add_loop_carried_edges(
    ddg: DataDependenceGraph,
    final_writer: dict[Reg, int],
    final_store: int | None,
) -> None:
    """Add distance-1 edges from the end of one iteration to the start of the next."""
    instruction_list = ddg.instructions
    seen_writer: dict[Reg, int] = {}
    seen_store = False

    for index, instr in enumerate(instruction_list):
        for reg in _read_regs(instr):
            if reg not in seen_writer and reg in final_writer:
                # No writer earlier in this iteration: the value comes from
                # the previous iteration's final writer.
                writer = final_writer[reg]
                ddg.add_edge(
                    DependenceEdge(
                        src=writer,
                        dst=index,
                        latency=instruction_list[writer].latency,
                        distance=1,
                    )
                )
        if instr.is_memory and not seen_store and final_store is not None:
            ddg.add_edge(
                DependenceEdge(
                    src=final_store,
                    dst=index,
                    latency=instruction_list[final_store].latency,
                    distance=1,
                )
            )
        for reg in _written_regs(instr):
            seen_writer.setdefault(reg, index)
        if instr.is_store:
            seen_store = True
