"""Reproduction of the paper's tables.

* Table 1 is the processor configuration; :func:`table1` renders the
  configuration actually used by a run so it can be eyeballed against the
  paper.
* Table 2 is per-benchmark compile time, baseline versus the full pass;
  :func:`table2` measures both for every benchmark of the synthetic suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import CompilationReport, CompileTimeTable, compare_compile_times
from repro.harness.experiment import RunConfig, SuiteRunner
from repro.harness.reporting import format_table
from repro.uarch.config import ProcessorConfig
from repro.workloads import build_benchmark


def table1(config: ProcessorConfig | None = None) -> str:
    """Render the processor configuration in the shape of the paper's table 1."""
    config = config or ProcessorConfig.hpca2005()
    rows = [
        ("Fetch, decode and commit width", f"{config.fetch_width} instructions"),
        (
            "Branch predictor",
            f"Hybrid {config.branch.gshare_entries // 1024}K gshare, "
            f"{config.branch.bimodal_entries // 1024}K bimodal, "
            f"{config.branch.selector_entries // 1024}K selector",
        ),
        ("BTB", f"{config.branch.btb_entries} entries, {config.branch.btb_assoc}-way"),
        (
            "L1 Icache",
            f"{config.l1i.size_bytes // 1024}KB, {config.l1i.assoc}-way, "
            f"{config.l1i.line_bytes}B line, {config.l1i.hit_latency} cycle hit",
        ),
        (
            "L1 Dcache",
            f"{config.l1d.size_bytes // 1024}KB, {config.l1d.assoc}-way, "
            f"{config.l1d.line_bytes}B line, {config.l1d.hit_latency} cycles hit",
        ),
        (
            "Unified L2 cache",
            f"{config.l2.size_bytes // 1024}KB, {config.l2.assoc}-way, "
            f"{config.l2.line_bytes}B line, {config.l2.hit_latency} cycles hit, "
            f"{config.l2.hit_latency + config.l2_miss_latency} cycles miss",
        ),
        ("ROB size", f"{config.rob_entries} entries"),
        ("Issue queue", f"{config.iq_entries} entries"),
        (
            "Int register file",
            f"{config.int_phys_regs} entries "
            f"({config.int_regfile_banks} banks of {config.regfile_bank_size})",
        ),
        (
            "FP register file",
            f"{config.fp_phys_regs} entries "
            f"({config.fp_phys_regs // config.regfile_bank_size} banks of "
            f"{config.regfile_bank_size})",
        ),
    ]
    return format_table(["Parameter", "Configuration"], rows)


@dataclass
class Table2Result:
    """Compile-time table plus a rendered view."""

    table: CompileTimeTable = field(default_factory=CompileTimeTable)

    def to_text(self) -> str:
        """Render in the shape of the paper's table 2."""
        rows = [
            (
                row.program_name,
                row.baseline_seconds,
                row.limited_seconds,
                row.slowdown,
                row.num_blocks,
                row.hints_emitted,
            )
            for row in self.table.rows
        ]
        return format_table(
            ["benchmark", "baseline (s)", "limited (s)", "slowdown", "blocks", "hints"],
            rows,
            precision=4,
        )


def table2(
    runner: SuiteRunner | None = None, config: RunConfig | None = None
) -> Table2Result:
    """Measure baseline-vs-limited compile time for every benchmark."""
    if runner is None:
        runner = SuiteRunner(config)
    result = Table2Result()
    for name in runner.config.benchmarks:
        program = build_benchmark(name)
        compilation = runner.compilation(name, "noop")
        report: CompilationReport = compare_compile_times(
            program, runner.config.compiler_config, precomputed=compilation
        )
        result.table.rows.append(report)
    return result
