"""Ablation: the compiler's sizing margin (power/performance trade-off).

DESIGN.md calls out the sizing margin as the reproduction's calibration
constant.  This bench sweeps it on two representative benchmarks and checks
the expected monotone behaviour: a larger margin costs less IPC and saves
less power.
"""

import pytest

from repro.core import CompilerConfig, compile_program
from repro.power import build_power_report, power_savings
from repro.techniques import BaselinePolicy, SoftwareDirectedPolicy
from repro.uarch import simulate
from repro.workloads import build_benchmark


BUDGET = dict(max_instructions=6_000, warmup_instructions=2_000)
BENCHES = ("gzip", "vortex")


def run_sweep():
    results = {}
    for name in BENCHES:
        program = build_benchmark(name)
        baseline_policy = BaselinePolicy()
        baseline = simulate(program, baseline_policy, **BUDGET)
        baseline_power = build_power_report(baseline, baseline_policy)
        per_margin = {}
        for margin in (1.0, 1.6, 2.2):
            config = CompilerConfig(sizing_margin=margin)
            compilation = compile_program(program, config, mode="extension")
            policy = SoftwareDirectedPolicy("extension")
            stats = simulate(compilation.instrumented_program, policy, **BUDGET)
            savings = power_savings(baseline_power, build_power_report(stats, policy))
            per_margin[margin] = (
                100 * (1 - stats.ipc / baseline.ipc),
                100 * savings.iq_dynamic,
            )
        results[name] = per_margin
    return results


def test_sizing_margin_tradeoff(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    for name, per_margin in results.items():
        for margin, (loss, saving) in per_margin.items():
            print(f"  {name:8s} margin={margin:3.1f}: IPC loss {loss:5.1f}%  IQ dyn saving {saving:5.1f}%")
        losses = [per_margin[m][0] for m in sorted(per_margin)]
        savings = [per_margin[m][1] for m in sorted(per_margin)]
        # More head-room never increases IPC loss, and the tightest sizing
        # saves at least as much dynamic power as the loosest.
        assert losses[0] >= losses[-1] - 1.0
        assert savings[0] >= savings[-1] - 1.0
