"""Micro-benchmark: queue-backend wall-clock on a small figure grid.

Measures how long a (benchmark × technique) grid takes end to end
through ``backend="queue"`` — enqueue, two worker subprocesses leasing
over the shared cache directory, heartbeats, completion markers, the
driver folding counters — against the same grid on the in-process local
backend.  The point is to keep the queue protocol's coordination
overhead honest: leases and markers are filesystem round-trips, so a
grid of seconds-long simulations should spend almost all of its wall
clock simulating, not coordinating.

Each run appends a ``"kind": "queue_grid"`` entry to
``BENCH_trace.json`` next to the per-cycle throughput history, so later
PRs can track the backend's overhead trajectory alongside the hot
path's.

The run is parametrised over the chaoskit injection state.  Only
``"disabled"`` is measured: the fault hooks ship on every filesystem
touchpoint of this path (atomicio publications, queue listings,
heartbeats), and their no-op contract — one ``is None`` test while no
injector is installed — is exactly what this floor guards.  An
injection-enabled grid is a correctness soak (``tests/test_faults.py``),
not a benchmark.
"""

from __future__ import annotations

import time

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig
from repro.harness.faults import active_injector

from repro.telemetry import trend

from test_perf_simulator import TRAJECTORY_FILE, _record_trajectory

GRID_CONFIG = RunConfig(
    benchmarks=("gzip", "mcf"),
    max_instructions=4_000,
    warmup_instructions=1_000,
)
TECHNIQUES = ("baseline", "abella", "noop")
QUEUE_WORKERS = 2


@pytest.mark.parametrize("injection", ["disabled"])
def test_queue_grid_wall_clock(benchmark, tmp_path, injection):
    # The hooks must be dormant: the floor below is only meaningful as a
    # zero-overhead guarantee if nothing is injecting during the run.
    assert active_injector() is None, "fault injector active in a perf run"
    def _queue_run() -> float:
        runner = ParallelSuiteRunner(
            GRID_CONFIG,
            workers=1,
            cache_dir=str(tmp_path / f"run-{time.monotonic_ns()}"),
            backend="queue",
            queue_workers=QUEUE_WORKERS,
            queue_assist=False,  # measure the workers, not the driver
            queue_poll=0.05,
            queue_ttl=30,
            queue_timeout=600,
        )
        start = time.perf_counter()
        runner.run_suite(techniques=TECHNIQUES)
        elapsed = time.perf_counter() - start
        assert runner.simulations_run == len(GRID_CONFIG.benchmarks) * len(TECHNIQUES)
        return elapsed

    queue_elapsed = benchmark.pedantic(_queue_run, rounds=1, iterations=1)

    local = ParallelSuiteRunner(GRID_CONFIG, workers=1)
    start = time.perf_counter()
    local.run_suite(techniques=TECHNIQUES)
    local_elapsed = time.perf_counter() - start

    cells = len(GRID_CONFIG.benchmarks) * len(TECHNIQUES)
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["queue_workers"] = QUEUE_WORKERS
    benchmark.extra_info["injection"] = injection
    benchmark.extra_info["queue_seconds"] = round(queue_elapsed, 2)
    benchmark.extra_info["local_seconds"] = round(local_elapsed, 2)
    _record_trajectory(
        {
            "timestamp": time.time(),
            "kind": "queue_grid",
            "cells": cells,
            "max_instructions": GRID_CONFIG.max_instructions,
            "queue_workers": QUEUE_WORKERS,
            "injection": injection,
            "queue_seconds": round(queue_elapsed, 2),
            "local_seconds": round(local_elapsed, 2),
        }
    )
    print(
        f"\n  {cells}-cell grid: {queue_elapsed:.1f}s over the queue with "
        f"{QUEUE_WORKERS} workers vs {local_elapsed:.1f}s locally in-process"
    )
    # Generous bound: worker startup (~1s of interpreter+imports each)
    # plus coordination must not blow the run up past a small multiple
    # of the serial time; a protocol regression (e.g. a stuck lease
    # forcing a TTL wait) trips this long before it hurts real grids.
    assert queue_elapsed < max(30.0, 10.0 * local_elapsed)

    # Perf-trajectory gate (PR 9): the wall clock just recorded must sit
    # inside the MAD noise band of the queue grid's own history.
    evaluation = trend.gate_series("queue_grid/seconds", TRAJECTORY_FILE)
    assert evaluation is None or evaluation["regressed"] is not True, (
        f"perf trajectory regression on queue_grid/seconds: "
        f"latest {evaluation['latest']:,.2f}s vs median "
        f"{evaluation['median']:,.2f}s "
        f"(tolerance {evaluation['tolerance']:,.2f}); see "
        f"python -m repro.telemetry.trend"
    )
