"""Structured tracing: explicit spans published atomically as JSONL.

A *span* is one timed unit of work at a named site (``driver.grid``,
``queue.enqueue``, ``queue.claim``, ``worker.replay``,
``queue.complete``).  Spans carry a *trace id* — one opaque request id
minted by whoever starts the work — and the queue propagates it across
process boundaries inside the job envelope (transport, not identity:
like ``priority``, the trace id never enters a fingerprint), so a
single id connects the driver's grid submission to the enqueue, the
worker's claim, the replay, and the completion marker even when those
happen in different processes on different hosts.

Durations come from :func:`time.perf_counter` (monotonic — immune to
wall-clock steps); the start timestamp is wall-clock so spans from
different hosts can be coarsely ordered.  Spans buffer in-process and
the whole buffer is republished through
:func:`repro.atomicio.publish_atomically` to
``<cache_dir>/telemetry/spans/<host>-<pid>.jsonl`` — one file per
process, so writers never contend and a reader can never observe a torn
line.  ``cache gc`` sweeps stale span files on the consumed-marker age
bound (see :func:`repro.harness.cache.gc_cache_tree`).

Tracing is **no-op by default**: :func:`span` performs one is-None
check (the chaoskit discipline — see :mod:`repro.harness.faults`) and
returns a shared do-nothing context manager unless a recorder was
installed via :func:`enable` / :func:`install_from_env`
(``REPRO_TELEMETRY=1``).  The perf floors in ``benchmarks/`` run with
tracing disabled and enforce that the disabled path stays free.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from pathlib import Path

from repro.atomicio import TMP_PREFIX, publish_atomically

from .metrics import percentile

#: Schema version stamped into every span record.
SPAN_FORMAT = 1

#: Environment opt-in: any value other than ""/"0" enables tracing in
#: processes that call :func:`install_from_env` (the queue worker CLI,
#: the runner's queue backend, the service daemon), and is inherited by
#: worker subprocesses so one setting lights up the whole fleet.
ENV_VAR = "REPRO_TELEMETRY"

#: Span files live under ``<cache_dir>/telemetry/spans/``.
SPANS_SUBDIR = ("telemetry", "spans")

# Module-level recorder: None (the default) keeps span() a single
# attribute load + is-None check on the hot path.
_recorder: "SpanRecorder | None" = None

# Current trace-context stack (innermost last).  Process-wide, not
# thread-local: every span-emitting path (runner, worker loop, daemon
# event loop) runs on its process's main thread; helper threads such as
# the lease heartbeat emit no spans.
_trace_stack: list[str] = []


def spans_directory(cache_dir) -> Path:
    """Where the span files for *cache_dir*'s fleet live."""
    directory = Path(cache_dir)
    for part in SPANS_SUBDIR:
        directory = directory / part
    return directory


def new_trace_id() -> str:
    """Mint an opaque request id (uuid4-derived; transport, not identity)."""
    return uuid.uuid4().hex[:16]


def current_trace() -> str | None:
    """The innermost active trace id, or None outside any context."""
    return _trace_stack[-1] if _trace_stack else None


class _TraceScope:
    """Context manager pushing a trace id for the duration of a block."""

    __slots__ = ("trace",)

    def __init__(self, trace: str) -> None:
        self.trace = trace

    def __enter__(self) -> str:
        _trace_stack.append(self.trace)
        return self.trace

    def __exit__(self, exc_type, exc, tb) -> bool:
        _trace_stack.pop()
        return False


def trace_scope(trace: str | None = None) -> _TraceScope:
    """Enter a trace context; mints a fresh id when *trace* is None.

    Spans recorded inside the block inherit the id unless they pass an
    explicit ``trace=`` (workers do, from the claimed envelope).
    """
    return _TraceScope(trace if trace is not None else new_trace_id())


def maybe_trace_scope(trace: str | None = None):
    """Like :func:`trace_scope`, but a shared no-op while disabled.

    The producer-side entry point: with tracing off, no context is
    pushed, so :func:`current_trace` stays None and the queue stamps no
    ``trace`` key into envelopes — disabled runs leave zero residue.
    """
    if _recorder is None:
        return _NOOP_SPAN
    return trace_scope(trace)


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Span:
    """One timed unit of work; records itself on context-manager exit."""

    __slots__ = ("recorder", "site", "trace", "attrs", "_start_wall", "_start_mono")

    def __init__(self, recorder: "SpanRecorder", site: str, trace, attrs: dict) -> None:
        self.recorder = recorder
        self.site = site
        self.trace = trace
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (resolved engine, ...)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._start_wall = time.time()
        self._start_mono = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_mono
        # A span opened before its trace id is known (a worker claiming
        # an envelope learns the id from the decode *inside* the span)
        # may deliver it late via ``set(trace=...)``.
        trace = self.trace
        if trace is None:
            trace = self.attrs.pop("trace", None)
        record = {
            "format": SPAN_FORMAT,
            "trace": trace,
            "site": self.site,
            "host": self.recorder.host,
            "pid": self.recorder.pid,
            "ts": round(self._start_wall, 6),
            "dur": round(duration, 6),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        for key, value in self.attrs.items():
            record.setdefault(key, value)
        self.recorder.record(record)
        return False


class SpanRecorder:
    """Buffers spans and republishes the process's span file atomically."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self.path = self.directory / f"{self.host}-{self.pid}.jsonl"
        self._records: list[dict] = []

    def record(self, record: dict) -> None:
        self._records.append(record)
        # Publish after every completed span: grids record tens of
        # spans per process, so the O(n) rewrite stays trivially cheap,
        # and the file is always complete — a worker killed mid-run
        # loses at most the span in flight, never the file.
        self.flush()

    def flush(self) -> None:
        if not self._records:
            return
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in self._records
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            publish_atomically(self.path, lambda handle: handle.write(payload))
        except OSError:
            # Telemetry is strictly best-effort: a full or vanished
            # spans directory must never take down the work it observes.
            pass


def enabled() -> bool:
    return _recorder is not None


def enable(cache_dir) -> SpanRecorder:
    """Install a recorder writing under *cache_dir*'s spans directory."""
    global _recorder
    if _recorder is not None:
        _recorder.flush()
    _recorder = SpanRecorder(spans_directory(cache_dir))
    return _recorder


def disable() -> None:
    """Flush and uninstall the recorder (back to the no-op fast path)."""
    global _recorder
    if _recorder is not None:
        _recorder.flush()
    _recorder = None


def install_from_env(cache_dir) -> SpanRecorder | None:
    """Enable tracing iff ``REPRO_TELEMETRY`` is set (and not "0")."""
    if os.environ.get(ENV_VAR, "0") in ("", "0"):
        return None
    return enable(cache_dir)


def span(site: str, trace: str | None = None, **attrs):
    """A context manager timing one unit of work at *site*.

    The disabled path is one is-None check returning a shared no-op
    object — the same discipline as chaoskit's ``maybe_*`` hooks, so
    instrumented call sites cost nothing in ordinary runs.
    """
    recorder = _recorder
    if recorder is None:
        return _NOOP_SPAN
    return Span(recorder, site, trace if trace is not None else current_trace(), attrs)


def flush() -> None:
    """Flush the installed recorder's buffer (no-op when disabled)."""
    if _recorder is not None:
        _recorder.flush()


def read_spans(cache_dir) -> list[dict]:
    """Every span record published under *cache_dir*, oldest file first.

    Tolerates concurrent writers and foreign junk: unreadable files and
    unparsable lines are skipped, never raised.
    """
    directory = spans_directory(cache_dir)
    records: list[dict] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.jsonl")):
        # Temp files keep the destination suffix; an in-flight (or
        # killed-writer) publication is not a span file yet.
        if path.name.startswith(TMP_PREFIX):
            continue
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def queue_latency_summary(cache_dir) -> dict:
    """Span-derived queue latency percentiles for ``--status`` views.

    ``queue.complete`` spans carry the two envelope-derived intervals —
    ``enqueue_to_claim`` (backlog pressure: how long jobs waited for a
    lease) and ``claim_to_done`` (service time: lease to done-marker) —
    so the rollup only needs that one site.  Shape::

        {"spans": total_span_records,
         "enqueue_to_claim": {"count", "p50", "p90", "p99"} | None,
         "claim_to_done":    {"count", "p50", "p90", "p99"} | None}
    """
    records = read_spans(cache_dir)
    summary: dict = {"spans": len(records)}
    for key in ("enqueue_to_claim", "claim_to_done"):
        values = [
            float(record[key])
            for record in records
            if record.get("site") == "queue.complete"
            and isinstance(record.get(key), (int, float))
        ]
        if values:
            summary[key] = {
                "count": len(values),
                "p50": round(percentile(values, 0.50), 6),
                "p90": round(percentile(values, 0.90), 6),
                "p99": round(percentile(values, 0.99), 6),
            }
        else:
            summary[key] = None
    return summary
