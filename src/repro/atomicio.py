"""Atomic file publication shared by the caches and the work queue.

Every on-disk artefact in this project — result-cache cells
(:mod:`repro.harness.cache`), decoded-trace files
(:mod:`repro.uarch.trace`) and work-queue protocol files
(:mod:`repro.harness.queue`) — is published the same way: write a
``.tmp-*`` temp file in the *destination* directory, then ``os.replace``
it over the final name.  Readers therefore never observe a torn file,
concurrent writers of the same name resolve to last-writer-wins, and a
writer killed mid-store leaves only an orphaned temp file.

That orphan contract is load-bearing: the offline garbage collector
(``python -m repro.harness.cache gc``) identifies killed-writer debris
purely by the :data:`TMP_PREFIX` name pattern plus age, and the online
LRU pruners exclude in-flight stores the same way.  Keeping the
discipline in one helper keeps every writer and the sweeper in
agreement.

Fault injection seam: :data:`_fault_hook` is ``None`` in production and
set by :func:`repro.harness.faults.install` (this module sits below the
harness layer and must not import it).  When set, the hook is called at
each publication phase — write, torn-temp, crash-before-replace,
crash-after-replace — and may raise an injected error.  Exceptions
carrying a true ``preserve_temp`` attribute (injected writer deaths)
skip the temp-file cleanup so chaos runs produce exactly the orphan
debris the gc contract above exists for.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, IO, Optional

#: Name prefix of in-flight (or orphaned) writer temp files.  The gc
#: sweeper and the caches' directory listings match on this.
TMP_PREFIX = ".tmp-"

#: Fault-injection hook installed by ``repro.harness.faults``; always
#: ``None`` outside chaos runs (one attribute test on the hot path).
_fault_hook: Optional[Callable[..., None]] = None


def publish_atomically(
    path: str | os.PathLike,
    write: Callable[[IO], None],
    binary: bool = False,
) -> Path:
    """Write via ``write(handle)`` into a temp file, then rename to ``path``.

    The destination directory is created on demand; the temp file lives
    in it (``os.replace`` must not cross filesystems).  On any failure
    the temp file is removed and the exception re-raised — the
    destination is either fully the old content or fully the new.
    """
    path = Path(path)
    key = str(path)
    directory = path.parent
    directory.mkdir(parents=True, exist_ok=True)
    if _fault_hook is not None:
        _fault_hook("atomicio.write", key)
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=TMP_PREFIX, suffix=path.suffix
    )
    try:
        if binary:
            handle = os.fdopen(fd, "wb")
        else:
            handle = os.fdopen(fd, "w", encoding="utf-8")
        with handle:
            write(handle)
        if _fault_hook is not None:
            _fault_hook("atomicio.torn", key, temp_path)
            _fault_hook("atomicio.crash-before-replace", key)
        os.replace(temp_path, path)
        if _fault_hook is not None:
            _fault_hook("atomicio.crash-after-replace", key)
    except BaseException as error:
        # Injected writer deaths carry preserve_temp: a real killed
        # writer cannot clean up after itself, so neither do we — the
        # orphan is the point (the gc sweeper's contract under test).
        if not getattr(error, "preserve_temp", False):
            try:
                os.unlink(temp_path)
            except FileNotFoundError:
                pass
        raise
    return path
