"""DAG-region formation.

Section 4.1 of the paper: "DAGs are formed from the basic blocks in the
procedure using control flow analysis.  The first block in a DAG is the
first block in the procedure, or a block immediately following a function
call", and no DAG block may be part of a natural loop.

A region is therefore a set of loop-free blocks grown from a start block by
following CFG edges until a loop block, a block that starts another region,
or the end of the procedure is reached.  Blocks whose only predecessors are
loop blocks (loop exits) also start regions so every loop-free block belongs
to exactly one region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.natural_loops import NaturalLoop, blocks_in_any_loop


@dataclass
class DagRegion:
    """A loop-free region of blocks analysed as one DAG.

    Attributes:
        start: label of the region's first block.
        blocks: labels of every block in the region, in breadth-first order
            from the start (the traversal order the compiler pass uses).
    """

    start: str
    blocks: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.blocks)

    def __contains__(self, label: str) -> bool:
        return label in self.blocks


def _ends_in_call(cfg: ControlFlowGraph, label: str) -> bool:
    """True when the block's final instruction is a procedure call."""
    term = cfg.block(label).terminator
    return term is not None and term.is_call


def _contains_call(cfg: ControlFlowGraph, label: str) -> bool:
    """True when any instruction in the block is a procedure call."""
    return any(instr.is_call for instr in cfg.block(label).instructions)


def find_dag_regions(cfg: ControlFlowGraph, loops: list[NaturalLoop]) -> list[DagRegion]:
    """Partition the loop-free, reachable blocks of ``cfg`` into DAG regions."""
    loop_blocks = blocks_in_any_loop(loops)
    reachable = cfg.reachable()
    dag_blocks = [label for label in cfg.labels if label in reachable and label not in loop_blocks]
    dag_block_set = set(dag_blocks)

    # Region starts: the procedure entry (if loop-free), any block following
    # a block that contains a call, and any block all of whose predecessors
    # are loop blocks or that has no predecessors at all (e.g. loop exits).
    starts: list[str] = []
    for label in dag_blocks:
        preds = [p for p in cfg.pred(label) if p in reachable]
        is_entry = label == cfg.entry
        follows_call = any(_contains_call(cfg, p) for p in preds)
        only_loop_preds = bool(preds) and all(p in loop_blocks for p in preds)
        orphan = not preds and not is_entry
        if is_entry or follows_call or only_loop_preds or orphan:
            starts.append(label)
    if not starts and dag_blocks:
        starts.append(dag_blocks[0])

    start_set = set(starts)
    assigned: set[str] = set()
    regions: list[DagRegion] = []

    for start in starts:
        if start in assigned:
            continue
        region = DagRegion(start=start)
        queue = [start]
        assigned.add(start)
        while queue:
            label = queue.pop(0)
            region.blocks.append(label)
            # A block that ends in a call terminates the region; its
            # successors begin new regions (they are in `starts`).
            if _ends_in_call(cfg, label):
                continue
            for succ in cfg.succ(label):
                if (
                    succ in dag_block_set
                    and succ not in assigned
                    and succ not in start_set
                ):
                    assigned.add(succ)
                    queue.append(succ)
        regions.append(region)

    # Safety net: any loop-free block not yet claimed becomes its own region
    # (can happen with unusual CFG shapes); this keeps the partition total.
    for label in dag_blocks:
        if label not in assigned:
            assigned.add(label)
            regions.append(DagRegion(start=label, blocks=[label]))

    return regions
