"""Encoding of issue-queue size hints.

The paper passes the compiler's ``max_new_range`` value to the processor in
one of two ways:

* **NOOP scheme** (section 3): a special NOOP whose unused opcode bits carry
  the IQ size.  The NOOP travels down the front end and is stripped in the
  final decode stage, so it costs fetch and decode bandwidth but never
  occupies an issue-queue entry.
* **Extension scheme** (section 5.3): redundant bits of ordinary
  instructions are used to tag the first instruction of each region with the
  IQ size, removing the bandwidth cost.

Both encodings carry the same payload; this module centralises the payload
format so the compiler and the simulator agree on it.  The payload is a
7-bit field (0..127), enough to express any size up to the 80-entry queue of
table 1 and the 128-entry ROB.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction


#: Number of payload bits available in the special NOOP / instruction tag.
HINT_PAYLOAD_BITS = 7

#: Largest encodable issue-queue size request.
HINT_MAX_VALUE = (1 << HINT_PAYLOAD_BITS) - 1


class HintEncodingError(ValueError):
    """Raised when an IQ-size hint cannot be encoded in the payload field."""


def encode_hint_payload(iq_entries: int) -> int:
    """Clamp-and-encode an IQ-size request into the hint payload field.

    Requests larger than the encodable maximum are clamped (the processor
    additionally clamps to its physical queue size), but negative requests
    are programming errors and raise :class:`HintEncodingError`.
    """
    if iq_entries < 0:
        raise HintEncodingError(f"cannot encode negative IQ size {iq_entries}")
    return min(iq_entries, HINT_MAX_VALUE)


def decode_hint_payload(payload: int) -> int:
    """Decode a payload field back into an IQ-size request."""
    if not 0 <= payload <= HINT_MAX_VALUE:
        raise HintEncodingError(f"hint payload {payload} outside {HINT_PAYLOAD_BITS}-bit range")
    return payload


def make_hint_noop(iq_entries: int) -> Instruction:
    """Build a special NOOP instruction carrying ``iq_entries``."""
    return Instruction.hint(encode_hint_payload(iq_entries))


def tag_instruction(instruction: Instruction, iq_entries: int) -> Instruction:
    """Attach an IQ-size tag to an ordinary instruction (Extension scheme).

    The instruction is modified in place and returned for convenience.
    Hint NOOPs cannot be tagged (they already carry a payload).
    """
    if instruction.is_hint:
        raise HintEncodingError("hint NOOPs cannot additionally be tagged")
    instruction.iq_tag = encode_hint_payload(iq_entries)
    return instruction
