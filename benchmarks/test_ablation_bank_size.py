"""Ablation: issue-queue bank granularity (DESIGN.md design-choice list).

Finer banks follow occupancy more closely, so more bank-cycles can be gated
off for the same resident set; coarser banks are cheaper to control but
waste leakage.  The paper uses 8-entry banks (10 banks of 8).
"""

from repro.core import CompilerConfig, compile_program
from repro.techniques import SoftwareDirectedPolicy
from repro.uarch import ProcessorConfig, simulate
from repro.workloads import build_benchmark


BUDGET = dict(max_instructions=6_000, warmup_instructions=2_000)


def run_bank_sweep():
    program = build_benchmark("mcf")
    compilation = compile_program(program, CompilerConfig(), mode="extension")
    results = {}
    for bank_size in (4, 8, 16):
        config = ProcessorConfig.hpca2005()
        config.iq_bank_size = bank_size
        stats = simulate(
            compilation.instrumented_program,
            SoftwareDirectedPolicy("extension"),
            config=config,
            **BUDGET,
        )
        results[bank_size] = 100 * stats.iq_banks_off_fraction
    return results


def test_bank_size_ablation(benchmark):
    results = benchmark.pedantic(run_bank_sweep, rounds=1, iterations=1)
    print()
    for bank_size, off in results.items():
        print(f"  bank size {bank_size:2d}: {off:5.1f}% of bank-cycles gated off")
    # Finer banks can only improve (or match) the gated fraction.
    assert results[4] >= results[16] - 1.0
    assert all(0.0 <= value <= 100.0 for value in results.values())
