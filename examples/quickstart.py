#!/usr/bin/env python3
"""Quickstart: compile one benchmark and compare techniques.

Builds the synthetic ``gzip`` benchmark, runs the compiler pass, simulates
the baseline machine, the abella hardware-adaptive scheme and the paper's
software-directed scheme, and prints IPC, occupancy and power savings.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import CompilerConfig, compile_program
from repro.power import build_power_report, power_savings
from repro.techniques import AbellaPolicy, BaselinePolicy, SoftwareDirectedPolicy
from repro.uarch import simulate
from repro.workloads import build_benchmark


def main() -> None:
    program = build_benchmark("gzip")
    print(f"benchmark: {program.name}  ({program.num_instructions} static instructions, "
          f"{program.num_basic_blocks} basic blocks)")

    compilation = compile_program(program, CompilerConfig(), mode="noop")
    print(f"compiler pass: {compilation.instrumentation.total_hints} hints emitted, "
          f"mean request {compilation.mean_requirement:.1f} IQ entries, "
          f"{compilation.analysis_seconds * 1000:.0f} ms analysis time")

    budget = dict(max_instructions=15_000, warmup_instructions=5_000)
    baseline_policy = BaselinePolicy()
    baseline = simulate(program, baseline_policy, **budget)
    baseline_power = build_power_report(baseline, baseline_policy)

    runs = {
        "abella": (program, AbellaPolicy()),
        "software (NOOP)": (compilation.instrumented_program, SoftwareDirectedPolicy("noop")),
    }
    print(f"\n{'technique':18s} {'IPC':>6s} {'IPC loss':>9s} {'IQ occ':>7s} "
          f"{'IQ dyn save':>12s} {'IQ stat save':>13s}")
    print(f"{'baseline':18s} {baseline.ipc:6.2f} {'-':>9s} {baseline.avg_iq_occupancy:7.1f} "
          f"{'-':>12s} {'-':>13s}")
    for name, (prog, policy) in runs.items():
        stats = simulate(prog, policy, **budget)
        savings = power_savings(baseline_power, build_power_report(stats, policy))
        loss = 100 * (1 - stats.ipc / baseline.ipc)
        print(f"{name:18s} {stats.ipc:6.2f} {loss:8.1f}% {stats.avg_iq_occupancy:7.1f} "
              f"{100 * savings.iq_dynamic:11.1f}% {100 * savings.iq_static:12.1f}%")


if __name__ == "__main__":
    main()
