"""fleetscope tests: spans, metrics plane, kernel probes, trend gate.

The contracts (see docs/observability.md): tracing is no-op by default
and leaves zero residue in envelopes when disabled; one trace id
connects driver → enqueue → claim → replay → complete across process
boundaries; enabling telemetry never changes simulation statistics;
probes pick the fastest kernel without touching fingerprints (a result
probed onto any kernel is a pure cache hit for every other); and the
perf-trajectory gate fails a synthetic regression while passing the
repo's real recorded history.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time

import pytest

from repro.harness import ParallelSuiteRunner, RunConfig, SimulationJob
from repro.harness.cache import ResultCache, simulation_fingerprint
from repro.harness.queue import QueueWorker, WorkQueue
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_property,
    percentile,
)
from repro.telemetry import spans as tracing
from repro.telemetry import trend
from repro.uarch.engine import ENGINE_ENV_VAR, available_engines

# The whole module exercises the observability plane; --no-telemetry
# (root conftest) deselects it alongside force-disabling tracing.
pytestmark = pytest.mark.telemetry

TINY_CONFIG = RunConfig(
    benchmarks=("gzip", "mcf"),
    max_instructions=2_500,
    warmup_instructions=500,
)
SIX_CELL_TECHNIQUES = ("baseline", "noop", "abella")


@pytest.fixture(autouse=True)
def _reset_tracing():
    """Module-global recorder/trace-context must never leak across tests."""
    yield
    tracing.disable()
    tracing._trace_stack.clear()


def _job(benchmark="gzip", technique="baseline", **kwargs) -> SimulationJob:
    return SimulationJob(benchmark, technique, TINY_CONFIG, **kwargs)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_are_get_or_create_and_increment(self):
        registry = MetricsRegistry("queue")
        assert registry.counter("enqueued").value == 0
        registry.counter("enqueued").increment()
        registry.counter("enqueued").increment(2)
        assert registry.counter("enqueued").value == 3
        assert registry.counters() == {"enqueued": 3}

    def test_gauges_are_none_until_set(self):
        registry = MetricsRegistry()
        assert registry.gauge("inflight").value is None
        registry.gauge("inflight").set(4)
        assert registry.gauge("inflight").value == 4

    def test_histogram_summary_and_bounded_window(self):
        histogram = Histogram("latency", window=8)
        for value in range(100):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100  # total ever observed
        assert summary["min"] == 92.0  # but the window is bounded
        assert summary["max"] == 99.0
        assert summary["p50"] == pytest.approx(95.5)

    def test_snapshot_has_one_shape(self):
        registry = MetricsRegistry("svc")
        registry.counter("requests").increment()
        registry.gauge("connections").set(2)
        registry.histogram("wait").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["namespace"] == "svc"
        assert snapshot["counters"] == {"requests": 1}
        assert snapshot["gauges"] == {"connections": 2}
        assert snapshot["histograms"]["wait"]["count"] == 1

    def test_kind_clash_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("n")

    def test_counter_property_reads_and_writes_like_an_int(self):
        class Holder:
            hits = counter_property("hits")

            def __init__(self):
                self.metrics = MetricsRegistry("cache")

        holder = Holder()
        assert holder.hits == 0
        holder.hits += 7  # the fold-in idiom the runner uses
        assert holder.hits == 7
        assert holder.metrics.counter("hits").value == 7

    def test_percentile_edge_cases(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_metric_kinds_expose_names(self):
        assert Counter("a").name == "a"
        assert Gauge("b").name == "b"
        assert Histogram("c").name == "c"


# ----------------------------------------------------------------------
# Spans: no-op default, round-trip, trace propagation
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_a_shared_noop(self, tmp_path):
        first = tracing.span("queue.enqueue", fingerprint="f")
        second = tracing.span("worker.replay")
        assert first is second  # one shared object, zero allocation
        with first as span:
            span.set(anything="goes")
        assert not tracing.spans_directory(tmp_path).exists()
        assert tracing.enabled() is False

    def test_span_round_trip_records_schema_fields(self, tmp_path):
        tracing.enable(tmp_path)
        with tracing.span("queue.enqueue", trace="t123", fingerprint="abc"):
            pass
        (record,) = tracing.read_spans(tmp_path)
        assert record["format"] == tracing.SPAN_FORMAT
        assert record["site"] == "queue.enqueue"
        assert record["trace"] == "t123"
        assert record["fingerprint"] == "abc"
        assert record["dur"] >= 0.0
        assert record["pid"] == os.getpid()
        assert record["host"]

    def test_trace_scope_propagates_into_spans(self, tmp_path):
        tracing.enable(tmp_path)
        with tracing.trace_scope() as trace:
            with tracing.span("driver.grid", cells=6):
                pass
        (record,) = tracing.read_spans(tmp_path)
        assert record["trace"] == trace
        assert tracing.current_trace() is None  # scope popped

    def test_maybe_trace_scope_is_noop_while_disabled(self):
        with tracing.maybe_trace_scope():
            assert tracing.current_trace() is None  # no residue possible

    def test_late_trace_delivery_via_set(self, tmp_path):
        # A claim span learns the trace id from the envelope it decodes
        # *inside* the span; set(trace=...) must land in the record.
        tracing.enable(tmp_path)
        with tracing.span("queue.claim", worker="w1") as span:
            span.set(trace="late-id", fingerprint="abc")
        (record,) = tracing.read_spans(tmp_path)
        assert record["trace"] == "late-id"

    def test_exceptions_are_recorded_and_propagated(self, tmp_path):
        tracing.enable(tmp_path)
        with pytest.raises(ValueError):
            with tracing.span("worker.replay", trace="t1"):
                raise ValueError("boom")
        (record,) = tracing.read_spans(tmp_path)
        assert record["error"] == "ValueError"

    def test_read_spans_tolerates_junk(self, tmp_path):
        tracing.enable(tmp_path)
        with tracing.span("queue.enqueue", trace="t1"):
            pass
        tracing.disable()
        directory = tracing.spans_directory(tmp_path)
        (directory / "garbage.jsonl").write_text(
            'not json\n{"site": "queue.complete", "trace": "t2"}\n[1,2]\n',
            encoding="utf-8",
        )
        records = tracing.read_spans(tmp_path)
        assert len(records) == 2  # the real span + the one parsable line

    def test_install_from_env_honours_the_off_values(self, tmp_path, monkeypatch):
        for off in ("", "0"):
            monkeypatch.setenv(tracing.ENV_VAR, off)
            assert tracing.install_from_env(tmp_path) is None
        monkeypatch.setenv(tracing.ENV_VAR, "1")
        recorder = tracing.install_from_env(tmp_path)
        assert recorder is not None and tracing.enabled()

    def test_queue_latency_summary_shape(self, tmp_path):
        tracing.enable(tmp_path)
        for wait, service in ((0.10, 1.0), (0.20, 2.0), (0.30, 3.0)):
            with tracing.span(
                "queue.complete",
                trace="t",
                enqueue_to_claim=wait,
                claim_to_done=service,
            ):
                pass
        with tracing.span("queue.enqueue", trace="t"):
            pass  # non-complete sites must not pollute the rollup
        summary = tracing.queue_latency_summary(tmp_path)
        assert summary["spans"] == 4
        assert summary["enqueue_to_claim"]["count"] == 3
        assert summary["enqueue_to_claim"]["p50"] == pytest.approx(0.20)
        assert summary["claim_to_done"]["p50"] == pytest.approx(2.0)

    def test_queue_latency_summary_empty_tree(self, tmp_path):
        summary = tracing.queue_latency_summary(tmp_path)
        assert summary == {
            "spans": 0,
            "enqueue_to_claim": None,
            "claim_to_done": None,
        }


# ----------------------------------------------------------------------
# Envelope transport and the --status latency view
# ----------------------------------------------------------------------
class TestQueueTelemetry:
    def test_disabled_runs_stamp_no_trace_key(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        envelope = json.loads(
            queue.pending_path(fingerprint).read_text(encoding="utf-8")
        )
        assert "trace" not in envelope  # zero residue while disabled
        assert isinstance(envelope["enqueued_at"], float)  # always stamped

    def test_producer_trace_rides_the_envelope(self, tmp_path):
        tracing.enable(tmp_path)
        queue = WorkQueue(tmp_path, ttl=30)
        with tracing.trace_scope("req-42"):
            fingerprint = queue.enqueue(_job())
        envelope = json.loads(
            queue.pending_path(fingerprint).read_text(encoding="utf-8")
        )
        assert envelope["trace"] == "req-42"

    def test_queue_counters_live_in_a_registry(self, tmp_path):
        queue = WorkQueue(tmp_path, ttl=30)
        queue.enqueue(_job())
        assert queue.enqueued == 1  # the attribute API survives...
        assert queue.metrics.counters()["enqueued"] == 1  # ...over the registry
        snapshot = queue.metrics.snapshot()
        assert snapshot["namespace"] == "queue"
        assert snapshot["counters"]["claimed"] == 0

    def test_status_carries_span_derived_latency_percentiles(self, tmp_path):
        tracing.enable(tmp_path)
        queue = WorkQueue(tmp_path, ttl=30)
        fingerprint = queue.enqueue(_job())
        claimed = queue.claim("w1")
        queue.complete(claimed, {"stats": {"cycles": 1}}, "w1")
        status = queue.status()
        telemetry = status["telemetry"]
        assert telemetry["metrics"]["counters"]["completed"] == 1
        latency = telemetry["latency"]
        assert latency["enqueue_to_claim"]["count"] == 1
        assert latency["enqueue_to_claim"]["p50"] >= 0.0
        assert latency["claim_to_done"]["count"] == 1
        assert fingerprint in queue.list_done()

    def test_result_cache_counters_live_in_a_registry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.misses += 2  # the runner's fold-in idiom
        assert cache.metrics.counters()["misses"] == 2
        assert cache.metrics.snapshot()["namespace"] == "result_cache"


# ----------------------------------------------------------------------
# The acceptance gate: a connected trace, bit-identical statistics
# ----------------------------------------------------------------------
class TestConnectedTrace:
    SITES = (
        "driver.grid",
        "queue.enqueue",
        "queue.claim",
        "worker.replay",
        "queue.complete",
    )

    def test_six_cell_grid_yields_one_connected_trace(
        self, tmp_path, monkeypatch
    ):
        cells = len(TINY_CONFIG.benchmarks) * len(SIX_CELL_TECHNIQUES)
        assert cells == 6

        # Reference run, telemetry disabled: the default-off path.
        monkeypatch.delenv(tracing.ENV_VAR, raising=False)
        disabled = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(tmp_path / "disabled"),
            backend="queue",
            queue_workers=1,
            queue_assist=False,
            queue_poll=0.1,
            queue_ttl=30,
            queue_timeout=300,
        )
        disabled.run_suite(techniques=SIX_CELL_TECHNIQUES)
        assert tracing.read_spans(tmp_path / "disabled") == []

        # Traced run: the driver installs from the environment and the
        # spawned worker subprocess inherits the switch.
        monkeypatch.setenv(tracing.ENV_VAR, "1")
        traced_dir = tmp_path / "traced"
        traced = ParallelSuiteRunner(
            TINY_CONFIG,
            workers=1,
            cache_dir=str(traced_dir),
            backend="queue",
            queue_workers=1,
            queue_assist=False,
            queue_poll=0.1,
            queue_ttl=30,
            queue_timeout=300,
        )
        traced.run_suite(techniques=SIX_CELL_TECHNIQUES)

        records = tracing.read_spans(traced_dir)
        by_site: dict[str, list[dict]] = {}
        for record in records:
            by_site.setdefault(record["site"], []).append(record)
        for site in self.SITES:
            assert site in by_site, f"no {site} span recorded"

        # One grid, one trace id — and it crossed the process boundary:
        # the driver recorded the grid/enqueue spans, the worker
        # subprocess (a different pid) the claim/replay/complete spans.
        (grid_span,) = by_site["driver.grid"]
        trace = grid_span["trace"]
        assert trace
        assert grid_span["cells"] == cells
        assert len(by_site["queue.enqueue"]) == cells
        assert len(by_site["worker.replay"]) == cells
        assert len(by_site["queue.complete"]) == cells
        for site in self.SITES:
            for record in by_site[site]:
                assert record["trace"] == trace, (site, record)
        driver_pids = {r["pid"] for r in by_site["driver.grid"]}
        worker_pids = {r["pid"] for r in by_site["worker.replay"]}
        assert driver_pids.isdisjoint(worker_pids)

        # Observation must not perturb the experiment: grid statistics
        # are bit-identical with telemetry on and off.
        for benchmark in TINY_CONFIG.benchmarks:
            for technique in SIX_CELL_TECHNIQUES:
                assert dataclasses.asdict(
                    traced.result(benchmark, technique).stats
                ) == dataclasses.asdict(
                    disabled.result(benchmark, technique).stats
                ), (benchmark, technique)

        # The span-derived latency view has one sample per cell.
        latency = tracing.queue_latency_summary(traced_dir)
        assert latency["enqueue_to_claim"]["count"] == cells
        assert latency["claim_to_done"]["count"] == cells


# ----------------------------------------------------------------------
# Kernel throughput probes and placement
# ----------------------------------------------------------------------
class TestProbes:
    def test_calibrate_engines_measures_every_available_kernel(self):
        from repro.telemetry.probes import calibrate_engines
        from repro.uarch.engine import get_engine

        rates = calibrate_engines()
        expected = {
            name
            for name in available_engines()
            if get_engine(name).unavailable_reason() is None
        }
        assert set(rates) == expected
        assert "scalar" in rates  # always runnable
        for engine, rate in rates.items():
            assert rate > 0.0, engine

    def test_calibrate_skips_an_unavailable_native_kernel(self, monkeypatch):
        """Per-kernel degradation, not whole-probe failure: the native
        kernel missing its toolchain must cost only its own entry."""
        from repro.telemetry.probes import calibrate_engines
        from repro.uarch.engine import native as native_module

        monkeypatch.setattr(native_module, "_MODULE", None)
        monkeypatch.setattr(
            native_module._COMPILER,
            "unavailable_reason",
            lambda: "no C compiler (cc/gcc/$CC) on PATH",
        )
        rates = calibrate_engines()
        assert "native" not in rates
        assert rates.get("scalar", 0.0) > 0.0

    def test_worker_survives_a_native_probe_failure(self, tmp_path, monkeypatch):
        """The ISSUE's degraded-path criterion: a worker probing a host
        where the native kernel cannot build still publishes rates for
        the kernels that ran and keeps serving."""
        from repro.uarch.engine import native as native_module

        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        monkeypatch.setattr(native_module, "_MODULE", None)
        monkeypatch.setattr(
            native_module._COMPILER,
            "unavailable_reason",
            lambda: "no C compiler (cc/gcc/$CC) on PATH",
        )
        queue = WorkQueue(tmp_path, ttl=30)
        worker = QueueWorker(queue, probe_interval=3600.0)
        worker._maybe_probe(time.time())  # must not raise
        assert "native" not in worker.probes
        assert worker.probes.get("scalar", 0.0) > 0.0
        assert worker.preferred_engine in worker.probes

    def test_fastest_engine_picks_the_max_deterministically(self):
        from repro.telemetry.probes import fastest_engine

        assert fastest_engine({}) is None
        assert fastest_engine({"scalar": 10.0}) == "scalar"
        assert fastest_engine({"scalar": 10.0, "columnar": 20.0}) == "columnar"
        # Ties break on sorted name order, so fleets agree.
        assert fastest_engine({"b": 1.0, "a": 1.0}) == "a"

    def test_worker_probe_picks_fastest_and_result_is_a_pure_cache_hit(
        self, tmp_path, monkeypatch
    ):
        """The placement contract end to end.

        A cell simulated under the scalar kernel is cached; a probing
        worker that auto-picks a different kernel must execute the same
        unpinned job to a bit-identical result under the *same*
        fingerprint — engines are transport, so the scalar-run entry is
        a pure hit for the probed run and vice versa.
        """
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)

        # Scalar reference run, stored under the engine-free fingerprint.
        from repro.harness.parallel import execute_job

        job = _job()
        scalar_payload = execute_job(dataclasses.replace(job, engine="scalar"))
        fingerprint = job.fingerprint()
        assert fingerprint == dataclasses.replace(job, engine="scalar").fingerprint()
        cache = ResultCache(tmp_path)
        from repro.harness.cache import stats_from_dict

        cache.store(
            fingerprint,
            stats_from_dict(scalar_payload["stats"]),
            benchmark=job.benchmark,
            technique=job.technique,
        )

        # A probing worker whose calibration says another kernel is
        # faster (forced, so the test is engine-agnostic and quick).
        engines = available_engines()
        fastest = engines[-1] if len(engines) > 1 else engines[0]
        fake_rates = {
            engine: (9_999.0 if engine == fastest else 1.0) for engine in engines
        }
        from repro.telemetry import probes as kernel_probes

        monkeypatch.setattr(
            kernel_probes, "calibrate_engines", lambda **kwargs: fake_rates
        )

        queue = WorkQueue(tmp_path, ttl=30)
        queue.enqueue(job)  # engine=None: resolves through the probe's pick
        worker = QueueWorker(
            queue, worker_id="prober", max_jobs=1, poll_interval=0.01,
            probe_interval=3600.0,
        )
        assert worker.run() == 1
        assert worker.probes == fake_rates
        assert worker.preferred_engine == fastest
        assert os.environ.get(ENGINE_ENV_VAR) == fastest

        # Same fingerprint, bit-identical statistics: the probed run's
        # marker payload matches the scalar reference exactly, and the
        # cache entry under the scalar-run fingerprint satisfies both.
        marker = queue.done_marker(fingerprint)
        assert marker is not None
        assert marker["payload"]["stats"] == scalar_payload["stats"]
        hits_before = cache.hits
        loaded = cache.load(fingerprint)
        assert loaded is not None
        assert dataclasses.asdict(loaded) == scalar_payload["stats"]
        assert cache.hits == hits_before + 1  # a pure hit, not a re-store

        # The probe results are fleet-visible through worker_stats().
        stats = queue.worker_stats()
        per_host = next(iter(stats["hosts"].values()))
        assert per_host["probes"] == fake_rates
        assert per_host["preferred_engines"] == [fastest]

    def test_operator_pin_outranks_the_probe(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "scalar")
        engines = available_engines()
        fake_rates = {engine: 1.0 for engine in engines}
        fake_rates[engines[-1]] = 9_999.0
        from repro.telemetry import probes as kernel_probes

        monkeypatch.setattr(
            kernel_probes, "calibrate_engines", lambda **kwargs: fake_rates
        )
        queue = WorkQueue(tmp_path, ttl=30)
        worker = QueueWorker(queue, probe_interval=3600.0)
        worker._maybe_probe(time.time())
        assert worker.preferred_engine == engines[-1]  # measured and published
        assert os.environ[ENGINE_ENV_VAR] == "scalar"  # but never overridden

    def test_probe_failure_never_kills_the_worker(self, tmp_path, monkeypatch):
        from repro.telemetry import probes as kernel_probes

        def explode(**kwargs):
            raise RuntimeError("broken kernel on this host")

        monkeypatch.setattr(kernel_probes, "calibrate_engines", explode)
        queue = WorkQueue(tmp_path, ttl=30)
        worker = QueueWorker(queue, probe_interval=3600.0)
        worker._maybe_probe(time.time())  # must not raise
        assert worker.probes == {}
        assert worker.preferred_engine is None


# ----------------------------------------------------------------------
# The perf-trajectory gate
# ----------------------------------------------------------------------
class TestTrendGate:
    FLAT = [100.0, 101.0, 99.0, 100.5, 99.5, 100.0, 100.2]

    def test_flat_history_passes(self):
        evaluation = trend.evaluate_series(self.FLAT, "higher")
        assert evaluation["regressed"] is False

    def test_synthetic_regression_fails_throughput(self):
        values = self.FLAT + [20.0]  # an 80% throughput collapse
        evaluation = trend.evaluate_series(values, "higher")
        assert evaluation["regressed"] is True
        assert evaluation["latest"] == 20.0

    def test_synthetic_regression_fails_wall_clock(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0] + [5.0]  # 5x slower
        evaluation = trend.evaluate_series(values, "lower")
        assert evaluation["regressed"] is True

    def test_improvement_never_fails_either_direction(self):
        faster = trend.evaluate_series(self.FLAT + [500.0], "higher")
        assert faster["regressed"] is False
        quicker = trend.evaluate_series(
            [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 0.1], "lower"
        )
        assert quicker["regressed"] is False

    def test_short_history_is_ungateable_not_failing(self):
        evaluation = trend.evaluate_series([100.0, 20.0], "higher")
        assert evaluation["regressed"] is None

    def test_relative_floor_absorbs_small_noise(self):
        # 30% under the median of a near-zero-MAD history: inside the
        # default 45% relative floor, so noise on a quiet series passes.
        values = [100.0] * 6 + [70.0]
        evaluation = trend.evaluate_series(values, "higher")
        assert evaluation["regressed"] is False

    def test_split_series_defaults_unstamped_entries(self):
        history = [
            # Pre-PR 9 unstamped throughput entry: defaults to scalar.
            {"cycles_per_second_cold": 50_000, "cycles_per_second_warm": 60_000},
            {"engine": "columnar", "cycles_per_second_cold": 30_000},
            {"kind": "queue_grid", "queue_seconds": 1.5},
            {"kind": "service_grid", "service_seconds": 2.5},
            {"malformed": True},
        ]
        series = trend.split_series(history)
        assert series["engine/scalar/cold"]["values"] == [50_000.0]
        assert series["engine/scalar/warm"]["direction"] == "higher"
        assert series["engine/columnar/cold"]["values"] == [30_000.0]
        assert series["queue_grid/seconds"]["direction"] == "lower"
        assert series["service_grid/seconds"]["values"] == [2.5]

    def test_split_series_groups_crossover_entries_per_config_and_kernel(self):
        history = [
            {
                "kind": "crossover",
                "config": "iq512-w32",
                "engine": "columnar",
                "cycles_per_second": 8_000,
            },
            {
                "kind": "crossover",
                "config": "iq512-w32",
                "engine": "native",
                "cycles_per_second": 400_000,
            },
            # Unstamped crossover entry: defaults like the engine series.
            {"kind": "crossover", "cycles_per_second": 55_000},
        ]
        series = trend.split_series(history)
        assert series["crossover/iq512-w32/columnar"]["values"] == [8_000.0]
        assert series["crossover/iq512-w32/columnar"]["direction"] == "higher"
        assert series["crossover/iq512-w32/native"]["values"] == [400_000.0]
        assert series["crossover/table1/scalar"]["values"] == [55_000.0]

    def test_gate_series_returns_none_for_unknown_series(self, tmp_path):
        path = tmp_path / "BENCH_trace.json"
        path.write_text("[]", encoding="utf-8")
        assert trend.gate_series("engine/scalar/cold", path) is None

    def test_cli_fails_on_regression_and_writes_the_report(self, tmp_path):
        trajectory = tmp_path / "BENCH_trace.json"
        entries = [
            {"engine": "scalar", "cycles_per_second_cold": value}
            for value in self.FLAT + [20.0]
        ]
        trajectory.write_text(json.dumps(entries), encoding="utf-8")
        report_path = tmp_path / "trend-report.json"
        exit_code = trend.main(
            [str(trajectory), "--report", str(report_path)]
        )
        assert exit_code == 1
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["regressions"] == ["engine/scalar/cold"]

    def test_cli_passes_a_healthy_trajectory(self, tmp_path):
        trajectory = tmp_path / "BENCH_trace.json"
        entries = [
            {"engine": "scalar", "cycles_per_second_cold": value}
            for value in self.FLAT
        ]
        trajectory.write_text(json.dumps(entries), encoding="utf-8")
        assert trend.main([str(trajectory)]) == 0

    def test_real_recorded_trajectory_passes_the_gate(self):
        # The repo's own committed history must never regress the gate:
        # this is the "passes on the real trajectory" acceptance check.
        if not trend.DEFAULT_TRAJECTORY.exists():
            pytest.skip("no recorded trajectory in this checkout")
        assert trend.main([str(trend.DEFAULT_TRAJECTORY)]) == 0


# ----------------------------------------------------------------------
# Service status surfaces the metrics plane
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    def test_status_op_carries_registry_snapshot_and_queue_latency(
        self, tmp_path
    ):
        from repro.service.client import ServiceClient
        from repro.service.daemon import ExperimentService

        service = ExperimentService(
            tmp_path, config=TINY_CONFIG, poll_floor=0.01, poll_ceiling=0.1
        )
        host, port = service.open()
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        try:
            with ServiceClient(host, port, timeout=60) as probe:
                status = probe.status()
        finally:
            service.stop()
            thread.join(timeout=30)
        snapshot = status["service"]["metrics"]
        assert snapshot["namespace"] == "service"
        # Admission counters pre-register at zero (a status probe is not
        # an admission), and the point-in-time gauges refresh on read.
        assert snapshot["counters"]["requests_accepted"] == 0
        assert snapshot["counters"]["requests_rejected"] == 0
        assert snapshot["gauges"]["connections"] >= 1
        telemetry = status["queue"]["telemetry"]
        assert telemetry["metrics"]["namespace"] == "queue"
        assert set(telemetry["latency"]) == {
            "spans",
            "enqueue_to_claim",
            "claim_to_done",
        }
