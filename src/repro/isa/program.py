"""Static program containers: basic blocks, procedures and whole programs.

A :class:`Program` is the unit the compiler pass (:mod:`repro.core`)
analyses and the simulator (:mod:`repro.uarch`) executes.  Control flow is
expressed structurally: each basic block ends with at most one control-flow
instruction whose ``target`` names another block in the same procedure;
otherwise execution falls through to the next block in procedure order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class ProgramError(Exception):
    """Raised for malformed programs (dangling targets, missing entry, ...)."""


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions with a single entry point.

    Attributes:
        label: block name, unique within its procedure.
        instructions: the instructions in program order.
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> Instruction:
        """Append ``instruction`` and return it (convenient for builders)."""
        self.instructions.append(instruction)
        return instruction

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append every instruction from ``instructions``."""
        self.instructions.extend(instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final control-flow instruction, if the block ends with one."""
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    @property
    def falls_through(self) -> bool:
        """True when execution can continue into the next block in order."""
        term = self.terminator
        if term is None:
            return True
        # Conditional branches fall through on the not-taken path; jumps,
        # returns and halts never fall through.  Calls resume at the next
        # instruction so a block ending in a call falls through.
        return term.is_branch or term.is_call

    def non_hint_instructions(self) -> list[Instruction]:
        """Instructions excluding hint NOOPs (what actually occupies the IQ)."""
        return [instr for instr in self.instructions if not instr.is_hint]

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"    {instr}" for instr in self.instructions)
        return "\n".join(lines)


@dataclass
class Procedure:
    """A procedure: an ordered list of basic blocks with a single entry.

    Attributes:
        name: procedure name, unique within the program.
        blocks: basic blocks in layout order; the first block is the entry.
        is_library: True for library routines.  The paper does not analyse
            library code: before a library call the IQ is allowed to grow to
            its maximum size (section 4.4), and the compiler pass skips the
            body of library procedures.
    """

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    is_library: bool = False

    def add_block(self, label: str) -> BasicBlock:
        """Create, append and return a new basic block named ``label``."""
        if self.find_block(label) is not None:
            raise ProgramError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label=label)
        self.blocks.append(block)
        return block

    def find_block(self, label: str) -> Optional[BasicBlock]:
        """Return the block named ``label`` or ``None``."""
        for block in self.blocks:
            if block.label == label:
                return block
        return None

    def block_index(self, label: str) -> int:
        """Return the layout index of the block named ``label``."""
        for index, block in enumerate(self.blocks):
            if block.label == label:
                return index
        raise ProgramError(f"no block named {label!r} in procedure {self.name}")

    @property
    def entry_block(self) -> BasicBlock:
        """The procedure's entry block (the first block in layout order)."""
        if not self.blocks:
            raise ProgramError(f"procedure {self.name} has no blocks")
        return self.blocks[0]

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in layout order."""
        for block in self.blocks:
            yield from block.instructions

    @property
    def num_instructions(self) -> int:
        """Total static instruction count."""
        return sum(len(block) for block in self.blocks)

    def validate(self) -> None:
        """Check structural invariants (branch targets resolve, labels unique)."""
        labels = [block.label for block in self.blocks]
        if len(labels) != len(set(labels)):
            raise ProgramError(f"duplicate block labels in procedure {self.name}")
        label_set = set(labels)
        for block in self.blocks:
            for instr in block.instructions:
                if instr.target is not None and instr.target not in label_set:
                    raise ProgramError(
                        f"instruction {instr} in {self.name}/{block.label} targets "
                        f"unknown block {instr.target!r}"
                    )

    def __str__(self) -> str:
        header = f"proc {self.name}{' (library)' if self.is_library else ''}:"
        return "\n".join([header] + [str(block) for block in self.blocks])


@dataclass
class Program:
    """A whole program: procedures plus the name of the entry procedure.

    Attributes:
        name: program name (e.g. the synthetic benchmark name).
        procedures: mapping from procedure name to procedure.
        entry: name of the procedure execution starts in.
    """

    name: str
    procedures: dict[str, Procedure] = field(default_factory=dict)
    entry: str = "main"

    def add_procedure(self, procedure: Procedure) -> Procedure:
        """Register ``procedure`` and return it."""
        if procedure.name in self.procedures:
            raise ProgramError(f"duplicate procedure name {procedure.name!r}")
        self.procedures[procedure.name] = procedure
        return procedure

    def new_procedure(self, name: str, is_library: bool = False) -> Procedure:
        """Create, register and return an empty procedure named ``name``."""
        return self.add_procedure(Procedure(name=name, is_library=is_library))

    @property
    def entry_procedure(self) -> Procedure:
        """The procedure execution starts in."""
        try:
            return self.procedures[self.entry]
        except KeyError as exc:
            raise ProgramError(f"program {self.name} has no entry procedure {self.entry!r}") from exc

    def analysable_procedures(self) -> list[Procedure]:
        """Procedures the compiler pass analyses (everything except libraries)."""
        return [proc for proc in self.procedures.values() if not proc.is_library]

    @property
    def num_instructions(self) -> int:
        """Total static instruction count across all procedures."""
        return sum(proc.num_instructions for proc in self.procedures.values())

    @property
    def num_basic_blocks(self) -> int:
        """Total basic-block count across all procedures."""
        return sum(len(proc.blocks) for proc in self.procedures.values())

    def validate(self) -> None:
        """Check whole-program invariants (entry exists, calls resolve, blocks valid)."""
        if self.entry not in self.procedures:
            raise ProgramError(f"program {self.name} has no entry procedure {self.entry!r}")
        for proc in self.procedures.values():
            proc.validate()
            for instr in proc.instructions():
                if instr.is_call and instr.call_target not in self.procedures:
                    raise ProgramError(
                        f"call to unknown procedure {instr.call_target!r} in {proc.name}"
                    )

    def count_opcode(self, opcode: Opcode) -> int:
        """Count static occurrences of ``opcode`` across the whole program."""
        return sum(
            1
            for proc in self.procedures.values()
            for instr in proc.instructions()
            if instr.opcode is opcode
        )

    def __str__(self) -> str:
        return "\n\n".join(str(proc) for proc in self.procedures.values())
