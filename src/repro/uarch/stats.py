"""Simulation statistics and power-event counters.

The timing core records *architectural events*; the power model
(:mod:`repro.power`) turns them into energy numbers.  Keeping the two apart
means a single simulation run can be re-costed under different energy
parameters (used by the calibration tests and the ablation benches).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class SimulationStats:
    """Event counts produced by one simulation run.

    All counters are raw totals over the run; derived metrics (IPC, average
    occupancy, bank-off fractions) are exposed as properties.
    """

    # Progress.
    cycles: int = 0
    committed_instructions: int = 0
    committed_micro_ops: int = 0
    fetched_instructions: int = 0
    dispatched_instructions: int = 0
    issued_instructions: int = 0
    hint_noops_fetched: int = 0
    hint_noops_stripped: int = 0
    tagged_instructions_seen: int = 0

    # Branches.
    branches: int = 0
    branch_mispredicts: int = 0
    ras_mispredicts: int = 0

    # Caches.
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0

    # Issue queue occupancy / power events.
    iq_occupancy_sum: int = 0  # valid entries summed over cycles
    iq_waiting_operand_sum: int = 0  # non-ready operands summed over cycles
    iq_banks_on_sum: int = 0  # enabled banks summed over cycles
    iq_banks_total: int = 0  # configured bank count (for fractions)
    iq_broadcasts: int = 0  # result tag broadcasts
    iq_cmp_full: int = 0  # comparator ops, ungated CAM (all slots)
    iq_cmp_gated: int = 0  # comparator ops, empty/ready operands gated off
    iq_dispatch_writes: int = 0  # entries written at dispatch
    iq_issue_reads: int = 0  # entries read at issue
    iq_dispatch_stall_cycles: int = 0  # cycles dispatch stalled on the IQ limit
    iq_full_stall_cycles: int = 0  # cycles dispatch stalled on physical IQ space

    # Register file.
    rf_reads: int = 0
    rf_writes: int = 0
    rf_live_regs_sum: int = 0
    rf_banks_on_sum: int = 0
    rf_banks_total: int = 0
    rf_inflight_sum: int = 0  # dispatched-not-committed instructions per cycle

    # Per-cycle sample count for the averages above (== cycles normally).
    # The core accumulates these sums event-driven — folding each
    # quantity times the number of cycles it stayed constant at stage
    # boundaries rather than re-reading every structure every cycle —
    # which yields end-of-run values identical to per-cycle sampling.
    sampled_cycles: int = 0

    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (hint NOOPs excluded)."""
        if self.cycles == 0:
            return 0.0
        return self.committed_instructions / self.cycles

    @property
    def avg_iq_occupancy(self) -> float:
        """Mean number of valid issue-queue entries per cycle."""
        if self.sampled_cycles == 0:
            return 0.0
        return self.iq_occupancy_sum / self.sampled_cycles

    @property
    def avg_iq_banks_on(self) -> float:
        """Mean number of enabled issue-queue banks per cycle."""
        if self.sampled_cycles == 0:
            return 0.0
        return self.iq_banks_on_sum / self.sampled_cycles

    @property
    def iq_banks_off_fraction(self) -> float:
        """Fraction of bank-cycles spent turned off."""
        if self.sampled_cycles == 0 or self.iq_banks_total == 0:
            return 0.0
        total = self.sampled_cycles * self.iq_banks_total
        return 1.0 - self.iq_banks_on_sum / total

    @property
    def avg_rf_banks_on(self) -> float:
        """Mean number of enabled register-file banks per cycle."""
        if self.sampled_cycles == 0:
            return 0.0
        return self.rf_banks_on_sum / self.sampled_cycles

    @property
    def rf_banks_off_fraction(self) -> float:
        """Fraction of register-file bank-cycles spent turned off."""
        if self.sampled_cycles == 0 or self.rf_banks_total == 0:
            return 0.0
        total = self.sampled_cycles * self.rf_banks_total
        return 1.0 - self.rf_banks_on_sum / total

    @property
    def avg_inflight(self) -> float:
        """Mean dispatched-but-not-committed instructions per cycle."""
        if self.sampled_cycles == 0:
            return 0.0
        return self.rf_inflight_sum / self.sampled_cycles

    @property
    def branch_mispredict_rate(self) -> float:
        """Mispredicted fraction of executed conditional branches."""
        if self.branches == 0:
            return 0.0
        return self.branch_mispredicts / self.branches

    @property
    def l1d_miss_rate(self) -> float:
        """L1 data-cache miss rate."""
        if self.l1d_accesses == 0:
            return 0.0
        return self.l1d_misses / self.l1d_accesses

    def merged_with(self, other: "SimulationStats") -> "SimulationStats":
        """This run's counters plus ``other``'s (see :func:`merge_stats`)."""
        return merge_stats((self, other))

    def summary(self) -> dict[str, float]:
        """Compact dictionary of the headline metrics (for reports/tests)."""
        return {
            "cycles": float(self.cycles),
            "instructions": float(self.committed_instructions),
            "ipc": self.ipc,
            "avg_iq_occupancy": self.avg_iq_occupancy,
            "iq_banks_off_fraction": self.iq_banks_off_fraction,
            "rf_banks_off_fraction": self.rf_banks_off_fraction,
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "l1d_miss_rate": self.l1d_miss_rate,
            "avg_inflight": self.avg_inflight,
        }


def merge_stats(parts: Sequence[SimulationStats]) -> SimulationStats:
    """Stitch the statistics of consecutive measure spans into one run.

    Every raw counter is a sum over the measured region, so stitching is
    counter-wise addition; the derived properties (IPC, occupancy
    averages, bank-off fractions) then fall out of the merged sums.  The
    two configuration constants (``iq_banks_total``/``rf_banks_total``)
    must agree across parts — they describe the machine, not the run.
    ``extra`` entries are summed key-wise.

    Used by window sharding (:mod:`repro.harness.shard`): when shard
    spans partition a sequential run's measured region and each shard
    warms up over the full preceding trace, the merged statistics are
    bit-identical to the sequential run's.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("merge_stats needs at least one part")
    first = parts[0]
    merged = SimulationStats(
        iq_banks_total=first.iq_banks_total, rf_banks_total=first.rf_banks_total
    )
    skip = {"iq_banks_total", "rf_banks_total", "extra"}
    names = [f.name for f in dataclasses.fields(SimulationStats) if f.name not in skip]
    for part in parts:
        if (
            part.iq_banks_total != first.iq_banks_total
            or part.rf_banks_total != first.rf_banks_total
        ):
            raise ValueError("cannot merge statistics from different machines")
        for name in names:
            setattr(merged, name, getattr(merged, name) + getattr(part, name))
        for key, value in part.extra.items():
            merged.extra[key] = merged.extra.get(key, 0) + value
    return merged
