"""Trace pre-decode and replay: flat arrays instead of object streams.

The timing core is trace-driven, and the committed dynamic instruction
stream is a pure function of (program, instruction budget): no timing
decision ever feeds back into architectural state.  This module therefore
runs the functional emulator **once** per (program, budget) and lowers the
stream into a :class:`DecodedTrace` — parallel flat arrays holding, per
dynamic instruction, the program counter, the next PC, the branch outcome,
the effective memory address, and the pre-decoded timing attributes
(classification flags, execution latency, functional-unit class ordinal,
issue-queue tag, rename operand specs).  The per-cycle hot path in
:mod:`repro.uarch.core` then *replays* these arrays by index: no
interpreter dispatch, no attribute chains through
``DynamicInstruction.static``, and no per-instruction object allocation
remain on the timing loop.

Three reuse tiers sit in front of the emulator:

1. an **in-process memo** keyed by program identity and budget, so every
   technique simulated against the same program object shares one
   emulation (the (benchmark × technique) grid emulates each benchmark
   once, not once per technique);
2. an optional **on-disk cache** (:class:`TraceCache`), content-addressed
   like :mod:`repro.harness.cache`: the key digests the program text, the
   instruction budget and the emulator's own source bytes, so editing the
   emulator (or regenerating a workload with different traits) can never
   resurrect a stale trace.  Only the emulation *results* (pc, next_pc,
   taken, mem_address) are persisted; the pre-decoded attributes are
   recomputed from the program on load, which keeps the format small and
   immune to decode-layer changes;
3. **live emulation** (``live=True`` or the ``REPRO_LIVE_EMULATION``
   environment variable), which bypasses both tiers and re-runs the
   interpreter — the reference path the equivalence tests compare against.

Windowed streaming (:func:`get_trace_stream`) sits on top of the same
tiers: budgets above the window size are lowered window by window — the
emulator yields column chunks and each chunk is decoded independently.
A warm cache reads and validates its compact encoded payload up front
(25 bytes per instruction; the header's per-window offset table keeps
windows independently addressable for future partial readers) and then
decodes it window by window, re-chunked to the requesting run's window
size — only the expensive decoded form is ever lazy, and only it is
bounded by the window.  The replay core consumes the resulting
:class:`TraceWindowStream` forward-only and releases windows as it
retires past them, so peak decoded-trace memory is bounded by the window
size (default :data:`~repro.uarch.config.DEFAULT_TRACE_WINDOW_ENTRIES`)
at any instruction budget.  Statistics are bit-identical for every window
size, including 1.  The streaming path never memoises *decoded* traces —
the whole point is not holding them — but it does memoise the compact
encoded columns (25 bytes per instruction), so a grid still emulates each
benchmark once per process even without a disk cache.

Module-level :data:`trace_events` counters record emulations, memo hits
and disk hits/misses/stores so tests can assert that a warm cache skips
re-emulation entirely.
"""

from __future__ import annotations

import array
import functools
import hashlib
import json
import os
import sys
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Optional

from repro.atomicio import publish_atomically
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, default_latency, fu_class
from repro.uarch.config import DEFAULT_TRACE_WINDOW_ENTRIES
from repro.uarch.emulator import DynamicInstruction, FunctionalEmulator, ProgramLayout
from repro.uarch.functional_units import FU_INDEX

#: Bump when the on-disk payload layout changes.  Version 2: windowed
#: payloads — the header carries per-window entry counts and byte offsets
#: so windows load independently; version-1 files (monolithic, no window
#: table) are treated as misses and re-emulated.
TRACE_FORMAT_VERSION = 2

#: Bytes per stored dynamic instruction: three little-endian ``int64``
#: columns (pc, next_pc, mem_address) plus one taken byte.
_ENTRY_BYTES = 25

#: Trace-cache directories that already warned about degraded (store
#: publication failing) operation this process; one warning each.
_DEGRADED_STORE_WARNED: set[str] = set()

# Per-instruction classification flags (one byte per dynamic instruction).
F_HINT = 1
F_NOP = 2
F_BRANCH = 4
F_CALL = 8
F_RET = 16
F_LOAD = 32
F_STORE = 64
#: Any instruction that must consult the branch predictor at fetch.
F_CONTROL = F_BRANCH | F_CALL | F_RET

#: Counters for tests and reports: how often the emulator actually ran
#: versus how often a decoded trace was reused.
trace_events: dict[str, int] = {
    "emulations": 0,
    "memo_hits": 0,
    "disk_hits": 0,
    "disk_misses": 0,
    "disk_stores": 0,
}


def reset_trace_events() -> None:
    """Zero the :data:`trace_events` counters (test isolation)."""
    for key in trace_events:
        trace_events[key] = 0


def _decode_column_windows(
    columns: tuple, instr_by_pc: dict, window_size: Optional[int]
) -> Iterable[DecodedTrace]:
    """Lazily decode concatenated emulation columns into replay windows.

    ``columns`` is the compact ``(pcs, next_pcs, mems, taken)`` tuple (25
    bytes per instruction); only one ``window_size``-sized window exists
    in decoded form at a time (None or 0: a single window).
    """
    pcs, next_pcs, mems, taken = columns
    length = len(pcs)
    step = window_size if window_size and window_size > 0 else (length or 1)

    def _decode() -> Iterable[DecodedTrace]:
        for start in range(0, length, step):
            stop = min(start + step, length)
            window_pcs = pcs[start:stop]
            yield DecodedTrace.from_entries(
                (instr_by_pc[pc] for pc in window_pcs),
                window_pcs,
                next_pcs[start:stop],
                taken[start:stop],
                mems[start:stop],
            )

    return _decode()


class DecodedTrace:
    """The committed dynamic instruction stream as parallel flat arrays.

    Every array has one element per committed dynamic instruction; the
    sequence number *is* the index.  ``statics`` holds the unique static
    :class:`~repro.isa.instruction.Instruction` objects (needed only off
    the hot path: hint payloads and debugging), referenced through
    ``static_idx``.

    Attributes:
        length: number of dynamic instructions.
        pc / next_pc: instruction address and successor address.
        taken: 1 when a control transfer was taken (bytearray).
        mem_addr: effective address for loads/stores, 0 otherwise.
        flags: per-instruction classification bits (``F_*`` constants).
        latency: base execution latency in cycles (bytearray).
        fu_idx: functional-unit class ordinal (``FU_ORDER`` index).
        iq_tag: Extension/Improved issue-queue tag or None.
        rename_specs: per-instruction shared tuples
            ``(int_src_idx, fp_src_idx, int_dest_idx, fp_dest_idx)`` of
            architectural register indices, precomputed per static
            instruction so rename never touches ``Reg`` objects.
    """

    __slots__ = (
        "length",
        "statics",
        "static_idx",
        "pc",
        "next_pc",
        "taken",
        "mem_addr",
        "flags",
        "latency",
        "fu_idx",
        "iq_tag",
        "rename_specs",
    )

    def __init__(self) -> None:
        self.length = 0
        self.statics: list[Instruction] = []
        self.static_idx: list[int] = []
        self.pc: list[int] = []
        self.next_pc: list[int] = []
        self.taken = bytearray()
        self.mem_addr: list[int] = []
        self.flags = bytearray()
        self.latency = bytearray()
        self.fu_idx = bytearray()
        self.iq_tag: list[Optional[int]] = []
        self.rename_specs: list[tuple] = []

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------
    @staticmethod
    def _static_decode(instr: Instruction) -> tuple:
        """Pre-decode one static instruction into hot-path attributes.

        Returns ``(flags, latency, fu_ordinal, iq_tag, rename_spec)``.
        """
        opcode = instr.opcode
        flags = 0
        if instr.is_hint:
            flags |= F_HINT
        if opcode is Opcode.NOP:
            flags |= F_NOP
        if instr.is_branch:
            flags |= F_BRANCH
        if instr.is_call:
            flags |= F_CALL
        if instr.is_return:
            flags |= F_RET
        if instr.is_load:
            flags |= F_LOAD
        if instr.is_store:
            flags |= F_STORE
        int_srcs = tuple(reg.index for reg in instr.srcs if not reg.is_fp)
        fp_srcs = tuple(reg.index for reg in instr.srcs if reg.is_fp)
        int_dests = tuple(reg.index for reg in instr.dests if not reg.is_fp)
        fp_dests = tuple(reg.index for reg in instr.dests if reg.is_fp)
        return (
            flags,
            default_latency(opcode),
            FU_INDEX[fu_class(opcode)],
            instr.iq_tag,
            (int_srcs, fp_srcs, int_dests, fp_dests),
        )

    @classmethod
    def from_entries(
        cls,
        statics_per_entry: Iterable[Instruction],
        pcs: list[int],
        next_pcs: list[int],
        takens: Iterable[int],
        mem_addrs: list[int],
    ) -> "DecodedTrace":
        """Build a trace from per-entry statics plus emulation results."""
        trace = cls()
        index_of: dict[int, int] = {}
        statics = trace.statics
        static_idx = trace.static_idx
        idx_append = static_idx.append
        index_get = index_of.get
        decoded: list[tuple] = []  # per unique static
        static_decode = cls._static_decode
        for instr in statics_per_entry:
            key = id(instr)
            sidx = index_get(key)
            if sidx is None:
                sidx = len(statics)
                index_of[key] = sidx
                statics.append(instr)
                decoded.append(static_decode(instr))
            idx_append(sidx)
        # Scatter the per-static attributes per entry with C-level maps.
        if decoded:
            flags_by, lat_by, fu_by, tag_by, spec_by = zip(*decoded)
            trace.flags = bytearray(map(flags_by.__getitem__, static_idx))
            trace.latency = bytearray(map(lat_by.__getitem__, static_idx))
            trace.fu_idx = bytearray(map(fu_by.__getitem__, static_idx))
            trace.iq_tag = list(map(tag_by.__getitem__, static_idx))
            trace.rename_specs = list(map(spec_by.__getitem__, static_idx))
        trace.pc = list(pcs)
        trace.next_pc = list(next_pcs)
        trace.taken = bytearray(1 if t else 0 for t in takens)
        trace.mem_addr = list(mem_addrs)
        trace.length = len(trace.pc)
        return trace

    @classmethod
    def from_dynamic_stream(
        cls, dyns: Iterable[DynamicInstruction]
    ) -> "DecodedTrace":
        """Lower a :class:`DynamicInstruction` stream into flat arrays."""
        statics: list[Instruction] = []
        pcs: list[int] = []
        next_pcs: list[int] = []
        takens: list[int] = []
        mems: list[int] = []
        for dyn in dyns:
            statics.append(dyn.static)
            pcs.append(dyn.pc)
            next_pcs.append(dyn.next_pc)
            takens.append(1 if dyn.taken else 0)
            mems.append(dyn.mem_address if dyn.mem_address is not None else 0)
        return cls.from_entries(statics, pcs, next_pcs, takens, mems)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def _emulator_code_digest() -> str:
    """Digest of every source module the emulated stream depends on.

    The stored arrays are a function of the emulator's semantics — which
    include the ISA definitions (opcodes, register constants, instruction
    and program structure), not just ``emulator.py`` — and the decode
    layer defines what the replay core reads back.  Any of them changing
    must invalidate every persisted trace.
    """
    from repro.isa import instruction, opcodes, program, registers
    from repro.uarch import emulator as emulator_module

    digest = hashlib.sha256()
    for module in (emulator_module, instruction, opcodes, program, registers):
        digest.update(Path(module.__file__).read_bytes())
    digest.update(Path(__file__).read_bytes())
    return digest.hexdigest()


def program_digest(program) -> str:
    """SHA-256 over the program's full static content, in layout order.

    Covers everything the emulator reads: procedure order and names,
    library flags, block labels, and for every instruction the opcode,
    operand registers, immediate, control targets, hint payload and
    issue-queue tag.  Two programs with identical digests produce
    identical dynamic streams under identical budgets.

    Deliberately *not* memoised by object identity: programs may be
    mutated in place between simulations (``build_benchmark(fresh=True)``
    exists exactly for that), and an identity-keyed memo would keep
    serving the pre-mutation digest.  The walk is linear in static size
    and negligible next to a simulation.
    """
    digest = hashlib.sha256()
    feed = digest.update
    feed(repr(program.entry).encode())
    for procedure in program.procedures.values():
        feed(repr((procedure.name, procedure.is_library)).encode())
        for block in procedure.blocks:
            feed(repr(block.label).encode())
            for instr in block.instructions:
                feed(
                    repr(
                        (
                            instr.opcode.value,
                            tuple((r.index, r.is_fp) for r in instr.dests),
                            tuple((r.index, r.is_fp) for r in instr.srcs),
                            instr.imm,
                            instr.target,
                            instr.call_target,
                            instr.hint_value,
                            instr.iq_tag,
                        )
                    ).encode()
                )
    return digest.hexdigest()


def _fingerprint_from_digest(digest: str, max_instructions: int) -> str:
    payload = {
        "format": TRACE_FORMAT_VERSION,
        "emulator": _emulator_code_digest(),
        "program": digest,
        "max_instructions": max_instructions,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def trace_fingerprint(program, max_instructions: int) -> str:
    """Content hash identifying one decoded trace (the disk-cache key)."""
    return _fingerprint_from_digest(program_digest(program), max_instructions)


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
class TraceCache:
    """Windowed, content-addressed binary cache of emulation results.

    On-disk layout (format 2): one file per trace, named
    ``<fingerprint>.trace.bin``, holding a one-line JSON header followed
    by a binary payload.  The header records the total entry count, the
    window size the trace was stored with, and two parallel lists —
    ``windows`` (entries per window) and ``offsets`` (each window's byte
    offset into the payload) — so every window is independently
    addressable.  Each window's blob is its raw little-endian ``int64``
    ``pc`` / ``next_pc`` / ``mem_address`` columns followed by one
    ``taken`` byte per entry (25 bytes per instruction).  Only emulation
    results are persisted; static instructions are re-resolved from the
    program's deterministic layout on load and the timing attributes
    re-decoded per window, so the payload stays compact and decode-layer
    changes need no format bump.

    Any malformation — a missing or stale-format header, an inconsistent
    window table, a truncated payload, a pc that doesn't resolve in the
    program — is a clean miss: the trace is re-emulated and re-stored,
    never partially trusted.  A *corrupt* file (one that was read
    successfully but failed validation) is additionally moved aside to
    ``quarantine/`` inside the cache directory — visible for
    post-mortem, swept by ``cache gc`` on the consumed-marker age bound,
    and out of the way so the re-store lands cleanly; a file that merely
    failed to *read* (EIO, permissions) is left in place, since it may
    be intact and the fault transient.  A store whose publication fails
    (read-only or full directory) degrades to a counted no-op with one
    warning per directory: traces are pure acceleration, so losing the
    persistence must never fail the simulation that produced them.

    Writes are atomic (temp file + ``os.replace``), making one directory
    safe to share between concurrent workers — the same discipline as
    :class:`repro.harness.cache.ResultCache`.  With ``max_bytes`` set,
    every store prunes least-recently-used traces until the directory
    fits under the cap (hits refresh recency via file mtimes, mirroring
    ``ResultCache.max_entries``); the freshly stored file is never the
    victim.

    Attributes:
        directory: cache root (created on first store).
        max_bytes: directory size cap (None means unbounded, the default).
        hits / misses / stores / evictions: counters for tests and the
            ``--cache-stats`` report.
    """

    def __init__(
        self, directory: str | os.PathLike, max_bytes: Optional[int] = None
    ):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be a positive integer or None")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.quarantined = 0
        self.degraded_stores = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.trace.bin"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt trace aside — visible, gc-swept, never re-read.

        Mirrors ``ResultCache._quarantine``: without the move the bad
        file keeps the fingerprint's slot, so the re-emulated trace
        could never be re-stored past some failure modes and every
        future lookup would re-parse the corruption.
        """
        target = self.directory / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            self.quarantined += 1
        except OSError:  # pragma: no cover - hostile or raced directory
            pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read_columns(self, fingerprint: str) -> tuple[tuple, Path]:
        """Parse and fully validate one stored trace.

        Returns ``(columns, path)`` where ``columns`` is the concatenated
        ``(pcs, next_pcs, mems, taken)`` tuple, raising on any
        malformation (stale format, inconsistent window table, truncated
        payload).  The whole payload is read up front — it is compact, 25
        bytes per instruction — so later per-window decoding can never
        fail halfway through a replay; readers re-chunk the columns to
        whatever window size their run requests, so the stored layout
        never dictates replay memory.
        """
        path = self.path_for(fingerprint)
        with open(path, "rb") as handle:
            header = json.loads(handle.readline())
            if header.get("format") != TRACE_FORMAT_VERSION:
                raise ValueError("stale trace format")
            length = header["length"]
            counts = header["windows"]
            offsets = header["offsets"]
            payload = handle.read()
        if not isinstance(counts, list) or not isinstance(offsets, list):
            raise ValueError("malformed window table")
        if len(counts) != len(offsets) or sum(counts) != length:
            raise ValueError("inconsistent window table")
        if len(payload) != _ENTRY_BYTES * length:
            raise ValueError("truncated trace payload")
        swap = header["byteorder"] != sys.byteorder
        pcs = array.array("q")
        next_pcs = array.array("q")
        mems = array.array("q")
        taken = bytearray()
        expected_offset = 0
        for count, offset in zip(counts, offsets):
            if count < 0 or offset != expected_offset:
                raise ValueError("inconsistent window table")
            expected_offset += _ENTRY_BYTES * count
            word_bytes = 8 * count
            pcs.frombytes(payload[offset : offset + word_bytes])
            next_pcs.frombytes(payload[offset + word_bytes : offset + 2 * word_bytes])
            mems.frombytes(payload[offset + 2 * word_bytes : offset + 3 * word_bytes])
            taken.extend(
                payload[offset + 3 * word_bytes : offset + 3 * word_bytes + count]
            )
        if swap:
            for arr in (pcs, next_pcs, mems):
                arr.byteswap()
        return (pcs, next_pcs, mems, taken), path

    def _open_validated(self, fingerprint: str, program) -> Optional[tuple]:
        """Read, validate and pc-resolve a stored trace; None on a miss.

        A stored pc that doesn't resolve to a static instruction of this
        program means corruption (or a fingerprint collision) and is a
        miss like any other malformed payload, forcing a clean
        re-emulation.  Hits refresh the file's mtime (LRU recency).
        """
        try:
            columns, path = self._read_columns(fingerprint)
            instr_by_pc = _instructions_by_pc(program)
            if not set(columns[0]) <= instr_by_pc.keys():
                raise ValueError("unresolvable pc in stored trace")
        except (FileNotFoundError, OSError):
            # Missing, or unreadable right now: plain miss, leave the
            # file (if any) alone — it may be intact under a transient
            # read error.
            self.misses += 1
            trace_events["disk_misses"] += 1
            return None
        except (
            ValueError,
            KeyError,
            TypeError,
            UnicodeDecodeError,
            json.JSONDecodeError,
        ):
            # Validation failures only arise for a file that *was* read:
            # genuine corruption (or a fingerprint collision) — set it
            # aside so the re-store lands cleanly.
            self._quarantine(self.path_for(fingerprint))
            self.misses += 1
            trace_events["disk_misses"] += 1
            return None
        self.hits += 1
        trace_events["disk_hits"] += 1
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:  # pragma: no cover - concurrent eviction
            pass
        return columns, instr_by_pc

    def load(self, fingerprint: str, program) -> Optional[DecodedTrace]:
        """Rebuild the full decoded trace for ``fingerprint``; None on a miss."""
        opened = self._open_validated(fingerprint, program)
        if opened is None:
            return None
        (pcs, next_pcs, mems, taken), instr_by_pc = opened
        return DecodedTrace.from_entries(
            (instr_by_pc[pc] for pc in pcs), pcs, next_pcs, taken, mems
        )

    def open_windows(
        self, fingerprint: str, program, window_size: Optional[int] = None
    ) -> Optional[Iterable[DecodedTrace]]:
        """A lazy iterator of decoded windows; None on a miss.

        The stored columns are re-chunked to ``window_size`` (None or 0:
        one window), whatever layout the file was stored with — a trace
        warmed monolithically or at a different window size still replays
        under the *requesting* run's memory bound.  Validation happens
        entirely up front (see :meth:`_read_columns`), so only the
        expensive decoded form — flags, rename specs, static references —
        is built lazily, one window at a time, as the replay core
        consumes the stream.
        """
        opened = self._open_validated(fingerprint, program)
        if opened is None:
            return None
        columns, instr_by_pc = opened
        return _decode_column_windows(columns, instr_by_pc, window_size)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def open_store(
        self, fingerprint: str, window_size: Optional[int] = None
    ) -> "TraceWindowWriter":
        """A writer that accumulates windows and commits one atomic file."""
        return TraceWindowWriter(self, fingerprint, window_size)

    def store(
        self, fingerprint: str, trace: DecodedTrace, window_size: Optional[int] = None
    ) -> Path:
        """Atomically persist ``trace`` under ``fingerprint``.

        ``window_size`` splits the payload into independently loadable
        windows; None stores the whole trace as a single window.
        """
        writer = self.open_store(fingerprint, window_size)
        length = trace.length
        step = window_size if window_size and window_size > 0 else (length or 1)
        for start in range(0, length, step):
            stop = min(start + step, length)
            writer.add(
                trace.pc[start:stop],
                trace.next_pc[start:stop],
                trace.taken[start:stop],
                trace.mem_addr[start:stop],
            )
        return writer.commit()

    # ------------------------------------------------------------------
    # Bounding and reporting
    # ------------------------------------------------------------------
    def _entry_paths(self) -> list[Path]:
        # Exclude in-flight (or orphaned) ``.tmp-*`` writer files.
        if not self.directory.is_dir():
            return []
        return [
            path
            for path in self.directory.glob("*.trace.bin")
            if not path.name.startswith(".")
        ]

    def _prune(self, protect: Optional[Path] = None) -> None:
        """Evict least-recently-used traces until the byte cap is met.

        ``protect`` (the file a store just wrote) is never evicted, so a
        single trace larger than the cap does not immediately evict
        itself and thrash.
        """
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        entries.sort()
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total -= size
            self.evictions += 1

    def cache_stats(self) -> dict:
        """Size and traffic summary for reports (``--cache-stats``)."""
        paths = self._entry_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                pass
        return {
            "directory": str(self.directory),
            "traces": len(paths),
            "total_bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "degraded_stores": self.degraded_stores,
        }

    def __len__(self) -> int:
        return len(self._entry_paths())


class TraceWindowWriter:
    """Accumulates encoded windows for one atomic :class:`TraceCache` store.

    Window blobs are buffered in their compact encoded form (25 bytes per
    instruction), so an in-flight store costs megabytes at worst — never
    the decoded trace's hundreds of bytes per instruction.  Nothing
    touches the cache directory until :meth:`commit`; abandoning the
    writer (for example a replay cut short by ``max_cycles``) therefore
    stores nothing.
    """

    def __init__(
        self, cache: TraceCache, fingerprint: str, window_size: Optional[int]
    ):
        self._cache = cache
        self._fingerprint = fingerprint
        self._window_size = window_size
        self._blobs: list[bytes] = []
        self._counts: list[int] = []

    def add(self, pcs, next_pcs, takens, mems) -> None:
        """Append one window's emulation columns (taken may be bools)."""
        self._blobs.append(
            b"".join(
                (
                    array.array("q", pcs).tobytes(),
                    array.array("q", next_pcs).tobytes(),
                    array.array("q", mems).tobytes(),
                    bytes(bytearray(1 if t else 0 for t in takens)),
                )
            )
        )
        self._counts.append(len(pcs))

    def commit(self) -> Path:
        """Assemble header + payload and atomically publish the file."""
        cache = self._cache
        offsets: list[int] = []
        offset = 0
        for count in self._counts:
            offsets.append(offset)
            offset += _ENTRY_BYTES * count
        header = {
            "format": TRACE_FORMAT_VERSION,
            "length": sum(self._counts),
            "window_size": self._window_size,
            "byteorder": sys.byteorder,
            "windows": self._counts,
            "offsets": offsets,
        }

        def _write(handle) -> None:
            handle.write(json.dumps(header, separators=(",", ":")).encode())
            handle.write(b"\n")
            for blob in self._blobs:
                handle.write(blob)

        path = cache.path_for(self._fingerprint)
        try:
            publish_atomically(path, _write, binary=True)
        except OSError as error:
            # Traces are pure acceleration: a directory that stopped
            # accepting writes (read-only remount, disk full, an
            # injected fault) costs a re-emulation next run, never the
            # simulation that produced this trace.  Warn once per
            # directory, count it, and report the intended path.
            cache.degraded_stores += 1
            directory_key = str(cache.directory)
            if directory_key not in _DEGRADED_STORE_WARNED:
                _DEGRADED_STORE_WARNED.add(directory_key)
                warnings.warn(
                    f"trace cache {directory_key} is not accepting writes "
                    f"({error}); traces will be re-emulated until it recovers",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return path
        cache.stores += 1
        trace_events["disk_stores"] += 1
        cache._prune(protect=path)
        return path


def _instructions_by_pc(program) -> dict[int, Instruction]:
    """Map every static instruction's layout PC back to the instruction.

    The layout is deterministic for a given program, so the PCs stored on
    disk resolve to the same statics in any process — unlike instruction
    ``uid``s, which are assigned by a process-local counter.
    """
    layout = ProgramLayout.for_program(program)
    by_uid: dict[int, Instruction] = {}
    for procedure in program.procedures.values():
        for block in procedure.blocks:
            for instr in block.instructions:
                by_uid[instr.uid] = instr
    return {pc: by_uid[uid] for uid, pc in layout.instruction_pc.items()}


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
def emulate_trace(program, max_instructions: int) -> DecodedTrace:
    """Run the functional emulator and lower its stream (always live)."""
    trace_events["emulations"] += 1
    emulator = FunctionalEmulator(program)
    statics, pcs, next_pcs, takens, mems = emulator.run_collect(max_instructions)
    return DecodedTrace.from_entries(
        statics,
        pcs,
        next_pcs,
        takens,
        [mem if mem is not None else 0 for mem in mems],
    )


#: In-process memo of decoded traces, keyed by (program content digest,
#: budget) so in-place program mutation can never resurface a stale
#: trace.  Bounded: decoded traces are large, and a long-lived grid run
#: touches many (program, budget) pairs exactly once each after warm-up.
_MEMO_CAPACITY = 8
_trace_memo: "OrderedDict[tuple[str, int], DecodedTrace]" = OrderedDict()

#: In-process memo of *encoded* emulation columns for the streaming path,
#: keyed like :data:`_trace_memo`.  At 25 bytes per instruction it
#: preserves the decode-memory bound while restoring the
#: emulate-once-per-benchmark guarantee when budgets exceed the window
#: and no disk cache is configured (every cell of an uncached grid would
#: otherwise re-emulate).
_COLUMN_MEMO_CAPACITY = 8
_column_memo: "OrderedDict[tuple[str, int], tuple]" = OrderedDict()


def _memoise_columns(key: tuple, columns: tuple) -> None:
    _column_memo[key] = columns
    while len(_column_memo) > _COLUMN_MEMO_CAPACITY:
        _column_memo.popitem(last=False)


def clear_trace_memo() -> None:
    """Drop every memoised decoded trace and column set (test isolation)."""
    _trace_memo.clear()
    _column_memo.clear()


def get_decoded_trace(
    program,
    max_instructions: int,
    cache: Optional[TraceCache] = None,
    live: Optional[bool] = None,
) -> DecodedTrace:
    """The decoded trace for (program, budget), reusing every tier allowed.

    Args:
        program: the IR program to (re)emulate.
        max_instructions: dynamic instruction budget.
        cache: optional on-disk :class:`TraceCache`.
        live: force a fresh emulation, bypassing the memo and the disk
            cache (the reference path).  Defaults to the
            ``REPRO_LIVE_EMULATION`` environment variable; an explicit
            ``False`` overrides the variable.
    """
    if live is None:
        live = bool(os.environ.get("REPRO_LIVE_EMULATION"))
    if live:
        return emulate_trace(program, max_instructions)
    digest = program_digest(program)
    key = (digest, max_instructions)
    hit = _trace_memo.get(key)
    if hit is not None:
        trace_events["memo_hits"] += 1
        _trace_memo.move_to_end(key)
        return hit
    trace: Optional[DecodedTrace] = None
    if cache is not None:
        fingerprint = _fingerprint_from_digest(digest, max_instructions)
        trace = cache.load(fingerprint, program)
    if trace is None:
        trace = emulate_trace(program, max_instructions)
        if cache is not None:
            cache.store(fingerprint, trace)
    _trace_memo[key] = trace
    while len(_trace_memo) > _MEMO_CAPACITY:
        _trace_memo.popitem(last=False)
    return trace


# ----------------------------------------------------------------------
# Column access and entry spans (window sharding)
# ----------------------------------------------------------------------
def _columns_from_trace(trace: DecodedTrace) -> tuple:
    """Re-encode a decoded trace into compact emulation columns."""
    return (
        array.array("q", trace.pc),
        array.array("q", trace.next_pc),
        array.array("q", trace.mem_addr),
        bytearray(trace.taken),
    )


def get_trace_columns(
    program,
    max_instructions: int,
    cache: Optional[TraceCache] = None,
    live: Optional[bool] = None,
) -> tuple:
    """The compact ``(pcs, next_pcs, mems, taken)`` columns for a trace.

    Reuses the same tiers as :func:`get_trace_stream` — the in-process
    column/decoded memos, then the disk cache, then one fresh emulation
    that populates both — but returns the raw 25-byte-per-instruction
    columns instead of decoded windows.  This is the substrate of window
    sharding (:mod:`repro.harness.shard`): a shard slices an arbitrary
    entry span out of the columns and decodes only that span.
    """
    if live is None:
        live = bool(os.environ.get("REPRO_LIVE_EMULATION"))
    digest = program_digest(program)
    key = (digest, max_instructions)
    fingerprint: Optional[str] = None
    if not live:
        columns = _column_memo.get(key)
        if columns is not None:
            trace_events["memo_hits"] += 1
            _column_memo.move_to_end(key)
            return columns
        hit = _trace_memo.get(key)
        if hit is not None:
            trace_events["memo_hits"] += 1
            _trace_memo.move_to_end(key)
            columns = _columns_from_trace(hit)
            _memoise_columns(key, columns)
            return columns
        if cache is not None:
            fingerprint = _fingerprint_from_digest(digest, max_instructions)
            opened = cache._open_validated(fingerprint, program)
            if opened is not None:
                columns, _ = opened
                _memoise_columns(key, columns)
                return columns
    trace_events["emulations"] += 1
    window_size = resolve_trace_window(None)
    writer = None
    if cache is not None and not live:
        writer = cache.open_store(fingerprint, window_size or None)
    pcs_acc = array.array("q")
    next_acc = array.array("q")
    mems_acc = array.array("q")
    taken_acc = bytearray()
    emulator = FunctionalEmulator(program)
    for _, pcs, next_pcs, takens, mems in emulator.run_collect_windows(
        max_instructions, window_size or None
    ):
        mems = [mem if mem is not None else 0 for mem in mems]
        takens = bytearray(1 if t else 0 for t in takens)
        if writer is not None:
            writer.add(pcs, next_pcs, takens, mems)
        pcs_acc.extend(pcs)
        next_acc.extend(next_pcs)
        mems_acc.extend(mems)
        taken_acc.extend(takens)
    if writer is not None:
        writer.commit()
    columns = (pcs_acc, next_acc, mems_acc, taken_acc)
    if not live:
        _memoise_columns(key, columns)
    return columns


def commit_mask(program, columns: tuple) -> bytearray:
    """One byte per trace entry: 1 when the entry allocates a ROB slot.

    Hint NOOPs and plain NOPs are stripped in the core's last decode
    stage and never commit, so the committed-instruction count over an
    entry span is the sum of this mask over the span.  Window sharding
    uses it to translate span boundaries (entry indices) into the
    warm-up and measure-span commit counts the replay core consumes.
    """
    instr_by_pc = _instructions_by_pc(program)
    commits_by_pc = {
        pc: 0 if (instr.is_hint or instr.opcode is Opcode.NOP) else 1
        for pc, instr in instr_by_pc.items()
    }
    return bytearray(map(commits_by_pc.__getitem__, columns[0]))


def get_trace_span_stream(
    program,
    max_instructions: int,
    first_entry: int = 0,
    last_entry: Optional[int] = None,
    window_size: Optional[int] = None,
    cache: Optional[TraceCache] = None,
    live: Optional[bool] = None,
) -> "TraceWindowStream":
    """A replay-ready window stream over the entry span [first, last).

    The full trace's columns come from :func:`get_trace_columns` (memo →
    disk → one emulation); only the requested span is ever decoded, in
    ``window_size``-sized windows, so a shard's decode memory is bounded
    by the window regardless of where in the trace its span lies.
    """
    window_size = resolve_trace_window(window_size)
    columns = get_trace_columns(program, max_instructions, cache=cache, live=live)
    length = len(columns[0])
    first = max(0, min(first_entry, length))
    last = length if last_entry is None else max(first, min(last_entry, length))
    sliced = tuple(column[first:last] for column in columns)
    return TraceWindowStream(
        _decode_column_windows(sliced, _instructions_by_pc(program), window_size or None),
        window_size or None,
    )


# ----------------------------------------------------------------------
# Windowed streaming
# ----------------------------------------------------------------------
class TraceWindowStream:
    """Forward-only stream of consecutive :class:`DecodedTrace` windows.

    The replay core (:class:`repro.uarch.core.OutOfOrderCore`) pulls the
    next window as its fetch stage crosses each boundary and releases
    windows once dispatch has consumed every entry in them; backed by a
    lazy iterator this bounds peak decoded-trace memory by the window
    size rather than the instruction budget.
    """

    __slots__ = ("window_size", "_iterator", "_exhausted")

    def __init__(
        self,
        windows: Iterable[DecodedTrace],
        window_size: Optional[int] = None,
    ):
        self._iterator = iter(windows)
        self.window_size = window_size
        self._exhausted = False

    @classmethod
    def single(cls, trace: DecodedTrace) -> "TraceWindowStream":
        """Wrap one monolithic decoded trace as a single-window stream."""
        return cls((trace,), window_size=None)

    def next_window(self) -> Optional[DecodedTrace]:
        """The next consecutive window, or None once the trace ends."""
        if self._exhausted:
            return None
        window = next(self._iterator, None)
        if window is None:
            self._exhausted = True
        return window


def resolve_trace_window(window_size: Optional[int] = None) -> int:
    """The effective window size: argument, else env, else the default.

    ``0`` disables windowing (monolithic decode and replay at any
    budget); negative values are rejected.  The environment variable
    ``REPRO_TRACE_WINDOW`` supplies the default when no explicit value is
    given, falling back to
    :data:`~repro.uarch.config.DEFAULT_TRACE_WINDOW_ENTRIES`.
    """
    if window_size is None:
        env = os.environ.get("REPRO_TRACE_WINDOW")
        if env:
            try:
                window_size = int(env)
            except ValueError as exc:
                raise ValueError(
                    "REPRO_TRACE_WINDOW must be an integer instruction "
                    f"count, got {env!r}"
                ) from exc
        else:
            window_size = DEFAULT_TRACE_WINDOW_ENTRIES
    if window_size < 0:
        raise ValueError("trace window must be a non-negative instruction count")
    return window_size


def _emulated_windows(
    program,
    max_instructions: int,
    window_size: int,
    cache: Optional[TraceCache],
    fingerprint: Optional[str],
    memo_key: Optional[tuple] = None,
) -> Iterable[DecodedTrace]:
    """Emulate once, yielding decoded windows as they are produced.

    With a cache, each window's encoded columns are buffered as they
    stream past and the file is committed atomically when the emulation
    completes; with ``memo_key``, the same compact columns also land in
    the in-process column memo.  An abandoned replay stores and memoises
    nothing.
    """
    trace_events["emulations"] += 1
    writer = (
        cache.open_store(fingerprint, window_size) if cache is not None else None
    )
    pcs_acc = array.array("q")
    next_acc = array.array("q")
    mems_acc = array.array("q")
    taken_acc = bytearray()
    emulator = FunctionalEmulator(program)
    for statics, pcs, next_pcs, takens, mems in emulator.run_collect_windows(
        max_instructions, window_size
    ):
        mems = [mem if mem is not None else 0 for mem in mems]
        takens = bytearray(1 if t else 0 for t in takens)
        if writer is not None:
            writer.add(pcs, next_pcs, takens, mems)
        if memo_key is not None:
            pcs_acc.extend(pcs)
            next_acc.extend(next_pcs)
            mems_acc.extend(mems)
            taken_acc.extend(takens)
        yield DecodedTrace.from_entries(statics, pcs, next_pcs, takens, mems)
    if writer is not None:
        writer.commit()
    if memo_key is not None:
        _memoise_columns(memo_key, (pcs_acc, next_acc, mems_acc, taken_acc))


def get_trace_stream(
    program,
    max_instructions: int,
    window_size: Optional[int] = None,
    cache: Optional[TraceCache] = None,
    live: Optional[bool] = None,
) -> TraceWindowStream:
    """A replay-ready window stream for (program, budget).

    Budgets at or below the effective window size — and ``window_size=0``
    — take the monolithic :func:`get_decoded_trace` path, in-process memo
    included, wrapped as a single window; nothing changes for small runs.
    Larger budgets stream, reusing three tiers while only ever holding
    compact encoded columns plus the replay's own resident windows: the
    in-process *column* memo (emulate once per (program, budget) even
    with no disk cache), then the disk cache, then one fresh emulation
    that populates both.  Replay statistics are bit-identical for every
    window size.
    """
    if live is None:
        live = bool(os.environ.get("REPRO_LIVE_EMULATION"))
    window_size = resolve_trace_window(window_size)
    if window_size == 0 or max_instructions <= window_size:
        trace = (
            emulate_trace(program, max_instructions)
            if live
            else get_decoded_trace(program, max_instructions, cache=cache, live=False)
        )
        return TraceWindowStream.single(trace)
    if live:
        return TraceWindowStream(
            _emulated_windows(program, max_instructions, window_size, None, None),
            window_size,
        )
    digest = program_digest(program)
    key = (digest, max_instructions)
    columns = _column_memo.get(key)
    if columns is not None:
        trace_events["memo_hits"] += 1
        _column_memo.move_to_end(key)
        return TraceWindowStream(
            _decode_column_windows(columns, _instructions_by_pc(program), window_size),
            window_size,
        )
    fingerprint = _fingerprint_from_digest(digest, max_instructions)
    if cache is not None:
        opened = cache._open_validated(fingerprint, program)
        if opened is not None:
            stored_columns, instr_by_pc = opened
            _memoise_columns(key, stored_columns)
            return TraceWindowStream(
                _decode_column_windows(stored_columns, instr_by_pc, window_size),
                window_size,
            )
    return TraceWindowStream(
        _emulated_windows(
            program, max_instructions, window_size, cache, fingerprint, key
        ),
        window_size,
    )
