"""Blocking client library for the experiment service.

The daemon's wire protocol (:mod:`repro.service.protocol`) is plain
newline-delimited JSON, so any language can speak it with a socket and
a JSON parser; this module is the in-tree Python face.  One
:class:`ServiceClient` holds one connection and issues one request at a
time, reading the event stream until the terminal event for that
request arrives — the natural shape for scripts and tests.  (The
*daemon* multiplexes arbitrarily many such clients on one loop; the
concurrency lives server-side, where the dedupe is.)

Usage::

    with ServiceClient(host, port) as client:
        cells = client.grid(["gzip", "mcf"], ["baseline", "abella"],
                            config={"max_instructions": 4000,
                                    "warmup_instructions": 1000},
                            priority=7)
        status = client.status()
"""

from __future__ import annotations

import socket
from typing import Callable, Optional

from repro.service import protocol
from repro.service.protocol import RequestError


class ServiceError(RuntimeError):
    """The daemon answered with a terminal ``rejected`` or ``error`` event."""

    def __init__(self, event: dict):
        self.event = event
        reason = event.get("reason", event.get("event"))
        super().__init__(
            f"{reason}: {event.get('message', 'no message')}"
        )


class ServiceClient:
    """One blocking connection to an :class:`ExperimentService` daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 120.0,
    ):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self.sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, payload: dict) -> None:
        self.sock.sendall(protocol.encode_line(payload))

    def _read_event(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return protocol.decode_line(line)

    def request(
        self,
        payload: dict,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Send one request; stream events until its terminal one.

        ``on_event`` observes every event for the request (``accepted``
        and each ``progress``) before the terminal ``result``/``status``
        event is returned.  A terminal ``rejected`` or ``error`` raises
        :class:`ServiceError` carrying the daemon's event verbatim.
        """
        if "id" not in payload or payload["id"] is None:
            self._next_id += 1
            payload = dict(payload, id=self._next_id)
        request_id = payload["id"]
        self._send(payload)
        while True:
            event = self._read_event()
            if event.get("id") != request_id:
                # An event for a request this client never issued (the
                # daemon streams per-connection, so this means a bug or
                # a stale terminal from a dropped request): skip it.
                continue
            kind = event.get("event")
            if kind in ("rejected", "error"):
                raise ServiceError(event)
            if on_event is not None:
                on_event(event)
            if kind in ("result", "status"):
                return event

    # ------------------------------------------------------------------
    def grid(
        self,
        benchmarks: list,
        techniques: list,
        config: Optional[dict] = None,
        priority: Optional[int] = None,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> list:
        """Run a grid; returns the per-cell list of the result event."""
        payload: dict = {
            "op": "grid",
            "benchmarks": list(benchmarks),
            "techniques": list(techniques),
        }
        if config:
            payload["config"] = dict(config)
        if priority is not None:
            payload["priority"] = priority
        return self.request(payload, on_event=on_event)["cells"]

    def simulate(
        self,
        benchmark: str,
        technique: str,
        config: Optional[dict] = None,
        priority: Optional[int] = None,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Run one cell; returns its stats dict."""
        payload: dict = {
            "op": "simulate",
            "benchmark": benchmark,
            "technique": technique,
        }
        if config:
            payload["config"] = dict(config)
        if priority is not None:
            payload["priority"] = priority
        event = self.request(payload, on_event=on_event)
        return event["cells"][0]["stats"]

    def status(self) -> dict:
        """The daemon's queue + service observability snapshot."""
        event = self.request({"op": "status"})
        return {"queue": event["queue"], "service": event["service"]}


__all__ = ["RequestError", "ServiceClient", "ServiceError"]
